"""Collect paper-scale reproduction numbers for EXPERIMENTS.md.

Runs go through the campaign executor: ``REPRO_JOBS=N`` fans them out
over N worker processes (bit-identical results), and the append-only
columnar store under ``results/.store`` makes an interrupted collection
resumable — already-finished points are read back instead of re-run.
The old pickle cache under ``results/.cache`` is kept attached as a
read-only compatibility path, so pre-store collections retain value.
"""
import json, time
from repro.experiments import (
    CampaignExecutor, ResultCache, ResultStore, SimulationConfig, env_jobs,
)
from repro.experiments.figures.base import run_axis_sweep
from repro.experiments.figures.fig7 import UPDATE_INTERVALS, QUERY_INTERVALS, CACHE_NUMBERS
from repro.experiments.figures.fig9 import run_fig9
from repro.experiments.runner import STRATEGY_SPECS

t0 = time.time()
config = SimulationConfig(sim_time=1800.0, warmup=600.0, seed=1)
out = {"config": {"sim_time": 1800.0, "warmup": 600.0}}
executor = CampaignExecutor(
    jobs=env_jobs("REPRO_JOBS"),
    cache=ResultCache("/root/repo/results/.cache"),
    store=ResultStore("/root/repo/results/.store"),
)

def pack(result):
    s = result.summary
    return {
        "tx": s.transmissions, "lat": s.mean_latency, "hit_lat": s.mean_hit_latency,
        "answered": s.queries_answered, "issued": s.queries_issued,
        "stale": s.stale_ratio, "viol": s.violation_ratio,
        "relays": result.mean_relay_count,
    }

for axis, values, key in (
    ("update_interval", UPDATE_INTERVALS, "fig7a"),
    ("query_interval", QUERY_INTERVALS, "fig7b"),
    ("cache_num", tuple(CACHE_NUMBERS), "fig7c"),
):
    results = run_axis_sweep(config, axis, values, STRATEGY_SPECS, executor=executor)
    out[key] = {
        f"{spec}@{value}": pack(result) for (spec, value), result in results.items()
    }
    print(f"{key} done at {time.time()-t0:.0f}s", flush=True)

fig9_runs = {}
for seed in (1, 2, 3):
    payload = run_fig9(config.with_overrides(seed=seed), executor=executor)
    fig9_runs[seed] = {
        **{f"rpcc@{ttl}": pack(result) for ttl, result in payload["rpcc"].items()},
        "push": pack(payload["push"]),
        "pull": pack(payload["pull"]),
    }
    print(f"fig9 seed {seed} done at {time.time()-t0:.0f}s", flush=True)
out["fig9"] = fig9_runs

with open("/root/repo/results/experiments.json", "w") as fh:
    json.dump(out, fh, indent=1)
print(f"ALL DONE in {time.time()-t0:.0f}s", flush=True)
