"""Unit tests for the RPCC configuration and Fig 5 role state machine."""

import pytest

from repro.consistency.rpcc.config import RPCCConfig
from repro.consistency.rpcc.roles import Role, RoleTable
from repro.errors import ConfigurationError


class TestRPCCConfig:
    def test_table1_defaults(self):
        config = RPCCConfig()
        assert config.ttl_invalidation == 3
        assert config.ttn == 120.0
        assert config.ttr == 90.0
        assert config.ttp == 240.0

    def test_poll_ttl_defaults_to_invalidation_ttl(self):
        assert RPCCConfig(ttl_invalidation=5).poll_ttl == 5

    def test_poll_ttl_explicit(self):
        assert RPCCConfig(ttl_invalidation=5, poll_ttl=2).poll_ttl == 2

    def test_grace_timeout_computed_from_dead_window(self):
        config = RPCCConfig(ttn=120.0, ttr=90.0)
        assert config.grace_timeout == pytest.approx(35.0)

    def test_grace_timeout_floor(self):
        config = RPCCConfig(ttn=100.0, ttr=100.0)
        assert config.grace_timeout == pytest.approx(5.0)

    def test_delta_is_ttp(self):
        assert RPCCConfig(ttp=300.0).delta == 300.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ttl_invalidation": 0},
            {"ttn": 0.0},
            {"ttr": -1.0},
            {"ttp": 0.0},
            {"poll_timeout": 0.0},
            {"source_poll_timeout": 0.0},
            {"max_source_poll_attempts": 0},
            {"broadcast_ttl": 0},
            {"poll_ttl": 0},
            {"grace_timeout": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            RPCCConfig(**kwargs)


class TestRoleTable:
    def test_default_role_is_cache_node(self):
        assert RoleTable().role(1) is Role.CACHE_NODE

    def test_candidate_transition(self):
        table = RoleTable()
        table.become_candidate(1)
        assert table.is_candidate(1)
        assert not table.is_relay(1)

    def test_promotion(self):
        table = RoleTable()
        table.become_candidate(1)
        table.promote(1)
        assert table.is_relay(1)
        assert table.promotions == 1

    def test_promote_idempotent_counting(self):
        table = RoleTable()
        table.promote(1)
        table.promote(1)
        assert table.promotions == 1

    def test_demotion(self):
        table = RoleTable()
        table.promote(1)
        table.demote(1)
        assert table.role(1) is Role.CACHE_NODE
        assert table.demotions == 1

    def test_demoting_candidate_not_counted_as_relay_demotion(self):
        table = RoleTable()
        table.become_candidate(1)
        table.demote(1)
        assert table.demotions == 0

    def test_item_listings(self):
        table = RoleTable()
        table.promote(1)
        table.promote(2)
        table.become_candidate(3)
        assert sorted(table.relay_items()) == [1, 2]
        assert table.candidate_items() == [3]
        assert sorted(table.tracked_items()) == [1, 2, 3]
        assert table.relay_count == 2

    def test_roles_independent_per_item(self):
        table = RoleTable()
        table.promote(1)
        assert table.role(2) is Role.CACHE_NODE
