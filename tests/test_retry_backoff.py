"""RetryBackoff: growth, cap, deterministic jitter, and wiring."""

from __future__ import annotations

import pytest

from repro.consistency.base import RetryBackoff, StrategyContext
from repro.errors import ProtocolError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.faults import Crash, FaultPlan


class TestDelaySchedule:
    def test_exponential_growth_without_jitter(self):
        backoff = RetryBackoff(factor=2.0, cap=100.0, jitter=0.0)
        assert backoff.delay(5.0, 1, "k") == 5.0
        assert backoff.delay(5.0, 2, "k") == 10.0
        assert backoff.delay(5.0, 3, "k") == 20.0

    def test_cap_bounds_the_wait(self):
        backoff = RetryBackoff(factor=2.0, cap=12.0, jitter=0.0)
        assert backoff.delay(5.0, 10, "k") == 12.0

    def test_attempt_zero_and_one_share_the_base(self):
        backoff = RetryBackoff(factor=3.0, cap=100.0, jitter=0.0)
        assert backoff.delay(4.0, 0, "k") == backoff.delay(4.0, 1, "k") == 4.0

    def test_jitter_is_a_pure_function_of_seed_key_attempt(self):
        a = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=7)
        b = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=7)
        for attempt in range(1, 6):
            assert a.delay(5.0, attempt, "3/12") == b.delay(5.0, attempt, "3/12")

    def test_jitter_stays_in_band(self):
        backoff = RetryBackoff(factor=2.0, cap=1000.0, jitter=0.1, seed=1)
        for attempt in range(1, 8):
            raw = 5.0 * 2.0 ** (attempt - 1)
            wait = backoff.delay(5.0, attempt, "n/i")
            assert raw * 0.9 <= wait <= raw * 1.1

    def test_jitter_differs_across_keys_and_seeds(self):
        backoff = RetryBackoff(factor=1.0, cap=100.0, jitter=0.1, seed=1)
        other_seed = RetryBackoff(factor=1.0, cap=100.0, jitter=0.1, seed=2)
        waits = {backoff.delay(5.0, 1, f"0/{item}") for item in range(20)}
        assert len(waits) > 1  # keys actually spread the retries
        assert backoff.delay(5.0, 1, "0/0") != other_seed.delay(5.0, 1, "0/0")

    @pytest.mark.parametrize("kwargs", [
        {"factor": 0.9}, {"cap": 0.0}, {"jitter": 1.0}, {"jitter": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ProtocolError):
            RetryBackoff(**kwargs)


class TestWiring:
    def _context(self, config, spec="pull"):
        return build_simulation(config, spec, "standard").strategy.context

    def _small(self, **overrides):
        return SimulationConfig(
            n_peers=6, terrain_width=600.0, terrain_height=600.0,
            sim_time=30.0, warmup=0.0, seed=1, **overrides,
        )

    def test_default_run_has_no_backoff(self):
        assert self._context(self._small()).backoff is None

    def test_fault_plan_auto_enables_backoff(self):
        plan = FaultPlan(faults=(Crash(node=1, at=5.0),))
        context = self._context(self._small(faults=plan))
        assert context.backoff is not None
        assert context.backoff.factor == 2.0
        assert context.backoff.seed == 1

    def test_explicit_opt_out_beats_the_plan(self):
        plan = FaultPlan(faults=(Crash(node=1, at=5.0),))
        context = self._context(self._small(faults=plan, retry_backoff=False))
        assert context.backoff is None

    def test_explicit_opt_in_without_a_plan(self):
        context = self._context(self._small(
            retry_backoff=True, backoff_factor=3.0, backoff_cap=30.0,
            backoff_jitter=0.0,
        ))
        assert context.backoff is not None
        assert context.backoff.factor == 3.0
        assert context.backoff.cap == 30.0
        assert context.backoff.jitter == 0.0

    def test_empty_plan_counts_as_no_plan(self):
        context = self._context(self._small(faults=FaultPlan()))
        assert context.backoff is None

    def test_context_default_is_no_backoff(self):
        # Direct construction (the unit-test path) keeps the historical
        # fixed retry wait unless a backoff is handed in explicitly.
        from tests.conftest import line_positions, make_world
        from repro.consistency.pull import PullStrategy

        world = make_world(line_positions(3), PullStrategy)
        assert world.context.backoff is None
