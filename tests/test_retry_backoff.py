"""RetryBackoff: growth, cap, deterministic jitter, and wiring."""

from __future__ import annotations

import pytest

from repro.consistency.base import RetryBackoff, StrategyContext
from repro.errors import ProtocolError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.faults import Crash, FaultPlan


class TestDelaySchedule:
    def test_exponential_growth_without_jitter(self):
        backoff = RetryBackoff(factor=2.0, cap=100.0, jitter=0.0)
        assert backoff.delay(5.0, 1, "k") == 5.0
        assert backoff.delay(5.0, 2, "k") == 10.0
        assert backoff.delay(5.0, 3, "k") == 20.0

    def test_cap_bounds_the_wait(self):
        backoff = RetryBackoff(factor=2.0, cap=12.0, jitter=0.0)
        assert backoff.delay(5.0, 10, "k") == 12.0

    def test_attempt_zero_and_one_share_the_base(self):
        backoff = RetryBackoff(factor=3.0, cap=100.0, jitter=0.0)
        assert backoff.delay(4.0, 0, "k") == backoff.delay(4.0, 1, "k") == 4.0

    def test_jitter_is_a_pure_function_of_seed_key_attempt(self):
        a = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=7)
        b = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=7)
        for attempt in range(1, 6):
            assert a.delay(5.0, attempt, "3/12") == b.delay(5.0, attempt, "3/12")

    def test_jitter_stays_in_band(self):
        backoff = RetryBackoff(factor=2.0, cap=1000.0, jitter=0.1, seed=1)
        for attempt in range(1, 8):
            raw = 5.0 * 2.0 ** (attempt - 1)
            wait = backoff.delay(5.0, attempt, "n/i")
            assert raw * 0.9 <= wait <= raw * 1.1

    def test_jitter_differs_across_keys_and_seeds(self):
        backoff = RetryBackoff(factor=1.0, cap=100.0, jitter=0.1, seed=1)
        other_seed = RetryBackoff(factor=1.0, cap=100.0, jitter=0.1, seed=2)
        waits = {backoff.delay(5.0, 1, f"0/{item}") for item in range(20)}
        assert len(waits) > 1  # keys actually spread the retries
        assert backoff.delay(5.0, 1, "0/0") != other_seed.delay(5.0, 1, "0/0")

    @pytest.mark.parametrize("kwargs", [
        {"factor": 0.9}, {"cap": 0.0}, {"jitter": 1.0}, {"jitter": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ProtocolError):
            RetryBackoff(**kwargs)


class TestCapSaturation:
    def test_delays_pin_at_cap_once_reached(self):
        backoff = RetryBackoff(factor=2.0, cap=12.0, jitter=0.0)
        waits = [backoff.delay(5.0, attempt, "k") for attempt in range(1, 12)]
        assert waits[:3] == [5.0, 10.0, 12.0]
        assert all(wait == 12.0 for wait in waits[2:])

    def test_cap_saturation_survives_huge_attempt_numbers(self):
        # factor ** attempt overflows a float around attempt ~1024; the
        # min() against cap must still yield a finite, pinned wait.
        backoff = RetryBackoff(factor=2.0, cap=60.0, jitter=0.0)
        assert backoff.delay(5.0, 10_000, "k") == 60.0

    def test_jitter_still_varies_at_the_cap(self):
        backoff = RetryBackoff(factor=2.0, cap=12.0, jitter=0.1, seed=3)
        waits = {backoff.delay(5.0, attempt, "k") for attempt in range(5, 15)}
        assert len(waits) > 1  # saturated retries still decorrelate
        assert all(12.0 * 0.9 <= wait <= 12.0 * 1.1 for wait in waits)

    def test_base_above_cap_clamps_immediately(self):
        backoff = RetryBackoff(factor=2.0, cap=8.0, jitter=0.0)
        assert backoff.delay(20.0, 1, "k") == 8.0


class TestJitterDeterminism:
    def test_identical_attempt_key_pairs_always_agree(self):
        backoff = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=9)
        first = [backoff.delay(5.0, a, "2/7") for a in range(1, 6)]
        second = [backoff.delay(5.0, a, "2/7") for a in range(1, 6)]
        assert first == second  # no hidden per-call state

    def test_call_order_does_not_leak_into_the_jitter(self):
        # Interleaving draws for other keys must not perturb a pair.
        reference = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=9)
        noisy = RetryBackoff(factor=2.0, cap=100.0, jitter=0.1, seed=9)
        for other in range(50):
            noisy.delay(5.0, 1 + other % 4, f"noise/{other}")
        for attempt in range(1, 6):
            assert (
                noisy.delay(5.0, attempt, "2/7")
                == reference.delay(5.0, attempt, "2/7")
            )


class _RecordingBackoff(RetryBackoff):
    """RetryBackoff that logs every (attempt, key, wait) it hands out."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def delay(self, base, attempt, key):
        wait = super().delay(base, attempt, key)
        self.calls.append((attempt, key, wait))
        return wait


class TestResetAfterReconnect:
    """A fresh query after a reconnect restarts the ladder at attempt 1.

    Backoff state lives in the per-query ``PendingQuery.attempts``
    counter, never in the shared :class:`RetryBackoff` — so abandoning a
    query during an outage and issuing a new one after the network heals
    must start from the base wait again, not resume the grown one.
    """

    def _outage_world(self):
        from tests.conftest import line_positions, make_world
        from repro.consistency.pull import PullStrategy

        world = make_world(line_positions(4), PullStrategy)
        backoff = _RecordingBackoff(factor=2.0, cap=100.0, jitter=0.0)
        world.context.backoff = backoff
        # Phantom holders of item 3 at nodes 1 and 2: listed in the
        # directory but with no copy in their store, so they receive the
        # request and stay silent — each client timeout climbs one rung
        # of the ladder and retries the next holder.
        world.directory.add(3, 1)
        world.directory.add(3, 2)
        return world, backoff

    def test_ladder_grows_during_outage_and_resets_after_reconnect(self):
        from repro.consistency.levels import ConsistencyLevel

        world, backoff = self._outage_world()
        world.hosts[3].set_online(False)  # the real source is down
        world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.sim.run_until(60.0)
        outage_calls = list(backoff.calls)
        # Both phantom holders tried, each retry one rung higher; the
        # third attempt finds no reachable holder and gives up.
        assert [attempt for attempt, _, _ in outage_calls] == [1, 2]
        assert all(key == "0/3" for _, key, _ in outage_calls)
        waits = [wait for _, _, wait in outage_calls]
        assert waits[1] == 2.0 * waits[0]
        assert world.metrics.counter("query_no_holder") == 1

        # Source back online; a fresh query restarts at rung 1 with the
        # base wait — the grown ladder died with the abandoned query.
        world.hosts[3].set_online(True)
        backoff.calls.clear()
        world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.sim.run_until(120.0)
        assert backoff.calls, "post-reconnect query never reached a holder"
        first_attempt, key, wait = backoff.calls[0]
        assert first_attempt == 1
        assert key == "0/3"
        assert wait == outage_calls[0][2]  # back to the base wait
        assert world.metrics.latency.answered >= 1


class TestWiring:
    def _context(self, config, spec="pull"):
        return build_simulation(config, spec, "standard").strategy.context

    def _small(self, **overrides):
        return SimulationConfig(
            n_peers=6, terrain_width=600.0, terrain_height=600.0,
            sim_time=30.0, warmup=0.0, seed=1, **overrides,
        )

    def test_default_run_has_no_backoff(self):
        assert self._context(self._small()).backoff is None

    def test_fault_plan_auto_enables_backoff(self):
        plan = FaultPlan(faults=(Crash(node=1, at=5.0),))
        context = self._context(self._small(faults=plan))
        assert context.backoff is not None
        assert context.backoff.factor == 2.0
        assert context.backoff.seed == 1

    def test_explicit_opt_out_beats_the_plan(self):
        plan = FaultPlan(faults=(Crash(node=1, at=5.0),))
        context = self._context(self._small(faults=plan, retry_backoff=False))
        assert context.backoff is None

    def test_explicit_opt_in_without_a_plan(self):
        context = self._context(self._small(
            retry_backoff=True, backoff_factor=3.0, backoff_cap=30.0,
            backoff_jitter=0.0,
        ))
        assert context.backoff is not None
        assert context.backoff.factor == 3.0
        assert context.backoff.cap == 30.0
        assert context.backoff.jitter == 0.0

    def test_empty_plan_counts_as_no_plan(self):
        context = self._context(self._small(faults=FaultPlan()))
        assert context.backoff is None

    def test_context_default_is_no_backoff(self):
        # Direct construction (the unit-test path) keeps the historical
        # fixed retry wait unless a backoff is handed in explicitly.
        from tests.conftest import line_positions, make_world
        from repro.consistency.pull import PullStrategy

        world = make_world(line_positions(3), PullStrategy)
        assert world.context.backoff is None
