"""Startup batching: one vectorized ``schedule_batch`` filing pass.

``Simulation.run`` collects every startup arm (TTN timers, arrival
streams, coefficient-period timers, switching processes, samplers, the
controller tick) into a :class:`~repro.sim.engine.StartupBatch` and files
them in a single :meth:`~repro.sim.engine.Simulator.schedule_batch`
call.  The contract under test: the batched pass is *bit-identical* to
the historical per-call ``schedule`` loop — same sequence numbers, same
fire order — on **both** engines (timer wheel and pure heap), including
the heap path's bulk ``heapify`` branch.
"""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.sim.engine import Simulator, StartupBatch
from repro.sim.timers import PeriodicTimer
from repro.workload.arrivals import ExponentialProcess


# A delay mix that exercises every filing structure: sub-slot ties,
# wheel0, wheel1, and beyond the 16384 s wheel horizon (far heap).
DELAYS = (
    [0.1, 0.1, 0.1, 5.0, 5.0, 63.9, 64.0, 1000.0, 16383.0, 20000.0, 0.0]
    + [float(i) % 97.0 + 0.25 for i in range(200)]
)


def _fire_log(sim: Simulator, schedule) -> list:
    """Drain ``sim`` fully, recording (time, tag) per firing."""
    log = []
    schedule(sim, log)
    sim.run()
    return log


def _per_call(sim: Simulator, log: list) -> None:
    for tag, delay in enumerate(DELAYS):
        sim.schedule(delay, lambda t=tag: log.append((sim.now, t)))


def _batched(sim: Simulator, log: list) -> None:
    batch = StartupBatch()
    for tag, delay in enumerate(DELAYS):
        batch.add(delay, lambda t=tag: log.append((sim.now, t)))
    assert len(batch) == len(DELAYS)
    handles = batch.flush(sim)
    assert len(handles) == len(DELAYS)


class TestFireOrderEquivalence:
    def test_batch_matches_per_call_on_wheel(self):
        unbatched = _fire_log(Simulator(wheel=True), _per_call)
        batched = _fire_log(Simulator(wheel=True), _batched)
        assert batched == unbatched

    def test_batch_matches_per_call_on_heap(self):
        unbatched = _fire_log(Simulator(wheel=False), _per_call)
        batched = _fire_log(Simulator(wheel=False), _batched)
        assert batched == unbatched

    def test_wheel_vs_heap_batched(self):
        """The batched filing pass fires identically on both engines."""
        wheel = _fire_log(Simulator(wheel=True), _batched)
        heap = _fire_log(Simulator(wheel=False), _batched)
        assert wheel == heap

    def test_heap_heapify_branch_matches_push_branch(self):
        """Bulk extend+heapify (big batch) == per-event heappush (small)."""
        def seed_heap(sim: Simulator, log: list) -> None:
            # Pre-populate a heap large enough that a 3-event batch takes
            # the per-event push branch (batch * 8 < len(heap)).
            for tag in range(40):
                sim.schedule(500.0 + tag, lambda t=tag: log.append(("pre", t)))

        def small_then_large(sim: Simulator, log: list) -> None:
            seed_heap(sim, log)
            small = StartupBatch()
            for tag, delay in enumerate([1.0, 2.0, 3.0]):
                small.add(delay, lambda t=tag: log.append(("small", t)))
            small.flush(sim)
            large = StartupBatch()
            for tag, delay in enumerate(DELAYS):
                large.add(delay, lambda t=tag: log.append(("large", t)))
            large.flush(sim)

        heap_log = _fire_log(Simulator(wheel=False), small_then_large)
        wheel_log = _fire_log(Simulator(wheel=True), small_then_large)
        assert heap_log == wheel_log

    def test_seq_numbers_assigned_in_add_order(self):
        sim = Simulator()
        batch = StartupBatch()
        for delay in (5.0, 1.0, 5.0):
            batch.add(delay, lambda: None)
        handles = batch.flush(sim)
        seqs = [handle.seq for handle in handles]
        assert seqs == sorted(seqs)
        # Ties at t=5.0 break by add order.
        assert handles[0].seq < handles[2].seq


class TestStartupBatchContract:
    def test_single_shot(self):
        sim = Simulator()
        batch = StartupBatch()
        batch.add(1.0, lambda: None)
        batch.flush(sim)
        with pytest.raises(SchedulingError):
            batch.flush(sim)
        with pytest.raises(SchedulingError):
            batch.add(1.0, lambda: None)

    def test_empty_flush(self):
        assert StartupBatch().flush(Simulator()) == []

    def test_adopt_receives_handle(self):
        sim = Simulator()
        batch = StartupBatch()
        seen = []
        batch.add(2.5, lambda: None, adopt=seen.append)
        handles = batch.flush(sim)
        assert seen == handles
        assert seen[0].pending and seen[0].time == 2.5

    def test_periodic_timer_rearms_after_batched_start(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 10.0, lambda: None)
        batch = StartupBatch()
        timer.start(batch)
        assert not timer.running  # handle arrives at flush
        batch.flush(sim)
        assert timer.running
        sim.run_until(35.0)
        assert timer.ticks == 3
        assert timer.running  # re-armed through the adopted handle

    def test_exponential_process_draws_rng_at_add_time(self):
        """Batched start consumes the RNG exactly like the unbatched one."""
        import random

        def arrivals(batched: bool) -> list:
            sim = Simulator()
            rng = random.Random(42)
            times = []
            process = ExponentialProcess(
                sim, rng, 7.0, lambda: times.append(sim.now)
            )
            if batched:
                batch = StartupBatch()
                process.start(batch)
                batch.flush(sim)
            else:
                process.start()
            sim.run_until(200.0)
            return times

        assert arrivals(True) == arrivals(False)


class TestSimulationStartupBatched:
    """End-to-end: batched startup is invisible in simulation results."""

    CONFIG = dict(
        n_peers=12,
        terrain_width=800.0,
        terrain_height=800.0,
        sim_time=120.0,
        warmup=30.0,
        seed=13,
    )

    def _digest(self, monkeypatch, wheel: str):
        monkeypatch.setenv("REPRO_WHEEL", wheel)
        result = build_simulation(
            SimulationConfig(**self.CONFIG), "rpcc-sc", "standard"
        ).run()
        summary = result.summary
        return (
            summary.transmissions,
            summary.messages,
            summary.queries_issued,
            summary.queries_answered,
            round(summary.mean_latency, 9),
            round(summary.stale_ratio, 9),
            result.events_processed,
        )

    def test_wheel_and_heap_runs_identical(self, monkeypatch):
        assert self._digest(monkeypatch, "1") == self._digest(monkeypatch, "0")
