"""Unit tests for the fault injector: link faults, partitions, crashes,
relay kills, and the degradation meter."""

from __future__ import annotations

import pytest

from repro.consistency.pull import PullStrategy
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.errors import ConfigurationError
from repro.faults import (
    BurstyLoss,
    Crash,
    DelayJitter,
    FaultInjector,
    FaultPlan,
    Partition,
    RelayKill,
)
from repro.metrics.degradation import DegradationMeter
from repro.net.link import GilbertElliott
from repro.sim.engine import Simulator

from tests.conftest import line_positions, make_world


def pull_world(count=4):
    return make_world(line_positions(count), PullStrategy)


def injector_for(world, plan, seed=0, width=1000.0, height=1000.0):
    injector = FaultInjector(
        plan,
        sim=world.sim,
        network=world.network,
        hosts=world.hosts,
        metrics=world.metrics,
        strategy=world.strategy,
        seed=seed,
        terrain_width=width,
        terrain_height=height,
    )
    world.network.faults = injector
    return injector


class TestGilbertElliott:
    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            GilbertElliott(1.5, 0.3, 0.0, 0.5, None)
        with pytest.raises(ConfigurationError):
            GilbertElliott(0.1, 0.3, 0.0, -0.5, None)

    def test_deterministic_given_seeded_rng(self):
        import random

        a = GilbertElliott(0.3, 0.3, 0.1, 0.9, random.Random(42))
        b = GilbertElliott(0.3, 0.3, 0.1, 0.9, random.Random(42))
        assert [a.sample_loss() for _ in range(200)] == [
            b.sample_loss() for _ in range(200)
        ]

    def test_degenerate_chains(self):
        import random

        never = GilbertElliott(0.0, 0.0, 0.0, 1.0, random.Random(1))
        assert not any(never.sample_loss() for _ in range(100))  # stays good
        always = GilbertElliott(1.0, 0.0, 1.0, 1.0, random.Random(1))
        assert all(always.sample_loss() for _ in range(100))


class TestLinkHooks:
    def test_bursty_loss_is_deterministic_across_injectors(self):
        plan = FaultPlan(faults=(BurstyLoss(p_good_bad=0.3, loss_bad=0.9),))
        first = injector_for(pull_world(), plan, seed=5)
        second = injector_for(pull_world(), plan, seed=5)
        hops = [(0, 1), (1, 2), (2, 3), (1, 0)] * 50
        assert [first.unicast_hop_lost(a, b) for a, b in hops] == [
            second.unicast_hop_lost(a, b) for a, b in hops
        ]

    def test_bursty_loss_respects_the_window(self):
        plan = FaultPlan(faults=(BurstyLoss(start=100.0, end=200.0, loss_bad=1.0,
                                            p_good_bad=1.0),))
        world = pull_world()
        injector = injector_for(world, plan)
        assert not injector.unicast_hop_lost(0, 1)  # before the window
        world.run(150.0)
        assert any(injector.unicast_hop_lost(0, 1) for _ in range(50))
        world.run(100.0)  # now at t=250, past the window
        assert not injector.unicast_hop_lost(0, 1)

    def test_links_carry_independent_chains(self):
        plan = FaultPlan(faults=(BurstyLoss(p_good_bad=0.5, loss_bad=1.0),))
        injector = injector_for(pull_world(), plan)
        for _ in range(20):
            injector.unicast_hop_lost(0, 1)
        # A second link starts its own chain in the good state.
        assert len(injector._chains) == 1
        injector.unicast_hop_lost(2, 3)
        assert len(injector._chains) == 2

    def test_jitter_bounds_and_window(self):
        plan = FaultPlan(faults=(DelayJitter(start=0.0, end=50.0, max_delay=0.05),))
        world = pull_world()
        injector = injector_for(world, plan)
        for _ in range(100):
            assert 0.0 <= injector.extra_delay() <= 0.05
        world.run(60.0)
        assert injector.extra_delay() == 0.0

    def test_duplicate_rate_zero_never_duplicates(self):
        plan = FaultPlan(faults=(DelayJitter(max_delay=0.01, duplicate_rate=0.0),))
        injector = injector_for(pull_world(), plan)
        assert not any(injector.duplicate() for _ in range(200))

    def test_scripted_plan_creates_no_rngs(self):
        plan = FaultPlan(faults=(Crash(node=1, at=5.0),))
        injector = injector_for(pull_world(), plan)
        assert injector._ge_rng is None
        assert injector._jitter_rng is None
        assert not injector.unicast_hop_lost(0, 1)
        assert injector.extra_delay() == 0.0
        assert not injector.duplicate()


class TestPartitions:
    def test_nodes_mode_isolates_the_island(self):
        plan = FaultPlan(faults=(
            Partition(start=10.0, duration=20.0, mode="nodes", nodes=(3,)),
        ))
        world = pull_world()
        injector = injector_for(world, plan)
        injector.start()
        assert set(world.network.snapshot().neighbors(3)) == {2}
        world.run(15.0)  # mid-partition
        assert injector.active_partition_count == 1
        assert set(world.network.snapshot().neighbors(3)) == set()
        assert set(world.network.snapshot().neighbors(2)) == {1}
        world.run(20.0)  # healed at t=30
        assert injector.active_partition_count == 0
        assert world.network.topology.edge_filter is None
        assert set(world.network.snapshot().neighbors(3)) == {2}
        counters = world.metrics.counters
        assert counters["fault_partitions_started"] == 1
        assert counters["fault_partitions_healed"] == 1

    def test_spatial_cut_splits_the_line(self):
        # Hosts at x = 0, 100, 200, 300; a cut at frac 0.5 of a 400 m
        # terrain suppresses exactly the 100-200 edge.
        plan = FaultPlan(faults=(
            Partition(start=5.0, duration=10.0, mode="spatial", axis="x", frac=0.5),
        ))
        world = pull_world()
        injector = injector_for(world, plan, width=400.0, height=400.0)
        injector.start()
        world.run(7.0)
        snapshot = world.network.snapshot()
        assert set(snapshot.neighbors(1)) == {0}
        assert set(snapshot.neighbors(2)) == {3}
        world.run(10.0)
        assert set(world.network.snapshot().neighbors(1)) == {0, 2}

    def test_partition_blocks_unicast_across_the_cut(self):
        plan = FaultPlan(faults=(
            Partition(start=0.0, duration=100.0, mode="nodes", nodes=(0, 1)),
        ))
        world = pull_world()
        injector = injector_for(world, plan)
        injector.start()
        world.run(1.0)
        from repro.consistency.messages import PullPoll

        message = PullPoll(sender=0, item_id=2, version=0, poll_id=999)
        assert world.agent(0).send(1, message)      # inside the island
        assert not world.agent(0).send(2, message)  # across the cut

    def test_unknown_partition_node_rejected_at_start(self):
        plan = FaultPlan(faults=(
            Partition(mode="nodes", nodes=(99,)),
        ))
        injector = injector_for(pull_world(), plan)
        with pytest.raises(ConfigurationError, match="unknown node"):
            injector.start()


class TestCrashes:
    def test_crash_and_reboot_cycle(self):
        plan = FaultPlan(faults=(Crash(node=2, at=10.0, down_for=20.0),))
        world = pull_world()
        world.give_copy(2, 0)
        injector = injector_for(world, plan)
        injector.start()
        world.run(15.0)
        assert not world.host(2).online
        assert world.host(2).store.peek(0) is not None  # cache retained
        world.run(20.0)
        assert world.host(2).online
        counters = world.metrics.counters
        assert counters["fault_crashes"] == 1
        assert counters["fault_reboots"] == 1

    def test_wiped_crash_empties_the_cache_through_the_hooks(self):
        plan = FaultPlan(faults=(Crash(node=2, at=10.0, wipe_cache=True),))
        world = pull_world()
        world.give_copy(2, 0)
        world.give_copy(2, 1)
        injector = injector_for(world, plan)
        injector.start()
        world.run(15.0)
        assert len(world.host(2).store) == 0
        # The global directory saw the discards too.
        assert 2 not in world.directory.holders(0)
        assert not world.host(2).online  # never rebooted

    def test_crash_never_touches_the_master_copy(self):
        plan = FaultPlan(faults=(Crash(node=1, at=5.0, wipe_cache=True),))
        world = pull_world()
        injector = injector_for(world, plan)
        injector.start()
        world.run(10.0)
        assert world.host(1).source_item is not None

    def test_unknown_crash_node_rejected_at_start(self):
        plan = FaultPlan(faults=(Crash(node=42, at=1.0),))
        injector = injector_for(pull_world(), plan)
        with pytest.raises(ConfigurationError, match="unknown node"):
            injector.start()


class TestRelayKills:
    def test_noop_without_relay_roles(self):
        plan = FaultPlan(faults=(RelayKill(at=5.0, count=2),))
        world = pull_world()
        injector = injector_for(world, plan)
        injector.start()
        world.run(10.0)
        assert world.metrics.counters["fault_relay_kill_noop"] == 1
        assert "fault_relay_kills" not in world.metrics.counters
        assert all(host.online for host in world.hosts.values())

    def test_kills_live_relays_in_node_id_order(self):
        config = RPCCConfig(ttn=100.0, ttr=75.0, ttp=200.0)
        world = make_world(
            line_positions(4), lambda ctx: RPCCStrategy(ctx, config)
        )
        from tests.conftest import make_eligible

        world.give_copy(1, 3)
        world.give_copy(2, 3)
        make_eligible(world.host(1))
        make_eligible(world.host(2))
        world.strategy.start()
        world.update_item(3)
        world.run(110.0)  # INVALIDATION -> APPLY -> APPLY_ACK for both
        assert world.agent(1).roles.is_relay(3)
        assert world.agent(2).roles.is_relay(3)

        plan = FaultPlan(faults=(RelayKill(at=world.sim.now + 1.0, count=1,
                                           down_for=5.0, item=3),))
        injector = injector_for(world, plan)
        injector.start()
        world.run(2.0)
        assert not world.host(1).online  # lowest node id dies first
        assert world.host(2).online
        world.run(10.0)
        assert world.host(1).online  # rebooted
        assert world.metrics.counters["fault_relay_kills"] == 1


class TestDegradationMeter:
    def test_partition_exposure_and_stale_rate(self):
        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_read(0.0, stale=False)  # outside any partition: ignored
        now[0] = 10.0
        meter.on_partition_start(10.0)
        meter.on_read(12.0, stale=True)
        meter.on_read(14.0, stale=False)
        now[0] = 30.0
        meter.on_partition_end(30.0)
        snap = meter.snapshot()
        assert snap["partition_seconds"] == 20.0
        assert snap["reads_in_partition"] == 2
        assert snap["stale_reads_in_partition"] == 1
        assert snap["stale_serve_rate_in_partition"] == 0.5

    def test_time_to_reconverge_tracks_the_last_stale_read(self):
        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_partition_start(0.0)
        now[0] = 50.0
        meter.on_partition_end(50.0)
        meter.on_read(55.0, stale=True)
        meter.on_read(60.0, stale=True)
        meter.on_read(70.0, stale=False)  # fresh reads do not extend it
        now[0] = 100.0
        meter.on_partition_start(100.0)  # settles the previous heal
        snap = meter.snapshot()
        assert snap["heals_observed"] == 1
        assert snap["mean_time_to_reconverge"] == 10.0

    def test_overlapping_partitions_refcount(self):
        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_partition_start(0.0)
        meter.on_partition_start(5.0)
        now[0] = 10.0
        meter.on_partition_end(10.0)
        meter.on_read(12.0, stale=False)  # still one partition active
        now[0] = 20.0
        meter.on_partition_end(20.0)
        snap = meter.snapshot()
        assert snap["partition_seconds"] == 20.0
        assert snap["reads_in_partition"] == 1

    def test_reset_keeps_the_live_partition_open(self):
        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_partition_start(0.0)
        now[0] = 30.0
        meter.reset()  # warm-up boundary mid-partition
        now[0] = 50.0
        meter.on_partition_end(50.0)
        snap = meter.snapshot()
        assert snap["partition_seconds"] == 20.0  # only post-reset exposure

    def test_snapshot_does_not_mutate(self):
        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_partition_start(0.0)
        now[0] = 10.0
        first = meter.snapshot()
        second = meter.snapshot()
        assert first == second


class TestDegradationBoundaries:
    """Edge cases that must never leak NaN/inf into stats or CSV."""

    def test_never_healing_partition_reports_cleanly(self):
        import math

        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_partition_start(10.0)
        meter.on_read(100.0, stale=True)
        now[0] = 500.0  # end of run: the partition never healed
        snap = meter.snapshot()
        assert snap["partition_seconds"] == 490.0
        # No heal ever happened: zero observations, a clean 0.0 mean —
        # never a division artefact.
        assert snap["heals_observed"] == 0.0
        assert snap["mean_time_to_reconverge"] == 0.0
        assert all(math.isfinite(value) for value in snap.values())

    def test_zero_read_partition_has_zero_stale_rate(self):
        now = [0.0]
        meter = DegradationMeter(lambda: now[0])
        meter.on_partition_start(0.0)
        now[0] = 60.0
        snap = meter.snapshot()
        assert snap["reads_in_partition"] == 0.0
        assert snap["stale_serve_rate_in_partition"] == 0.0

    def test_zero_query_window_availability_is_one(self):
        """availability with no queries issued is 1.0, never 0/0."""
        from repro.metrics.collector import MetricsCollector

        sim = Simulator()
        metrics = MetricsCollector()
        metrics.degradation = DegradationMeter(lambda: sim.now)
        stats = metrics.summary().fault_stats
        assert stats["availability"] == 1.0

    def test_unhealed_partition_run_emits_finite_stats(self):
        """End-to-end: a partition outliving the run stays CSV-clean."""
        import math

        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import build_simulation

        plan = FaultPlan(faults=(
            Partition(start=20.0, duration=10_000.0, mode="spatial", frac=0.5),
        ))
        config = SimulationConfig(
            n_peers=10, terrain_width=600.0, terrain_height=600.0,
            sim_time=90.0, warmup=0.0, seed=3, faults=plan,
        )
        result = build_simulation(config, "rpcc-sc", "standard").run()
        stats = result.fault_stats
        assert stats["heals_observed"] == 0.0
        assert stats["partition_seconds"] == pytest.approx(70.0)
        for name, value in stats.items():
            assert math.isfinite(value), f"{name} is not finite: {value!r}"
        rendered = repr(stats)
        assert "nan" not in rendered and "inf" not in rendered
