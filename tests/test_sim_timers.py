"""Unit tests for periodic and countdown timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import CountdownTimer, PeriodicTimer


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_offset(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now), start_offset=3.0)
        timer.start()
        sim.run_until(25.0)
        assert ticks == [3.0, 13.0, 23.0]

    def test_stop_halts_ticking(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(15.0)
        timer.stop()
        sim.run_until(100.0)
        assert ticks == [10.0]

    def test_restart_after_stop(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(15.0)
        timer.stop()
        timer.start()
        sim.run_until(30.0)
        assert ticks == [10.0, 25.0]

    def test_start_idempotent(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(1))
        timer.start()
        timer.start()
        sim.run_until(10.0)
        assert ticks == [1]

    def test_interval_change_applies_after_pending_tick(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(10.0)
        # The tick at t=20 is already scheduled; the new interval kicks in
        # for the tick after it.
        timer.interval = 5.0
        sim.run_until(25.0)
        assert ticks == [10.0, 20.0, 25.0]

    def test_tick_counter(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        sim.run_until(5.5)
        assert timer.ticks == 5

    def test_non_positive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running


class TestCountdownTimer:
    def test_starts_expired(self, sim):
        timer = CountdownTimer(sim, 10.0)
        assert timer.expired
        assert timer.remaining == 0.0

    def test_renew_opens_window(self, sim):
        timer = CountdownTimer(sim, 10.0)
        timer.renew()
        assert timer.remaining == pytest.approx(10.0)
        assert not timer.expired

    def test_remaining_decreases_with_clock(self, sim):
        timer = CountdownTimer(sim, 10.0)
        timer.renew()
        sim.run_until(4.0)
        assert timer.remaining == pytest.approx(6.0)

    def test_expires_after_duration(self, sim):
        timer = CountdownTimer(sim, 10.0)
        timer.renew()
        sim.run_until(10.0)
        assert timer.expired

    def test_renew_extends_window(self, sim):
        timer = CountdownTimer(sim, 10.0)
        timer.renew()
        sim.run_until(8.0)
        timer.renew()
        sim.run_until(12.0)
        assert timer.remaining == pytest.approx(6.0)

    def test_renew_custom_duration(self, sim):
        timer = CountdownTimer(sim, 10.0)
        timer.renew(3.0)
        assert timer.remaining == pytest.approx(3.0)

    def test_negative_renew_rejected(self, sim):
        timer = CountdownTimer(sim, 10.0)
        with pytest.raises(SimulationError):
            timer.renew(-1.0)

    def test_on_expire_callback(self, sim):
        fired = []
        timer = CountdownTimer(sim, 5.0, on_expire=lambda: fired.append(sim.now))
        timer.renew()
        sim.run()
        assert fired == [5.0]

    def test_renew_cancels_previous_expiry(self, sim):
        fired = []
        timer = CountdownTimer(sim, 5.0, on_expire=lambda: fired.append(sim.now))
        timer.renew()
        sim.run_until(3.0)
        timer.renew()
        sim.run()
        assert fired == [8.0]

    def test_expire_now(self, sim):
        fired = []
        timer = CountdownTimer(sim, 5.0, on_expire=lambda: fired.append(1))
        timer.renew()
        timer.expire_now()
        assert timer.expired
        sim.run()
        assert fired == []  # forced expiry does not fire the callback

    def test_non_positive_duration_rejected(self, sim):
        with pytest.raises(SimulationError):
            CountdownTimer(sim, 0.0)

    def test_expires_at(self, sim):
        timer = CountdownTimer(sim, 7.0)
        timer.renew()
        assert timer.expires_at == pytest.approx(7.0)
