"""Unit tests for the subnet grid, crossing tracker and mobility traces."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility.stationary import PiecewiseLinear, Stationary
from repro.mobility.subnets import SubnetGrid, SubnetTracker
from repro.mobility.terrain import Point, Terrain
from repro.mobility.trace import MobilityTrace, record_trace


class TestSubnetGrid:
    def test_cell_counts(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        assert grid.cols == 3
        assert grid.rows == 3
        assert grid.cell_count == 9

    def test_non_divisible_terrain_rounds_up(self):
        grid = SubnetGrid(Terrain(1000, 700), 300.0)
        assert grid.cols == 4
        assert grid.rows == 3

    def test_cell_of_interior_point(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        assert grid.cell_of(Point(100, 100)) == (0, 0)
        assert grid.cell_of(Point(700, 1200)) == (1, 2)

    def test_cell_of_clamps_outside_points(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        assert grid.cell_of(Point(-50, 5000)) == (0, 2)

    def test_border_point_belongs_to_upper_cell(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        assert grid.cell_of(Point(500.0, 0.0)) == (1, 0)

    def test_invalid_cell_size(self, terrain):
        with pytest.raises(ConfigurationError):
            SubnetGrid(terrain, 0.0)


class TestSubnetTracker:
    def test_stationary_never_crosses(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        tracker = SubnetTracker(grid, Stationary(Point(100, 100)))
        assert tracker.crossings_between(0.0, 1000.0) == 0

    def test_straight_line_crossings(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        # Moves from x=100 to x=1400 over 100 s: crosses x=500 and x=1000.
        model = PiecewiseLinear([(0.0, Point(100, 250)), (100.0, Point(1400, 250))])
        tracker = SubnetTracker(grid, model, sample_interval=1.0)
        assert tracker.crossings_between(0.0, 100.0) == 2

    def test_empty_window(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        tracker = SubnetTracker(grid, Stationary(Point(0, 0)))
        assert tracker.crossings_between(50.0, 50.0) == 0

    def test_final_sample_counted(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        model = PiecewiseLinear([(0.0, Point(450, 0)), (10.0, Point(550, 0))])
        tracker = SubnetTracker(grid, model, sample_interval=100.0)
        assert tracker.crossings_between(0.0, 10.0) == 1

    def test_invalid_sample_interval(self, terrain):
        grid = SubnetGrid(terrain, 500.0)
        with pytest.raises(ConfigurationError):
            SubnetTracker(grid, Stationary(Point(0, 0)), sample_interval=0.0)


class TestMobilityTrace:
    def test_record_length(self):
        trace = record_trace(Stationary(Point(1, 2)), duration=10.0, interval=1.0)
        assert len(trace) == 11
        assert trace.duration == pytest.approx(10.0)

    def test_timestamps(self):
        trace = record_trace(Stationary(Point(0, 0)), duration=4.0, interval=2.0)
        assert trace.timestamps() == [0.0, 2.0, 4.0]

    def test_total_distance_stationary(self):
        trace = record_trace(Stationary(Point(3, 3)), duration=5.0)
        assert trace.total_distance() == 0.0

    def test_total_distance_linear(self):
        model = PiecewiseLinear([(0.0, Point(0, 0)), (10.0, Point(100, 0))])
        trace = record_trace(model, duration=10.0, interval=1.0)
        assert trace.total_distance() == pytest.approx(100.0)

    def test_replay_matches_original_at_samples(self):
        model = PiecewiseLinear([(0.0, Point(0, 0)), (10.0, Point(100, 50))])
        trace = record_trace(model, duration=10.0, interval=1.0)
        replay = trace.as_model()
        for t in trace.timestamps():
            original = model.position(t)
            replayed = replay.position(t)
            assert original.distance_to(replayed) < 1e-9

    def test_invalid_trace_parameters(self):
        with pytest.raises(ConfigurationError):
            MobilityTrace(0.0, 0.0, [Point(0, 0)])
        with pytest.raises(ConfigurationError):
            MobilityTrace(0.0, 1.0, [])
        with pytest.raises(ConfigurationError):
            record_trace(Stationary(Point(0, 0)), duration=-1.0)
