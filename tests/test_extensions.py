"""Tests for the future-work extensions and ablation strategies."""

import random

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.errors import ConfigurationError, ProtocolError
from repro.extensions.adaptive import AdaptiveConfig, AdaptiveRPCCStrategy
from repro.extensions.relay_control import ControlledConfig, ControlledRPCCStrategy
from repro.extensions.replica import GossipReplication, ReplicatedRegister, WriteTag
from repro.extensions.selection_ablation import (
    RandomSelectionConfig,
    RandomSelectionRPCCStrategy,
)

from tests.conftest import line_positions, make_eligible, make_world


class TestAdaptiveConfig:
    def test_valid_defaults(self):
        config = AdaptiveConfig()
        assert config.min_scale <= 1.0 <= config.max_scale

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(min_scale=2.0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(grow=0.9)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(shrink=1.5)

    def test_clamp(self):
        config = AdaptiveConfig(min_scale=0.5, max_scale=2.0)
        assert config.clamp(10.0) == 2.0
        assert config.clamp(0.1) == 0.5
        assert config.clamp(1.3) == 1.3


class TestAdaptiveRPCC:
    def make(self, **kwargs):
        defaults = dict(ttn=100.0, ttr=75.0, poll_timeout=2.0,
                        source_poll_timeout=2.0)
        defaults.update(kwargs)
        config = AdaptiveConfig(**defaults)
        return make_world(
            line_positions(4), lambda ctx: AdaptiveRPCCStrategy(ctx, config)
        )

    def test_quiet_source_stretches_interval(self):
        world = self.make()
        world.strategy.start()
        world.run(500.0)  # several quiet intervals
        source = world.agent(0).source
        assert source.current_interval > 100.0

    def test_hot_source_shrinks_interval(self):
        world = self.make()
        world.strategy.start()
        for _ in range(40):
            world.update_item(0)
            world.run(25.0)
        source = world.agent(0).source
        assert source.current_interval < 100.0

    def test_ack_b_shrinks_ttp_scale(self):
        world = self.make()
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(110.0)  # node 1 relays item 3
        world.update_item(3)
        world.run(110.0)  # relay refreshed to v1
        world.give_copy(2, 3, version=0)
        world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(10.0)
        assert world.agent(2).cache_peer.ttp_scale(3) < 1.0

    def test_ack_a_grows_ttp_scale(self):
        world = self.make()
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(210.0)
        world.give_copy(2, 3)
        world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(10.0)
        assert world.agent(2).cache_peer.ttp_scale(3) > 1.0


class TestRelayControl:
    def make(self, max_relays):
        config = ControlledConfig(
            max_relays=max_relays, ttn=100.0, ttr=75.0,
            poll_timeout=2.0, source_poll_timeout=2.0,
        )
        return make_world(
            line_positions(5), lambda ctx: ControlledRPCCStrategy(ctx, config)
        )

    def test_cap_validated(self):
        with pytest.raises(ConfigurationError):
            ControlledConfig(max_relays=0)

    def test_cap_enforced(self):
        world = self.make(max_relays=1)
        for node in (1, 2, 3):
            world.give_copy(node, 0)
            make_eligible(world.host(node))
        world.strategy.start()
        world.run(400.0)
        assert len(world.agent(0).source.relay_table) == 1
        assert world.metrics.counter("rpcc_apply_rejected_cap") >= 1

    def test_generous_cap_accepts_all(self):
        world = self.make(max_relays=10)
        for node in (1, 2, 3):
            world.give_copy(node, 0)
            make_eligible(world.host(node))
        world.strategy.start()
        world.run(200.0)
        assert len(world.agent(0).source.relay_table) == 3

    def test_slot_reopens_after_cancel(self):
        world = self.make(max_relays=1)
        world.give_copy(1, 0)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(110.0)
        assert world.agent(1).roles.is_relay(0)
        # Relay 1 loses its copy and resigns; node 2 takes the open slot
        # at the next invalidation round.
        world.host(1).store.discard(0)
        world.agent(1)._resign(0)
        world.give_copy(2, 0)
        make_eligible(world.host(2))
        world.run(400.0)
        assert world.agent(2).roles.is_relay(0)


class StubAgentStrategy:
    """Bare strategy so make_world can run without protocol logic."""

    def __init__(self, context):
        self.context = context
        self.agents = {}

    def make_agent(self, host):
        return None

    def start(self):
        pass


class TestReplicatedRegister:
    def test_write_bumps_tag(self):
        register = ReplicatedRegister(1, 0)
        tag = register.write(42)
        assert tag == WriteTag(1, 1)
        assert register.read() == (42, tag)

    def test_merge_takes_newer(self):
        register = ReplicatedRegister(1, 0)
        register.write(1)
        assert register.merge(WriteTag(5, 2), 99)
        assert register.read()[0] == 99

    def test_merge_rejects_older(self):
        register = ReplicatedRegister(1, 0)
        register.write(1)
        register.write(2)
        assert not register.merge(WriteTag(1, 9), 99)
        assert register.read()[0] == 2

    def test_tie_broken_by_writer_id(self):
        register = ReplicatedRegister(1, 0)
        register.write(10)  # tag (1, 1)
        assert register.merge(WriteTag(1, 2), 20)  # same clock, higher writer
        assert register.read()[0] == 20

    def test_lamport_clock_absorbs_remote(self):
        register = ReplicatedRegister(1, 0)
        register.merge(WriteTag(10, 2), 5)
        tag = register.write(7)
        assert tag.lamport == 11  # clock advanced past the remote write


class TestGossipReplication:
    def make(self, holders=4):
        world = make_world(line_positions(holders), StubAgentStrategy)
        replication = GossipReplication(
            world.sim,
            world.network,
            item_id=0,
            holders=list(range(holders)),
            rng=random.Random(5),
            gossip_interval=10.0,
        )
        return world, replication

    def test_needs_two_holders(self):
        world = make_world(line_positions(2), StubAgentStrategy)
        with pytest.raises(ProtocolError):
            GossipReplication(
                world.sim, world.network, 0, [0], random.Random(1)
            )

    def test_single_write_converges(self):
        world, replication = self.make()
        replication.start()
        replication.write(0, 42)
        world.run(300.0)
        assert replication.converged()
        assert all(
            replication.read(node)[0] == 42 for node in range(4)
        )

    def test_concurrent_writes_converge_to_one_winner(self):
        world, replication = self.make()
        replication.start()
        replication.write(0, 10)
        replication.write(3, 30)  # same Lamport clock: writer 3 wins ties
        world.run(400.0)
        assert replication.converged()
        assert replication.distinct_values() == 1
        assert replication.read(1)[0] == 30

    def test_later_write_beats_earlier(self):
        world, replication = self.make()
        replication.start()
        replication.write(0, 10)
        world.run(100.0)  # converge on 10 (clock advances everywhere)
        replication.write(2, 20)
        world.run(300.0)
        assert replication.converged()
        assert replication.read(0)[0] == 20

    def test_offline_holder_catches_up(self):
        world, replication = self.make()
        replication.start()
        world.host(3).set_online(False)
        replication.write(0, 77)
        world.run(200.0)
        assert replication.read(3)[0] != 77 or replication.converged() is False
        world.host(3).set_online(True)
        world.run(300.0)
        assert replication.converged()
        assert replication.read(3)[0] == 77


class TestRandomSelectionAblation:
    def test_config_validated(self):
        with pytest.raises(ConfigurationError):
            RandomSelectionConfig(promote_prob=0.0)

    def test_promotes_without_eligibility(self):
        config = RandomSelectionConfig(
            promote_prob=1.0, ttn=100.0, ttr=75.0,
            poll_timeout=2.0, source_poll_timeout=2.0,
        )
        world = make_world(
            line_positions(4), lambda ctx: RandomSelectionRPCCStrategy(ctx, config)
        )
        world.give_copy(1, 3)  # NOT made eligible
        world.strategy.start()
        world.run(250.0)
        assert world.agent(1).roles.is_relay(3)
