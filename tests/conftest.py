"""Shared test fixtures and helpers.

``make_world`` builds a small, fully controlled MP2P world: stationary
hosts at explicit positions, a chosen consistency strategy, and no
background workload — tests drive queries and updates by hand and step
the simulator themselves.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import pytest

from repro.cache.catalog import Catalog
from repro.cache.directory import CacheDirectory
from repro.cache.discovery import Discovery
from repro.cache.item import CachedCopy
from repro.consistency.base import ConsistencyStrategy, StrategyContext
from repro.metrics.collector import MetricsCollector
from repro.mobility.stationary import Stationary
from repro.mobility.terrain import Point, Terrain
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.peers.coefficients import CoefficientTracker
from repro.peers.host import MobileHost
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class World:
    """A hand-wired mini MP2P system for protocol tests."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        hosts: Dict[int, MobileHost],
        catalog: Catalog,
        directory: CacheDirectory,
        metrics: MetricsCollector,
        context: StrategyContext,
        strategy: ConsistencyStrategy,
    ) -> None:
        self.sim = sim
        self.network = network
        self.hosts = hosts
        self.catalog = catalog
        self.directory = directory
        self.metrics = metrics
        self.context = context
        self.strategy = strategy

    def host(self, node_id: int) -> MobileHost:
        return self.hosts[node_id]

    def agent(self, node_id: int):
        return self.strategy.agent_for(node_id)

    def give_copy(self, node_id: int, item_id: int, version: Optional[int] = None) -> CachedCopy:
        """Install a cached copy of ``item_id`` at ``node_id``."""
        master = self.catalog.master(item_id)
        copy = CachedCopy(
            item_id,
            master.version if version is None else version,
            master.content_size,
            self.sim.now,
        )
        self.hosts[node_id].store.put(copy)
        return copy

    def update_item(self, item_id: int) -> int:
        """Bump the master copy at its source host."""
        return self.hosts[self.catalog.source_of(item_id)].update_master()

    def run(self, seconds: float) -> None:
        self.sim.run_until(self.sim.now + seconds)


def make_world(
    positions: Sequence[Tuple[float, float]],
    strategy_factory: Callable[[StrategyContext], ConsistencyStrategy],
    radio_range: float = 150.0,
    content_size: int = 1000,
    cache_capacity: int = 10,
    phi: float = 100.0,
) -> World:
    """Build a :class:`World` of stationary hosts at ``positions``.

    Host ``i`` sources item ``i``.  The strategy is built via
    ``strategy_factory(context)`` and one agent is attached per host.
    """
    sim = Simulator()
    metrics = MetricsCollector()
    network = Network(sim, radio_range=radio_range, link=LinkModel(), traffic=metrics)
    catalog = Catalog.one_item_per_host(range(len(positions)), content_size)
    directory = CacheDirectory()
    hosts: Dict[int, MobileHost] = {}
    for node_id, (x, y) in enumerate(positions):
        host = MobileHost(
            node_id,
            sim,
            Stationary(Point(x, y)),
            cache_capacity=cache_capacity,
            directory=directory,
            coefficient_tracker=CoefficientTracker(phi=phi),
        )
        host.attach_source(catalog.master(node_id))
        network.register(host)
        hosts[node_id] = host
    discovery = Discovery(catalog, directory)
    context = StrategyContext(network, catalog, discovery, metrics)
    strategy = strategy_factory(context)
    for host in hosts.values():
        host.agent = strategy.make_agent(host)
    return World(sim, network, hosts, catalog, directory, metrics, context, strategy)


def make_eligible(host: MobileHost) -> None:
    """Force a host's coefficients to pass the Table-1 thresholds."""
    tracker = host.tracker
    tracker.record_access(50)
    tracker.set_energy_fraction(1.0)
    tracker.close_period()


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random stream."""
    return random.Random(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic stream registry."""
    return RandomStreams(seed=99)


@pytest.fixture
def terrain() -> Terrain:
    """The paper's 1.5 km x 1.5 km flatland."""
    return Terrain(1500.0, 1500.0)


def line_positions(count: int, spacing: float = 100.0) -> List[Tuple[float, float]]:
    """``count`` hosts on a horizontal line, ``spacing`` metres apart."""
    return [(i * spacing, 0.0) for i in range(count)]
