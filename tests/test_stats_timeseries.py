"""Unit tests for replication statistics and the time-series recorder."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.stats import (
    aggregate,
    run_replicated,
    summarize_metric,
)
from repro.metrics.timeseries import TimeSeries


class TestSummarizeMetric:
    def test_single_sample(self):
        stats = summarize_metric("x", [5.0])
        assert stats.mean == 5.0
        assert stats.stdev == 0.0
        assert stats.ci95 == 0.0
        assert stats.samples == 1

    def test_multiple_samples(self):
        stats = summarize_metric("x", [2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.stdev == pytest.approx(2.0)
        assert stats.ci95 == pytest.approx(1.96 * 2.0 / 3 ** 0.5)
        assert stats.low < 4.0 < stats.high

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_metric("x", [])

    def test_str_format(self):
        assert "n=2" in str(summarize_metric("x", [1.0, 2.0]))


class TestRunReplicated:
    def tiny(self):
        return SimulationConfig(
            n_peers=10, sim_time=200.0, warmup=0.0,
            terrain_width=700.0, terrain_height=700.0,
        )

    def test_one_result_per_seed(self):
        results = run_replicated(self.tiny(), "rpcc-wc", seeds=(1, 2, 3))
        assert len(results) == 3
        assert len({r.config.seed for r in results}) == 3

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replicated(self.tiny(), "push", seeds=())

    def test_aggregate_default_metrics(self):
        results = run_replicated(self.tiny(), "pull", seeds=(1, 2))
        stats = aggregate(results)
        assert set(stats) >= {
            "transmissions", "mean_latency", "answered_ratio",
        }
        assert stats["transmissions"].samples == 2
        assert stats["answered_ratio"].mean <= 1.0

    def test_aggregate_custom_metric(self):
        results = run_replicated(self.tiny(), "push", seeds=(1,))
        stats = aggregate(
            results, {"updates": lambda r: float(r.total_updates)}
        )
        assert set(stats) == {"updates"}

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_variance_nonzero_across_seeds(self):
        results = run_replicated(self.tiny(), "pull", seeds=(1, 2, 3))
        stats = aggregate(results)
        assert stats["transmissions"].stdev > 0


class TestTimeSeries:
    def test_record_and_access(self):
        series = TimeSeries("traffic")
        series.record(0.0, 10.0)
        series.record(5.0, 20.0)
        assert len(series) == 2
        assert series.times == [0.0, 5.0]
        assert series.values == [10.0, 20.0]
        assert series.last() == (5.0, 20.0)

    def test_empty_last(self):
        assert TimeSeries().last() is None

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            series.record(5.0, 1.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.record(1.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_between(self):
        series = TimeSeries()
        for t in range(10):
            series.record(float(t), float(t))
        assert series.between(2.0, 5.0) == [2.0, 3.0, 4.0]

    def test_bucketed_mean(self):
        series = TimeSeries()
        for t, v in ((0.0, 1.0), (1.0, 3.0), (10.0, 10.0)):
            series.record(t, v)
        buckets = series.bucketed(5.0)
        assert buckets == [(0.0, 2.0), (10.0, 10.0)]

    def test_bucketed_sum_and_count(self):
        series = TimeSeries()
        for t in (0.0, 1.0, 2.0, 7.0):
            series.record(t, 2.0)
        assert series.bucketed(5.0, "sum") == [(0.0, 6.0), (5.0, 2.0)]
        assert series.bucketed(5.0, "count") == [(0.0, 3.0), (5.0, 1.0)]

    def test_bucketed_empty(self):
        assert TimeSeries().bucketed(5.0) == []

    def test_bucketed_validation(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            series.bucketed(0.0)
        with pytest.raises(ConfigurationError):
            series.bucketed(5.0, "median")

    def test_rate_per_second(self):
        series = TimeSeries()
        for t in (0.0, 1.0, 2.0, 3.0, 12.0):
            series.record(t, 1.0)
        rates = series.rate_per_second(10.0)
        assert rates == [(0.0, 0.4), (10.0, 0.1)]
