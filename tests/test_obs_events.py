"""The trace-event vocabulary: serialisation, sinks, bus, engine wiring."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EVENT_TYPES,
    CacheHit,
    CacheMiss,
    ControllerActuated,
    ControllerSampled,
    FaultNodeCrashed,
    FaultNodeRebooted,
    FaultPartitionEnded,
    FaultPartitionStarted,
    FaultRelayKilled,
    FetchCompleted,
    FetchStarted,
    InvalidationReceived,
    InvalidationSent,
    JsonlSink,
    ListSink,
    MetricsReset,
    NodeOffline,
    NodeOnline,
    NullSink,
    NullTraceBus,
    NULL_TRACE,
    PollAnswered,
    PollSent,
    QueryIssued,
    ReadServed,
    RelayDemoted,
    RelayPromoted,
    SourceUpdate,
    TraceBus,
    event_from_dict,
    iter_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.sim.engine import Simulator

SAMPLE_EVENTS = [
    QueryIssued(time=1.0, node=3, item=7, level="strong", query_id=42),
    CacheHit(time=1.0, node=3, item=7, version=2),
    CacheMiss(time=1.5, node=4, item=7),
    ReadServed(
        time=2.25, node=3, item=7, version=2, level="strong", query_id=42,
        served_locally=True, remote=False, fallback=False, cache_hit=True,
        latency=1.25, staleness_age=0.0,
    ),
    SourceUpdate(time=3.0, node=7, item=7, version=3),
    InvalidationSent(time=4.0, node=7, item=7, version=3, ttl=3, protocol="rpcc"),
    InvalidationReceived(time=4.01, node=3, item=7, version=3),
    PollSent(time=5.0, node=3, item=7, poll_id=9, stage="flood", ttl=1),
    PollAnswered(time=5.1, node=3, item=7, poll_id=9, version=3, fresh=False),
    FetchStarted(time=6.0, node=5, item=7, target=7, kind="get-new"),
    FetchCompleted(time=6.2, node=5, item=7, version=3, kind="get-new"),
    RelayPromoted(time=7.0, node=5, item=7),
    RelayDemoted(time=8.0, node=5, item=7, reason="ineligible"),
    NodeOnline(time=9.0, node=2),
    NodeOffline(time=9.5, node=2),
    FaultPartitionStarted(time=9.6, mode="spatial", name="east-west"),
    FaultPartitionEnded(time=9.7, mode="spatial", name="east-west"),
    FaultNodeCrashed(time=9.8, node=4, wiped=True),
    FaultNodeRebooted(time=9.85, node=4),
    FaultRelayKilled(time=9.9, node=5, item=7),
    ControllerSampled(
        time=9.95, policy="hysteresis", availability=0.85, stale_rate=0.04,
        query_rate=1.5, update_rate=0.2, partitions=1, relays=3,
    ),
    ControllerActuated(
        time=9.95, policy="hysteresis", knob="ttp", value=120.0,
        reason="tighten: 1 open partition(s)",
    ),
    MetricsReset(time=10.0),
]


class TestSerialisation:
    def test_every_event_type_is_registered(self):
        assert len(EVENT_TYPES) == 23
        for event in SAMPLE_EVENTS:
            assert EVENT_TYPES[event.etype] is type(event)

    def test_registry_tags_are_unique_and_stable(self):
        assert set(EVENT_TYPES) == {
            "query_issued", "cache_hit", "cache_miss", "read_served",
            "source_update", "invalidation_sent", "invalidation_received",
            "poll_sent", "poll_answered", "fetch_started", "fetch_completed",
            "relay_promoted", "relay_demoted", "node_online", "node_offline",
            "fault_partition_start", "fault_partition_end", "fault_node_crash",
            "fault_node_reboot", "fault_relay_kill",
            "controller_sampled", "controller_actuated",
            "metrics_reset",
        }

    @pytest.mark.parametrize("event", SAMPLE_EVENTS, ids=lambda e: e.etype)
    def test_dict_round_trip(self, event):
        payload = event.to_dict()
        assert payload["e"] == event.etype
        assert payload["time"] == event.time
        assert event_from_dict(payload) == event

    def test_to_dict_is_json_ready(self):
        for event in SAMPLE_EVENTS:
            json.dumps(event.to_dict())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            event_from_dict({"e": "warp_drive", "time": 0.0})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            event_from_dict({"e": "cache_hit", "time": 0.0, "bogus_field": 1})


class TestJsonl:
    def test_stream_round_trip(self):
        buffer = io.StringIO()
        written = write_jsonl(SAMPLE_EVENTS, buffer)
        assert written == len(SAMPLE_EVENTS)
        buffer.seek(0)
        assert read_jsonl(buffer) == SAMPLE_EVENTS

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(SAMPLE_EVENTS, str(path))
        assert read_jsonl(str(path)) == SAMPLE_EVENTS
        # One JSON object per line.
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(SAMPLE_EVENTS)

    def test_iter_skips_blank_lines(self):
        buffer = io.StringIO()
        write_jsonl(SAMPLE_EVENTS[:2], buffer)
        buffer.write("\n\n")
        write_jsonl(SAMPLE_EVENTS[2:3], buffer)
        buffer.seek(0)
        assert list(iter_jsonl(buffer)) == SAMPLE_EVENTS[:3]

    def test_float_times_survive_exactly(self):
        event = ReadServed(time=123.456789012345, node=1, item=2, version=3,
                           latency=0.1 + 0.2)
        buffer = io.StringIO()
        write_jsonl([event], buffer)
        buffer.seek(0)
        (back,) = read_jsonl(buffer)
        assert back.time == event.time
        assert back.latency == event.latency


class TestSinks:
    def test_list_sink_accumulates_in_order(self):
        sink = ListSink()
        for event in SAMPLE_EVENTS:
            sink.on_event(event)
        assert sink.events == SAMPLE_EVENTS
        assert len(sink) == len(SAMPLE_EVENTS)

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(str(path))
        for event in SAMPLE_EVENTS:
            sink.on_event(event)
        sink.close()
        assert sink.events_written == len(SAMPLE_EVENTS)
        assert read_jsonl(str(path)) == SAMPLE_EVENTS

    def test_jsonl_sink_borrowed_handle_not_closed(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.on_event(SAMPLE_EVENTS[0])
        sink.close()
        assert not buffer.closed  # flushed, not closed
        buffer.seek(0)
        assert read_jsonl(buffer) == SAMPLE_EVENTS[:1]

    def test_null_sink_counts(self):
        sink = NullSink()
        sink.on_event(SAMPLE_EVENTS[0])
        sink.on_event(SAMPLE_EVENTS[1])
        assert sink.events_seen == 2


class TestBus:
    def test_fan_out_to_multiple_sinks(self):
        bus = TraceBus()
        first = bus.add_sink(ListSink())
        second = bus.add_sink(ListSink())
        bus.emit(SAMPLE_EVENTS[0])
        assert first.events == second.events == SAMPLE_EVENTS[:1]
        assert bus.events_emitted == 1

    def test_remove_sink(self):
        bus = TraceBus()
        sink = bus.add_sink(ListSink())
        bus.remove_sink(sink)
        bus.emit(SAMPLE_EVENTS[0])
        assert sink.events == []
        bus.remove_sink(sink)  # double-remove is a no-op

    def test_close_closes_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bus = TraceBus()
        bus.add_sink(JsonlSink(str(path)))
        bus.emit(SAMPLE_EVENTS[0])
        bus.close()
        assert read_jsonl(str(path)) == SAMPLE_EVENTS[:1]

    def test_enabled_flags(self):
        assert TraceBus().enabled is True
        assert NullTraceBus().enabled is False
        assert NULL_TRACE.enabled is False

    def test_null_bus_discards(self):
        NULL_TRACE.emit(SAMPLE_EVENTS[0])  # must not raise
        NULL_TRACE.close()


class TestEngineWiring:
    def test_simulator_defaults_to_null_trace(self):
        assert Simulator().trace is NULL_TRACE

    def test_attach_and_detach(self):
        sim = Simulator()
        bus = TraceBus()
        sim.attach_trace(bus)
        assert sim.trace is bus
        sim.detach_trace()
        assert sim.trace is NULL_TRACE
