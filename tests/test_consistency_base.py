"""Unit tests for the shared query machinery (local + remote queries)."""

import pytest

from repro.consistency.base import BaseAgent, ConsistencyStrategy
from repro.consistency.levels import ConsistencyLevel

from tests.conftest import line_positions, make_world


class EchoStrategy(ConsistencyStrategy):
    """Answers every held copy immediately with its local version."""

    name = "echo"

    def make_agent(self, host):
        return EchoAgent(self, host)


class EchoAgent(BaseAgent):
    def validate_hit(self, copy, level, job):
        self.answer(job, copy.version, served_locally=True)

    def handle_protocol_message(self, message):
        raise AssertionError(f"unexpected message {message}")


@pytest.fixture
def world():
    return make_world(line_positions(4), EchoStrategy)


class TestLocalQueries:
    def test_source_answers_own_item_immediately(self, world):
        record = world.agent(0).local_query(0, ConsistencyLevel.STRONG)
        assert record.answered
        assert record.latency == 0.0
        assert record.served_locally

    def test_hit_validates_locally(self, world):
        world.give_copy(0, 2)
        record = world.agent(0).local_query(2, ConsistencyLevel.WEAK)
        assert record.answered
        assert record.cache_hit

    def test_query_counts_cache_access(self, world):
        before = world.host(0).tracker._accesses
        world.agent(0).local_query(2, ConsistencyLevel.WEAK)
        assert world.host(0).tracker._accesses == before + 1

    def test_offline_source_still_answers_own_item(self, world):
        world.host(0).set_online(False)
        record = world.agent(0).local_query(0, ConsistencyLevel.STRONG)
        assert record.answered

    def test_offline_host_serves_local_copy(self, world):
        world.give_copy(0, 2)
        world.host(0).set_online(False)
        record = world.agent(0).local_query(2, ConsistencyLevel.STRONG)
        assert record.answered
        assert world.metrics.counter("query_answered_offline") == 1

    def test_offline_host_without_copy_unanswerable(self, world):
        world.host(0).set_online(False)
        record = world.agent(0).local_query(2, ConsistencyLevel.WEAK)
        assert not record.answered
        assert world.metrics.counter("query_offline_unanswerable") == 1


class TestRemoteQueries:
    def test_miss_served_by_nearest_holder(self, world):
        world.give_copy(1, 3)  # holder one hop away; source 3 hops
        record = world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.run(1.0)
        assert record.answered
        assert not record.cache_hit
        assert record.latency > 0.0

    def test_miss_served_by_source_when_no_holder(self, world):
        record = world.agent(0).local_query(3, ConsistencyLevel.STRONG)
        world.run(1.0)
        assert record.answered

    def test_reply_not_cached_by_default(self, world):
        record = world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.run(1.0)
        assert record.answered
        assert 3 not in world.host(0).store

    def test_reply_cached_when_enabled(self, world):
        world.context.cache_on_read = True
        record = world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.run(1.0)
        assert record.answered
        assert 3 in world.host(0).store

    def test_retry_after_holder_evicts(self, world):
        world.give_copy(1, 3)
        record = world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        # Holder drops the copy before the request arrives.
        world.host(1).store.discard(3)
        world.run(30.0)
        assert record.answered  # retried against the source

    def test_remote_query_counts_access_at_holder(self, world):
        world.give_copy(1, 3)
        before = world.host(1).tracker._accesses
        world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.run(1.0)
        assert world.host(1).tracker._accesses == before + 1

    def test_abandoned_when_nobody_reachable(self):
        # Requester isolated from every holder and the source.
        world = make_world([(0, 0), (10_000, 0), (10_100, 0)], EchoStrategy)
        record = world.agent(0).local_query(2, ConsistencyLevel.WEAK)
        world.run(60.0)
        assert not record.answered
        assert world.metrics.counter("query_no_holder") >= 1

    def test_staleness_audited_at_client(self, world):
        world.give_copy(1, 3, version=0)
        world.update_item(3)  # master now v1; holder still v0
        record = world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.run(1.0)
        assert record.answered
        assert world.metrics.staleness.stale_reads() == 1

    def test_late_duplicate_reply_ignored(self, world):
        world.give_copy(1, 3)
        world.give_copy(2, 3)
        record = world.agent(0).local_query(3, ConsistencyLevel.WEAK)
        world.run(60.0)
        assert record.answered
        # exactly one close: no "answered twice" error was raised
        assert world.metrics.latency.answered == 1
