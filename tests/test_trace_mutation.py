"""Mutation smoke test: the checker must *catch* an injected protocol bug.

The scenario plants an RPCC relay whose APPLY was lost — the source does
not know about it, so the invalidation flood is the relay's only refresh
channel — then suppresses every invalidation delivery to that relay.
A later strong read served through the stale relay must produce exactly
one ``strong`` violation; the identical run without the suppression must
be clean.  This proves the observability layer detects real consistency
bugs rather than vacuously passing.
"""

from __future__ import annotations

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.obs import InvariantChecker, ListSink, TraceBus

from tests.conftest import World, line_positions, make_world


def _rpcc_world() -> World:
    # ttn < ttr inverts the paper's defaults on purpose: the invalidation
    # flood fires while the relay's TTR is still open, which is the only
    # window in which a suppressed delivery can leave the relay answering
    # polls with a version it should know is dead.
    return make_world(
        line_positions(3),
        lambda ctx: RPCCStrategy(
            ctx, RPCCConfig(ttn=30.0, ttr=90.0, poll_ttl=1)
        ),
    )


def _plant_unregistered_relay(world: World) -> None:
    """Node 1 acts as relay for item 0, but the source never saw its APPLY."""
    world.give_copy(1, 0)
    world.give_copy(2, 0)
    agent = world.agent(1)
    agent.roles.become_candidate(0)
    agent.roles.promote(0)
    agent.relay.renew_ttr(0)
    # Deliberately NOT in world.agent(0).source.relay_table: a registered
    # relay would be resynchronised by the source's unicast UPDATE push,
    # which is not an invalidation and therefore not suppressed.


def _suppress_invalidations_to(world: World, victim: int) -> None:
    original = world.network._deliver

    def lossy_deliver(target, message):
        if target == victim and message.is_invalidation:
            return  # the injected bug: this delivery silently vanishes
        original(target, message)

    world.network._deliver = lossy_deliver


def _run_scenario(world: World, sink: ListSink) -> None:
    bus = TraceBus()
    bus.add_sink(sink)
    world.sim.attach_trace(bus)
    world.run(1.0)
    world.update_item(0)
    world.agent(0).source._on_ttn()  # flood the invalidation now
    world.run(5.0)
    world.agent(2).local_query(0, ConsistencyLevel.STRONG)
    world.run(30.0)


def _check(sink: ListSink):
    return InvariantChecker(delta=240.0).feed_all(sink.events).finish()


def test_suppressed_invalidation_yields_exactly_one_strong_violation():
    world = _rpcc_world()
    _plant_unregistered_relay(world)
    _suppress_invalidations_to(world, victim=1)
    sink = ListSink()
    _run_scenario(world, sink)

    report = _check(sink)
    assert not report.ok
    assert report.by_invariant() == {"strong": 1}
    (violation,) = report.violations
    assert violation.invariant == "strong"
    assert violation.node == 2
    assert violation.item == 0
    assert violation.served_version == 0


def test_control_run_without_mutation_is_clean():
    world = _rpcc_world()
    _plant_unregistered_relay(world)
    sink = ListSink()
    _run_scenario(world, sink)

    report = _check(sink)
    assert report.ok, report.format()
    # The same machinery observed real reads — the pass is not vacuous.
    assert report.reads_checked >= 1


def test_mutated_and_control_runs_trace_the_same_shape():
    """Both runs issue the query; only the verdict differs."""
    results = {}
    for label, mutate in (("control", False), ("mutated", True)):
        world = _rpcc_world()
        _plant_unregistered_relay(world)
        if mutate:
            _suppress_invalidations_to(world, victim=1)
        sink = ListSink()
        _run_scenario(world, sink)
        results[label] = (
            sum(1 for e in sink.events if e.etype == "query_issued"),
            _check(sink).ok,
        )
    assert results["control"] == (1, True)
    assert results["mutated"] == (1, False)
