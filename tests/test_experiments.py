"""Tests for the experiment harness: Table-1 config, runner, figure sweeps.

Simulation-driving tests use small worlds (12 peers, a few minutes) so
the suite stays fast while still exercising every strategy end to end.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import TABLE1_ROWS, SimulationConfig
from repro.experiments.figures.base import FigureData, extract_series, run_axis_sweep
from repro.experiments.runner import (
    STRATEGY_SPECS,
    build_simulation,
    run_simulation,
)


def tiny_config(**kwargs):
    defaults = dict(
        n_peers=12,
        sim_time=300.0,
        warmup=0.0,
        seed=11,
        terrain_width=800.0,
        terrain_height=800.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestSimulationConfig:
    def test_table1_defaults(self):
        config = SimulationConfig()
        assert config.n_peers == 50
        assert config.cache_num == 10
        assert config.sim_time == 5 * 3600.0
        assert config.update_interval == 120.0
        assert config.query_interval == 20.0
        assert config.ttl_broadcast == 8
        assert config.ttl_rpcc == 3
        assert config.ttn == 120.0
        assert config.ttr == 90.0
        assert config.ttp == 240.0
        assert config.switch_interval == 300.0

    def test_table1_rows_complete(self):
        names = [row[0] for row in SimulationConfig().table1_rows()]
        assert names == TABLE1_ROWS

    def test_with_overrides_returns_copy(self):
        base = SimulationConfig()
        other = base.with_overrides(cache_num=5)
        assert other.cache_num == 5
        assert base.cache_num == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_peers": 0},
            {"cache_num": 0},
            {"sim_time": -1.0},
            {"ttl_broadcast": 0},
            {"stable_fraction": 1.5},
            {"speed_min": 0.0},
            {"warmup": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)


class TestBuildSimulation:
    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            build_simulation(tiny_config(), "gossip")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_simulation(tiny_config(), "push", scenario="weird")

    def test_hosts_and_catalog_sized(self):
        simulation = build_simulation(tiny_config(), "push")
        assert len(simulation.hosts) == 12
        assert len(simulation.catalog) == 12
        assert all(h.source_item is not None for h in simulation.hosts.values())

    def test_standard_placement_fills_caches(self):
        simulation = build_simulation(tiny_config(cache_num=4), "pull")
        for host in simulation.hosts.values():
            assert len(host.store) == 4
            assert host.node_id not in host.store

    def test_single_source_placement(self):
        simulation = build_simulation(tiny_config(), "rpcc-sc", "single_source")
        item = simulation.single_source_item
        assert item is not None
        source = simulation.catalog.source_of(item)
        for host_id, host in simulation.hosts.items():
            if host_id == source:
                assert item not in host.store
            else:
                assert item in host.store

    def test_stable_fraction_respected(self):
        simulation = build_simulation(tiny_config(stable_fraction=0.5), "push")
        switchers = sum(
            1 for host in simulation.hosts.values() if host.switching is not None
        )
        assert switchers == 6


class TestRunSimulation:
    @pytest.mark.parametrize("spec", STRATEGY_SPECS)
    def test_every_spec_runs_and_answers(self, spec):
        result = run_simulation(tiny_config(), spec)
        assert result.total_queries > 0
        assert result.summary.queries_answered > 0
        assert result.summary.transmissions > 0
        # Answered queries never exceed issued ones.
        assert result.summary.queries_answered <= result.summary.queries_issued

    def test_deterministic_given_seed(self):
        a = run_simulation(tiny_config(seed=5), "rpcc-sc")
        b = run_simulation(tiny_config(seed=5), "rpcc-sc")
        assert a.summary.transmissions == b.summary.transmissions
        assert a.summary.mean_latency == b.summary.mean_latency
        assert a.total_queries == b.total_queries

    def test_seed_changes_outcome(self):
        a = run_simulation(tiny_config(seed=5), "pull")
        b = run_simulation(tiny_config(seed=6), "pull")
        assert a.summary.transmissions != b.summary.transmissions

    def test_relay_samples_only_for_rpcc(self):
        assert run_simulation(tiny_config(), "push").relay_samples == []
        rpcc = run_simulation(tiny_config(sim_time=400.0), "rpcc-sc")
        assert rpcc.relay_samples  # sampled every 60 s

    def test_warmup_excluded_from_metrics(self):
        with_warmup = run_simulation(tiny_config(warmup=200.0), "pull")
        without = run_simulation(tiny_config(warmup=0.0, sim_time=500.0), "pull")
        assert with_warmup.summary.queries_issued < without.summary.queries_issued

    def test_transmissions_per_minute(self):
        result = run_simulation(tiny_config(), "push")
        expected = result.summary.transmissions / (result.config.sim_time / 60.0)
        assert result.transmissions_per_minute == pytest.approx(expected)

    def test_weak_rpcc_never_violates(self):
        result = run_simulation(tiny_config(), "rpcc-wc")
        assert result.summary.violation_ratio == 0.0


class TestSweeps:
    def test_run_axis_sweep_shape(self):
        results = run_axis_sweep(
            tiny_config(sim_time=200.0), "cache_num", (2, 4), ("push", "pull")
        )
        assert set(results) == {
            ("push", 2), ("push", 4), ("pull", 2), ("pull", 4),
        }

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            run_axis_sweep(tiny_config(), "seed", (1, 2), ("push",))

    def test_extract_series(self):
        results = run_axis_sweep(
            tiny_config(sim_time=200.0), "cache_num", (2, 4), ("push",)
        )
        series = extract_series(
            results, ("push",), (2, 4), lambda r: float(r.summary.transmissions)
        )
        assert len(series["push"]) == 2


class TestFigureData:
    def make_figure(self):
        return FigureData(
            figure_id="Fig X",
            title="test",
            x_label="x",
            y_label="y",
            x_values=[1.0, 2.0],
            series={"push": [10.0, 20.0], "pull": [30.0, 40.0]},
        )

    def test_value_lookup(self):
        figure = self.make_figure()
        assert figure.value("pull", 2.0) == 40.0

    def test_value_lookup_tolerates_float_noise(self):
        # An axis value that went through arithmetic (0.5 * 4, unit
        # conversions, ...) need not compare equal; the lookup is
        # isclose-based.
        figure = self.make_figure()
        assert figure.value("pull", 2.0 + 1e-13) == 40.0
        assert figure.value("push", 0.1 + 0.2 + 0.7) == 10.0

    def test_value_miss_raises_configuration_error(self):
        figure = self.make_figure()
        with pytest.raises(ConfigurationError, match="no x value near"):
            figure.value("pull", 3.0)

    def test_format_contains_rows(self):
        text = self.make_figure().format()
        assert "Fig X" in text
        assert "push" in text and "pull" in text
        assert len(text.splitlines()) == 5


class TestFigureCSV:
    def make_figure(self):
        return FigureData(
            figure_id="Fig X",
            title="test",
            x_label="x",
            y_label="y",
            x_values=[1.0, 2.0],
            series={"push": [10.0, 20.0], "pull": [30.0, 40.0]},
        )

    def test_to_csv_shape(self):
        csv_text = self.make_figure().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "x,push,pull"
        assert lines[1] == "1.0,10.0,30.0"
        assert lines[2] == "2.0,20.0,40.0"

    def test_save_csv_roundtrip(self, tmp_path):
        target = tmp_path / "fig.csv"
        figure = self.make_figure()
        figure.save_csv(str(target))
        assert target.read_text() == figure.to_csv()
