"""Property tests for the incremental topology pipeline.

Every test drives a :class:`TopologyService` through randomized sequences
of movement, churn and quiet quanta, and asserts that each snapshot it
hands out is *indistinguishable* from a from-scratch build: same node set
in the same registration order, same adjacency lists in the same neighbour
order, same BFS levels and discovery order, same components.  Retention of
memoised BFS trees is verified against per-component edge fingerprints
(``service.verify_retention``), so copy-on-write aliasing bugs fail loudly
instead of producing subtly stale routes.
"""

from __future__ import annotations

import random

import pytest

from repro.mobility.terrain import Point, Terrain
from repro.mobility.waypoint import RandomWaypoint
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import TopologySnapshot, TopologyService
from repro.sim.engine import Simulator

RANGE = 150.0


def assert_snapshots_equivalent(candidate, reference):
    """Bit-level equivalence of everything routing and flooding observe."""
    assert list(candidate.positions) == list(reference.positions)
    assert candidate.positions == reference.positions
    for node in reference.positions:
        assert candidate.neighbors(node) == reference.neighbors(node), node
    assert candidate._neighbor_sets == reference._neighbor_sets
    assert candidate.edge_count() == reference.edge_count()
    for source in reference.positions:
        candidate_levels = candidate.bfs_levels(source)
        reference_levels = reference.bfs_levels(source)
        assert candidate_levels == reference_levels
        assert list(candidate_levels) == list(reference_levels)
    assert candidate.connected_components() == reference.connected_components()


class TestRandomizedEquivalence:
    """Service-level sequences over a mutable node-state table."""

    N = 30
    SIZE = 600.0

    def drive(self, seed, steps=45):
        rng = random.Random(seed)
        clock = {"t": 0.0}
        # node id -> [position, online]; same Point object is yielded until
        # the node moves, matching the network position ledger's behaviour.
        states = {
            i: [Point(rng.uniform(0, self.SIZE), rng.uniform(0, self.SIZE)), True]
            for i in range(self.N)
        }
        service = TopologyService(
            clock=lambda: clock["t"],
            node_states=lambda: [
                (i, pos, online) for i, (pos, online) in states.items()
            ],
            radio_range=RANGE,
            quantum=1.0,
        )
        service.verify_retention = True
        service.current()
        for _ in range(steps):
            if rng.random() < 0.25:
                advanced = False  # stay inside the bucket: churn only
                movers = []
            else:
                advanced = True
                clock["t"] += rng.choice([1.0, 1.0, 2.5, 7.0])
                count = rng.choice([0, 0, 1, 2, 4, self.N // 3, self.N])
                movers = rng.sample(range(self.N), count)
            for i in movers:
                states[i][0] = Point(
                    rng.uniform(0, self.SIZE), rng.uniform(0, self.SIZE)
                )
            churned = False
            if rng.random() < 0.4:
                i = rng.randrange(self.N)
                states[i][1] = not states[i][1]
                service.note_churn(i)
                churned = True
            if not churned and not advanced:
                continue  # nothing would trigger a refresh this step
            snapshot = service.current()
            reference = TopologySnapshot(
                {i: pos for i, (pos, online) in states.items() if online}, RANGE
            )
            assert_snapshots_equivalent(snapshot, reference)
            # Warm the BFS cache so later deltas exercise tree retention.
            online_ids = [i for i, (_, online) in states.items() if online]
            for source in rng.sample(online_ids, min(6, len(online_ids))):
                snapshot.bfs_levels(source)
        return service

    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_matches_fresh(self, seed):
        self.drive(seed)

    def test_all_fast_paths_are_exercised(self):
        built = reused = patched = retained = 0
        for seed in range(6):
            service = self.drive(seed)
            built += service.snapshots_built
            reused += service.snapshots_reused
            patched += service.incremental_updates
            retained += service.bfs_trees_retained
        assert built > 6  # at least the initial builds plus large deltas
        assert reused > 0
        assert patched > 0
        assert retained > 0


class TestDeltaEdgeCases:
    def make_positions(self, coords):
        return {i: Point(x, y) for i, (x, y) in enumerate(coords)}

    def test_from_delta_never_mutates_prev(self):
        prev = TopologySnapshot(
            self.make_positions([(0, 0), (100, 0), (200, 0), (600, 600)]), RANGE
        )
        prev.bfs_levels(0)
        before_adj = {n: list(prev.neighbors(n)) for n in prev.positions}
        before_grid = {k: list(v) for k, v in prev._grid.items()}
        positions = dict(prev.positions)
        positions[1] = Point(100, 50)
        TopologySnapshot.from_delta(prev, positions, [1], verify_retention=True)
        assert {n: list(prev.neighbors(n)) for n in prev.positions} == before_adj
        assert {k: list(v) for k, v in prev._grid.items()} == before_grid

    def test_far_component_bfs_tree_is_retained(self):
        prev = TopologySnapshot(
            self.make_positions([(0, 0), (100, 0), (600, 600), (700, 600)]), RANGE
        )
        prev.bfs_levels(2)  # warm the far component's tree
        positions = dict(prev.positions)
        positions[1] = Point(50, 50)
        snap = TopologySnapshot.from_delta(prev, positions, [1], verify_retention=True)
        assert snap.bfs_cache_size == 1
        assert snap.bfs_levels(2) == {2: 0, 3: 1}

    def test_touched_component_bfs_tree_is_dropped(self):
        prev = TopologySnapshot(
            self.make_positions([(0, 0), (100, 0), (600, 600), (700, 600)]), RANGE
        )
        prev.bfs_levels(0)
        positions = dict(prev.positions)
        positions[1] = Point(50, 50)
        snap = TopologySnapshot.from_delta(prev, positions, [1], verify_retention=True)
        assert snap.bfs_cache_size == 0

    def test_node_appears_and_departs(self):
        prev = TopologySnapshot(self.make_positions([(0, 0), (100, 0)]), RANGE)
        # Node 2 appears next to 1; node 0 departs.
        positions = {1: prev.positions[1], 2: Point(150, 0)}
        snap = TopologySnapshot.from_delta(prev, positions, [0, 2])
        reference = TopologySnapshot(positions, RANGE)
        assert_snapshots_equivalent(snap, reference)

    def test_simultaneous_movers_share_an_edge(self):
        # Both endpoints of a fresh edge are in the delta: the edge must be
        # discovered exactly once, whichever attaches second.
        prev = TopologySnapshot(
            self.make_positions([(0, 0), (500, 0), (1000, 0)]), RANGE
        )
        positions = dict(prev.positions)
        positions[1] = Point(60, 0)
        positions[2] = Point(120, 0)
        snap = TopologySnapshot.from_delta(prev, positions, [1, 2])
        reference = TopologySnapshot(positions, RANGE)
        assert_snapshots_equivalent(snap, reference)


class _RoamingNode(NetworkNode):
    """Network stand-in whose position comes from a real mobility model."""

    def __init__(self, node_id, sim, model):
        self._id = node_id
        self._sim = sim
        self._model = model
        self._online = True

    @property
    def node_id(self):
        return self._id

    @property
    def online(self):
        return self._online

    def set_online(self, flag):
        if flag != self._online:
            self._online = flag
            self.notify_state_change()

    def current_position(self):
        return self._model.position(self._sim.now)

    def position_valid_until(self):
        return self._model.position_valid_until(self._sim.now)

    def deliver(self, message):
        return None


class TestThroughNetwork:
    """End-to-end: ledger + churn notices + incremental service."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_network_snapshots_match_fresh_builds(self, seed):
        rng = random.Random(seed)
        terrain = Terrain(900.0, 900.0)
        sim = Simulator()
        net = Network(sim, radio_range=RANGE)
        nodes = [
            _RoamingNode(
                i,
                sim,
                # Pause-heavy: legs take ~30 s, pauses 120 s, so once the
                # initial all-moving transient passes most ticks see only
                # a handful of movers — the incremental path's sweet spot.
                RandomWaypoint(
                    terrain,
                    random.Random(seed * 1000 + i),
                    speed_min=10.0,
                    speed_max=20.0,
                    pause_time=120.0,
                ),
            )
            for i in range(20)
        ]
        for node in nodes:
            net.register(node)
        net.topology.verify_retention = True
        for tick in range(1, 240):
            sim.run_until(float(tick))
            if rng.random() < 0.1:
                nodes[rng.randrange(len(nodes))].set_online(False)
            if rng.random() < 0.1:
                nodes[rng.randrange(len(nodes))].set_online(True)
            snapshot = net.snapshot()
            if snapshot.positions:  # warm one tree to exercise retention
                snapshot.bfs_levels(next(iter(snapshot.positions)))
            reference = TopologySnapshot(
                {
                    node.node_id: node.current_position()
                    for node in nodes
                    if node.online
                },
                RANGE,
            )
            assert_snapshots_equivalent(snapshot, reference)
        stats = net.topology.stats()
        assert stats["incremental_updates"] > 0
        assert stats["snapshots_reused"] > 0
