"""Regression gate over the committed adaptive-vs-static campaign artifact.

``benchmarks/CONTROL_campaign.json`` is the committed record of the
80-run controller comparison (4 fault plans x 5 strategy specs x
2 seeds x {static, hysteresis}).  This module asserts the
graceful-degradation guarantees *from that artifact* — so a regression
in the numbers cannot land without visibly regenerating the file — and
re-runs one live cell bit-exactly so the artifact cannot drift away
from the code it claims to describe.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m benchmarks.control_campaign --write
"""

from __future__ import annotations

import json

import pytest

from benchmarks.control_campaign import (
    ARTIFACT,
    PLANS,
    POLICIES,
    SEEDS,
    SPECS,
    dominance_failures,
    run_cell,
)


@pytest.fixture(scope="module")
def campaign():
    assert ARTIFACT.exists(), (
        f"missing {ARTIFACT.name}; regenerate with "
        "PYTHONPATH=src python -m benchmarks.control_campaign --write"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_full_matrix_present(self, campaign):
        assert campaign["matrix"] == {
            "plans": list(PLANS),
            "specs": list(SPECS),
            "seeds": list(SEEDS),
            "policies": list(POLICIES),
        }
        cells = campaign["cells"]
        assert len(cells) == len(PLANS) * len(SPECS) * len(SEEDS) * len(POLICIES)
        keys = {
            (c["plan"], c["spec"], c["seed"], c["policy"]) for c in cells
        }
        assert len(keys) == len(cells)  # no duplicated cells

    def test_aggregates_cover_both_policies(self, campaign):
        for policy in POLICIES:
            agg = campaign["aggregates"][policy]
            assert agg["cells"] == len(PLANS) * len(SPECS) * len(SEEDS)


class TestGracefulDegradationGuarantees:
    def test_every_cell_is_violation_free(self, campaign):
        dirty = [
            (c["plan"], c["spec"], c["seed"], c["policy"])
            for c in campaign["cells"]
            if c["violations"]
        ]
        assert dirty == []

    def test_adaptive_dominates_or_matches_static(self, campaign):
        assert dominance_failures(campaign["aggregates"]) == []

    def test_static_arm_never_actuates(self, campaign):
        assert campaign["aggregates"]["static"]["decisions"] == 0

    def test_adaptive_arm_actuates_in_every_plan(self, campaign):
        # The comparison is only meaningful if the controller actually
        # reacts to each fault family, not just the partition plan.
        for plan in PLANS:
            decisions = sum(
                c["decisions"]
                for c in campaign["cells"]
                if c["plan"] == plan and c["policy"] == "hysteresis"
            )
            assert decisions > 0, f"no actuation under plan {plan!r}"


class TestArtifactMatchesCode:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_recorded_cell_reproduces_bit_exactly(self, campaign, policy):
        """One live rerun per policy must equal the committed record."""
        want = next(
            c
            for c in campaign["cells"]
            if (c["plan"], c["spec"], c["seed"], c["policy"])
            == ("partition", "rpcc-sc", 7, policy)
        )
        assert run_cell("partition", "rpcc-sc", 7, policy) == want
