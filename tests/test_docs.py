"""Documentation integrity: the docs must not rot away from the code.

Checks that every module path, bench target and CLI command the Markdown
documents reference actually exists, so a refactor that breaks the docs
breaks the build.
"""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_exists_and_mentions_paper_check(self):
        text = read("DESIGN.md")
        assert "Consistency of Cooperative Caching" in text
        assert "RPCC" in text

    def test_every_bench_target_exists(self):
        text = read("DESIGN.md")
        for path, test_name in re.findall(
            r"`(benchmarks/[\w/]+\.py)(?:::(\w+))?`", text
        ):
            bench_file = ROOT / path
            assert bench_file.exists(), f"DESIGN.md references missing {path}"
            if test_name:
                assert test_name in bench_file.read_text(), (
                    f"{path} lacks {test_name} referenced by DESIGN.md"
                )

    def test_every_package_in_inventory_importable(self):
        text = read("DESIGN.md")
        for module in set(re.findall(r"`(repro\.\w+)`", text)):
            __import__(module)


class TestReadme:
    def test_example_scripts_exist(self):
        text = read("README.md")
        for script in re.findall(r"python (examples/\w+\.py)", text):
            assert (ROOT / script).exists(), f"README references missing {script}"

    def test_architecture_modules_importable(self):
        text = read("README.md")
        for module in set(re.findall(r"^(repro\.\w+)", text, re.MULTILINE)):
            __import__(module)

    def test_cli_commands_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = read("README.md")
        for line in re.findall(r"python -m repro ([^\n`]+)", text):
            argv = line.split("#", 1)[0].strip().split()
            parser.parse_args(argv)


class TestExperimentsDoc:
    def test_covers_every_figure(self):
        text = read("EXPERIMENTS.md")
        for figure in ("Table 1", "Fig 7(a)", "Fig 7(b)", "Fig 7(c)",
                       "Fig 8", "Fig 9(a)", "Fig 9(b)"):
            assert figure in text, f"EXPERIMENTS.md misses {figure}"

    def test_quotes_paper_claims(self):
        text = read("EXPERIMENTS.md")
        assert text.count("> Paper:") >= 5

    def test_referenced_modules_exist(self):
        text = read("EXPERIMENTS.md")
        for module in set(re.findall(r"`(repro\.[\w.]+)`", text)):
            parts = module.split(".")
            # Either importable as a module or an attribute of its parent.
            try:
                __import__(module)
            except ImportError:
                parent = __import__(".".join(parts[:-1]),
                                    fromlist=[parts[-1]])
                assert hasattr(parent, parts[-1]), (
                    f"EXPERIMENTS.md references missing {module}"
                )


class TestProtocolDoc:
    def test_message_names_match_code(self):
        text = read("docs/PROTOCOL.md")
        from repro.consistency import messages

        for name in ("Invalidation", "Update", "GetNew", "SendNew",
                     "Apply", "ApplyAck", "Cancel", "Poll", "PollAckA",
                     "PollAckB", "PollHold"):
            assert hasattr(messages, name)

    def test_file_references_exist(self):
        text = read("docs/PROTOCOL.md")
        for path in set(re.findall(r"`((?:consistency|peers|rpcc)/[\w/]+\.py)`", text)):
            candidates = [
                ROOT / "src" / "repro" / path,
                ROOT / "src" / "repro" / "consistency" / path,
            ]
            assert any(c.exists() for c in candidates), (
                f"PROTOCOL.md references missing {path}"
            )


class TestRobustnessDoc:
    def test_exists_and_is_cross_linked(self):
        text = read("docs/ROBUSTNESS.md")
        assert "fault" in text.lower()
        assert "ROBUSTNESS.md" in read("README.md")
        assert "ROBUSTNESS.md" in read("DESIGN.md")
        assert "ROBUSTNESS.md" in read("docs/OBSERVABILITY.md")

    def test_example_plans_exist_and_load(self):
        from repro.faults import FaultPlan

        text = read("docs/ROBUSTNESS.md")
        plans = set(re.findall(r"examples/faults/(\w+\.json)", text))
        assert plans, "ROBUSTNESS.md references no example plans"
        for name in plans:
            FaultPlan.load(ROOT / "examples" / "faults" / name)

    def test_cli_examples_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = read("docs/ROBUSTNESS.md")
        lines = re.findall(r"python -m repro ([^\n]+?)(?:\s*\\\n\s*([^\n`]+))?$",
                           text, re.MULTILINE)
        assert lines
        for first, continuation in lines:
            argv = f"{first} {continuation}".split("#", 1)[0].split()
            parser.parse_args(argv)

    def test_documented_fault_kinds_match_code(self):
        from repro.faults.plan import FAULT_KINDS

        text = read("docs/ROBUSTNESS.md")
        for kind in FAULT_KINDS:
            assert f"`{kind}`" in text, f"ROBUSTNESS.md misses kind {kind}"

    def test_documented_fault_stats_match_code(self):
        text = read("docs/ROBUSTNESS.md")
        for key in ("availability", "partition_seconds", "reads_in_partition",
                    "stale_serve_rate_in_partition", "mean_time_to_reconverge",
                    "heals_observed"):
            assert f"`{key}`" in text, f"ROBUSTNESS.md misses stat {key}"

    def test_every_registered_control_policy_documented(self):
        from repro.scenarios.registry import CONTROLLERS

        text = read("docs/ROBUSTNESS.md")
        assert CONTROLLERS.names(), "control-policy registry is empty"
        for name in CONTROLLERS.names():
            assert f"`{name}`" in text, (
                f"ROBUSTNESS.md misses control policy {name}"
            )

    def test_adaptive_control_section_is_cross_linked(self):
        text = read("docs/ROBUSTNESS.md")
        assert "## Adaptive control" in text
        for path in ("README.md", "DESIGN.md", "docs/OBSERVABILITY.md"):
            assert "Adaptive control" in read(path), (
                f"{path} lacks the adaptive-control cross-link"
            )

    def test_controller_trace_events_documented(self):
        text = read("docs/OBSERVABILITY.md")
        for tag in ("controller_sampled", "controller_actuated"):
            assert f"`{tag}`" in text, f"OBSERVABILITY.md misses {tag}"

    def test_campaign_artifact_paths_exist(self):
        text = read("docs/ROBUSTNESS.md")
        for path in re.findall(r"`(benchmarks/[\w.]+\.(?:py|json))`", text):
            assert (ROOT / path).exists(), (
                f"ROBUSTNESS.md references missing {path}"
            )


class TestScenariosDoc:
    def test_exists_and_is_cross_linked(self):
        text = read("docs/SCENARIOS.md")
        assert "registry" in text.lower()
        assert "SCENARIOS.md" in read("README.md")
        assert "SCENARIOS.md" in read("EXPERIMENTS.md")
        assert "SCENARIOS.md" in read("DESIGN.md")

    def test_every_registered_scenario_documented(self):
        from repro.scenarios.registry import SCENARIOS

        text = read("docs/SCENARIOS.md")
        for name in SCENARIOS.names():
            assert f"`{name}`" in text, f"SCENARIOS.md misses scenario {name}"

    def test_every_registered_policy_documented(self):
        from repro.scenarios.registry import POLICIES

        text = read("docs/SCENARIOS.md")
        for name in POLICIES.names():
            assert f"`{name}`" in text, f"SCENARIOS.md misses policy {name}"

    def test_cli_examples_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = read("docs/SCENARIOS.md")
        lines = re.findall(r"python -m repro ([^\n`]+)", text)
        assert lines
        for line in lines:
            argv = line.split("#", 1)[0].strip().split()
            parser.parse_args(argv)

    def test_referenced_matrix_files_load(self):
        from repro.scenarios.matrix import load_matrix

        text = read("docs/SCENARIOS.md")
        paths = set(re.findall(r"(examples/matrix/[\w.]+\.toml)", text))
        assert paths, "SCENARIOS.md references no matrix files"
        for path in paths:
            load_matrix(ROOT / path)

    def test_placement_scenarios_match_code(self):
        from repro.experiments.runner import PLACEMENT_SCENARIOS

        text = read("docs/SCENARIOS.md")
        for scenario in PLACEMENT_SCENARIOS:
            assert scenario in text, f"SCENARIOS.md misses placement {scenario}"
