"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.0).now == 42.0

    def test_non_finite_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(start_time=float("nan"))

    def test_schedule_returns_pending_handle(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        assert not handle.fired

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)

    def test_infinite_time_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_at(float("inf"), lambda: None)

    def test_non_callable_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(1.0, "not callable")

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]


class TestExecution:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_callback_args_passed(self, sim):
        result = []
        sim.schedule(1.0, lambda a, b: result.append(a + b), 2, 3)
        sim.run()
        assert result == [5]

    def test_run_until_stops_at_horizon(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run_until(5.0)
        assert fired == ["early"]
        assert sim.now == 5.0

    def test_run_until_sets_clock_even_without_events(self, sim):
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_run_until_backwards_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_until_inclusive_of_boundary(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run_until(5.0)
        assert fired == [1]

    def test_events_scheduled_during_run_fire(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]

    def test_run_returns_event_count(self, sim):
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        assert sim.run() == 4

    def test_max_events_limits_run(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending_events == 7

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]

    def test_step_on_empty_heap_returns_false(self, sim):
        assert not sim.step()

    def test_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        assert handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_cancel_after_fire_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not handle.cancel()

    def test_cancelled_events_not_counted(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        assert sim.run() == 1
        assert keep.fired

    def test_cancel_during_run(self, sim):
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []


class TestPendingCounter:
    """pending_events is a live O(1) counter, not a heap scan."""

    def test_tracks_schedule_cancel_fire(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        handles[0].cancel()
        handles[1].cancel()
        assert sim.pending_events == 3
        sim.step()
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_double_cancel_decrements_once(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_fire_does_not_decrement(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        handle.cancel()
        assert sim.pending_events == 1

    def test_cancel_during_run_stays_consistent(self, sim):
        later = sim.schedule(2.0, lambda: None)
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert sim.pending_events == 0

    def test_reschedule_chain_stays_consistent(self, sim):
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        assert sim.pending_events == 0
        assert count[0] == 100


class TestHeapCompaction:
    """Cancelled entries are swept once they outnumber live events."""

    def test_wheel_stays_bounded_under_cancel_churn(self):
        # A rearmed-timer workload: every iteration schedules a far-future
        # event and immediately cancels the previous one.  Without the
        # periodic bucket sweep the wheel would hold ~10_000 dead entries.
        sim = Simulator(wheel=True)
        pending = None
        for i in range(10_000):
            fresh = sim.schedule(1_000.0 + i, lambda: None)
            if pending is not None:
                pending.cancel()
            pending = fresh
        assert sim.pending_events == 1
        assert sim.heap_size <= 2 * Simulator._SWEEP_FLOOR
        assert sim.wheel_sweeps > 0
        # Wheel-managed cancels never touch the far-heap machinery.
        assert sim.tombstones == 0
        assert sim.heap_compactions == 0

    def test_heap_stays_bounded_under_cancel_churn(self):
        # The same workload on the pure-heap engine exercises the
        # tombstone compaction path instead.
        sim = Simulator(wheel=False)
        pending = None
        for i in range(10_000):
            fresh = sim.schedule(1_000.0 + i, lambda: None)
            if pending is not None:
                pending.cancel()
            pending = fresh
        assert sim.pending_events == 1
        assert sim.heap_size <= 2 * Simulator._COMPACT_FLOOR
        assert sim.heap_compactions > 0

    def test_compaction_preserves_fire_order(self):
        # Same live schedule on both engines; the heap one also schedules
        # and cancels enough extras to trigger compaction mid-build.  The
        # identical fire order doubles as a wheel-vs-heap equivalence check.
        plain, compacted = Simulator(wheel=True), Simulator(wheel=False)
        order_plain, order_compacted = [], []
        for i in range(200):
            when = float((i * 37) % 100) + 1.0  # interleaved, with time ties
            plain.schedule(when, order_plain.append, i)
            compacted.schedule(when, order_compacted.append, i)
            compacted.schedule(500.0 + i, order_compacted.append, -i).cancel()
            compacted.schedule(700.0 + i, order_compacted.append, -i).cancel()
        assert compacted.heap_compactions > 0
        assert plain.run() == compacted.run() == 200
        assert order_compacted == order_plain

    def test_small_stores_never_compact(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None).cancel()
        assert sim.heap_compactions == 0
        assert sim.wheel_sweeps == 0
        assert sim.heap_size == 10


class TestWheelEngine:
    """Wheel-specific behavior: far fallback, in-place renew, pooling."""

    def test_far_future_events_cross_the_wheel_horizon(self, sim):
        # 20_000 s and 40_000 s are beyond the 16384 s wheel horizon, so
        # they file into the far heap and must still fire in order.
        order = []
        sim.schedule(40_000.0, order.append, "far2")
        sim.schedule(20_000.0, order.append, "far1")
        sim.schedule(1.0, order.append, "near")
        sim.schedule(100.0, order.append, "wheel1")
        sim.run()
        assert order == ["near", "wheel1", "far1", "far2"]
        assert sim.pending_events == 0

    def test_reschedule_moves_a_pending_event(self, sim):
        fired = []
        handle = sim.schedule(5.0, fired.append, "x")
        moved = sim.reschedule(handle, 2.0)
        assert sim.pending_events == 1
        sim.run_until(2.0)
        assert fired == ["x"]
        assert not moved.pending
        sim.run()
        assert fired == ["x"]  # fires exactly once

    def test_reschedule_consumes_one_seq_like_cancel_plus_schedule(self):
        # Interleave a renewal with ordinary schedules at a tied time on
        # both engines: the relative order must match exactly.
        logs = []
        for wheel in (True, False):
            sim = Simulator(wheel=wheel)
            order = []
            handle = sim.schedule(1.0, order.append, "renewed")
            sim.schedule(3.0, order.append, "a")
            sim.reschedule(handle, 3.0)  # tied with "a", later seq
            sim.schedule(3.0, order.append, "b")
            sim.run()
            logs.append(order)
        assert logs[0] == logs[1] == ["a", "renewed", "b"]

    def test_post_fires_and_recycles_handles(self, sim):
        fired = []
        sim.post(1.0, fired.append, "a")
        sim.post(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]
        assert sim.pending_events == 0
        # The handles went back to the freelist and are reused.
        assert len(sim._pool) == 2
        sim.post(1.0, fired.append, "c")
        assert len(sim._pool) == 1
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_wheel_timers_leave_no_tombstones(self):
        # Renew-heavy countdown usage keeps the far-heap counters at zero:
        # the wheel absorbs every cancel/renew without tombstoning.
        sim = Simulator(wheel=True)
        handle = sim.schedule(10.0, lambda: None)
        for _ in range(100):
            handle = sim.reschedule(handle, 10.0)
        assert sim.tombstones == 0
        assert sim.heap_compactions == 0
        assert sim.pending_events == 1
