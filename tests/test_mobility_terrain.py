"""Unit tests for terrain geometry."""

import pytest

from repro.errors import ConfigurationError
from repro.mobility.terrain import Point, Terrain


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        a, b = Point(1, 2), Point(5, -1)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_zero(self):
        p = Point(7, 7)
        assert p.distance_to(p) == 0.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(4, 6)) == Point(2, 3)

    def test_interpolate_endpoints(self):
        a, b = Point(0, 0), Point(10, 20)
        assert a.interpolate(b, 0.0) == a
        assert a.interpolate(b, 1.0) == b

    def test_interpolate_middle(self):
        assert Point(0, 0).interpolate(Point(10, 0), 0.25) == Point(2.5, 0)


class TestTerrain:
    def test_dimensions_validated(self):
        with pytest.raises(ConfigurationError):
            Terrain(0, 100)
        with pytest.raises(ConfigurationError):
            Terrain(100, -1)

    def test_area_and_diagonal(self):
        terrain = Terrain(300, 400)
        assert terrain.area == 120000
        assert terrain.diagonal == pytest.approx(500.0)

    def test_center(self):
        assert Terrain(100, 200).center == Point(50, 100)

    def test_contains_interior_and_border(self, terrain):
        assert terrain.contains(Point(100, 100))
        assert terrain.contains(Point(0, 0))
        assert terrain.contains(Point(1500, 1500))
        assert not terrain.contains(Point(1500.01, 0))
        assert not terrain.contains(Point(-0.01, 10))

    def test_clamp(self, terrain):
        assert terrain.clamp(Point(-5, 2000)) == Point(0, 1500)
        inside = Point(700, 800)
        assert terrain.clamp(inside) == inside

    def test_random_point_inside(self, terrain, rng):
        for _ in range(200):
            assert terrain.contains(terrain.random_point(rng))

    def test_random_point_spread(self, terrain, rng):
        points = [terrain.random_point(rng) for _ in range(100)]
        xs = [p.x for p in points]
        assert max(xs) - min(xs) > 500  # not clustered

    def test_grid_points_count(self, terrain):
        assert len(list(terrain.grid_points(3, 4))) == 12

    def test_grid_points_are_cell_centers(self):
        points = list(Terrain(100, 100).grid_points(2, 2))
        assert points == [
            Point(25, 25), Point(75, 25), Point(25, 75), Point(75, 75),
        ]

    def test_grid_validates(self, terrain):
        with pytest.raises(ConfigurationError):
            list(terrain.grid_points(0, 5))
