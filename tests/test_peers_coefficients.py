"""Unit tests for the relay-selection coefficients (eqs 4.2.1-4.2.8)."""

import pytest

from repro.errors import ConfigurationError
from repro.peers.coefficients import CoefficientTracker, SelectionThresholds


class TestSelectionThresholds:
    def test_table1_defaults(self):
        thresholds = SelectionThresholds()
        assert thresholds.mu_car == 0.15
        assert thresholds.mu_cs == 0.6
        assert thresholds.mu_ce == 0.6

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            SelectionThresholds(mu_car=0.0)
        with pytest.raises(ConfigurationError):
            SelectionThresholds(mu_cs=1.5)


class TestCoefficientTracker:
    def test_initial_coefficients(self):
        tracker = CoefficientTracker()
        assert tracker.car == 1.0  # PAR = 0
        assert tracker.cs == 1.0
        assert tracker.ce == 1.0

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            CoefficientTracker(phi=0.0)
        with pytest.raises(ConfigurationError):
            CoefficientTracker(omega=1.0)
        with pytest.raises(ConfigurationError):
            CoefficientTracker(rate_unit=0.0)

    def test_par_three_window_smoothing(self):
        # omega=0.2: PAR_t = PAR_{t-2}*0.05 + PAR_{t-1}*0.1 + rate*0.85
        tracker = CoefficientTracker(phi=100.0, omega=0.2)
        tracker.record_access(10)
        tracker.close_period()
        assert tracker.par == pytest.approx(10 * 0.85)
        tracker.record_access(10)
        tracker.close_period()
        assert tracker.par == pytest.approx(8.5 * 0.1 + 10 * 0.85)
        tracker.record_access(10)
        tracker.close_period()
        assert tracker.par == pytest.approx(8.5 * 0.05 + 9.35 * 0.1 + 8.5)

    def test_psr_ewma(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.2)
        tracker.record_switch()
        tracker.record_switch()
        tracker.close_period()
        assert tracker.psr == pytest.approx(2 * 0.8)
        tracker.close_period()  # quiet period decays PSR
        assert tracker.psr == pytest.approx(2 * 0.8 * 0.2)

    def test_pmr_ewma(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.2)
        tracker.record_moves(5)
        tracker.close_period()
        assert tracker.pmr == pytest.approx(5 * 0.8)

    def test_rate_unit_scaling(self):
        # Per-minute rates with a 120 s period: 6 events -> 3 per unit.
        tracker = CoefficientTracker(phi=120.0, omega=0.0, rate_unit=60.0)
        tracker.record_switch()
        for _ in range(5):
            tracker.record_switch()
        tracker.close_period()
        assert tracker.psr == pytest.approx(3.0)

    def test_car_formula(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_access(9)
        tracker.close_period()
        assert tracker.car == pytest.approx(1.0 / (1.0 + 9.0))

    def test_cs_formula(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_switch()
        tracker.record_moves(2)
        tracker.close_period()
        assert tracker.cs == pytest.approx(1.0 / (1.0 + 1.0 + 2.0))

    def test_energy_fraction_validated(self):
        tracker = CoefficientTracker()
        with pytest.raises(ConfigurationError):
            tracker.set_energy_fraction(1.5)

    def test_counters_reset_each_period(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_access(10)
        tracker.close_period()
        tracker.close_period()
        assert tracker.par == 0.0  # no accesses in the second period

    def test_eligibility_stable_busy_energetic(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_access(20)  # CAR = 1/21 < 0.15
        tracker.set_energy_fraction(0.9)
        tracker.close_period()
        assert tracker.eligible(SelectionThresholds())

    def test_idle_node_not_eligible(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_access(2)  # CAR = 1/3 > 0.15
        tracker.close_period()
        assert not tracker.eligible(SelectionThresholds())

    def test_unstable_node_not_eligible(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_access(20)
        tracker.record_switch()
        tracker.close_period()
        # CS = 1/(1+0.8... omega=0 -> 1/(1+1) = 0.5 < 0.6
        assert not tracker.eligible(SelectionThresholds())

    def test_depleted_node_not_eligible(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.0)
        tracker.record_access(20)
        tracker.set_energy_fraction(0.5)
        tracker.close_period()
        assert not tracker.eligible(SelectionThresholds())

    def test_periods_closed_counter(self):
        tracker = CoefficientTracker()
        tracker.close_period()
        tracker.close_period()
        assert tracker.periods_closed == 2

    def test_mobile_node_loses_eligibility_over_time(self):
        tracker = CoefficientTracker(phi=100.0, omega=0.2)
        tracker.record_access(20)
        tracker.close_period()
        assert tracker.eligible(SelectionThresholds())
        tracker.record_access(20)
        tracker.record_moves(3)
        tracker.close_period()
        assert not tracker.eligible(SelectionThresholds())
