"""CLI coverage of the trace surface: export, reload, check, and the
guarantee that untraced runs produce zero trace output."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.obs import InvariantChecker, NULL_TRACE
from repro.obs.events import read_jsonl

BASE = ["--sim-time", "120", "--warmup", "30", "--seed", "3"]


@pytest.fixture(autouse=True)
def _isolate_cache(tmp_path, monkeypatch):
    """Keep CLI result caches out of the repo during tests."""
    monkeypatch.chdir(tmp_path)


def test_trace_command_round_trip(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main(BASE + ["trace", "rpcc-sc", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "invariants: OK" in captured
    assert f"-> {out}" in captured

    events = read_jsonl(str(out))
    assert events, "trace file is empty"
    # The file replays cleanly on its own — full export -> import path.
    report = InvariantChecker(delta=240.0).feed_all(events).finish()
    assert report.ok
    assert report.reads_checked > 0


def test_trace_command_no_check_skips_the_replay(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main(BASE + ["trace", "pull", "--out", str(out), "--no-check"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "invariants" not in captured
    assert read_jsonl(str(out))


def test_run_with_trace_flag_writes_events(tmp_path, capsys):
    out = tmp_path / "run-trace.jsonl"
    code = main(BASE + ["--no-cache", "run", "push", "--trace", str(out)])
    assert code == 0
    assert "trace:" in capsys.readouterr().out
    assert read_jsonl(str(out))


def test_run_without_trace_leaves_no_trace_file(tmp_path, capsys):
    code = main(BASE + ["--no-cache", "run", "push"])
    assert code == 0
    assert "trace" not in capsys.readouterr().out
    assert not [name for name in os.listdir(tmp_path) if name.endswith(".jsonl")]


def test_untraced_build_uses_null_trace():
    config = SimulationConfig(
        n_peers=10, terrain_width=800.0, terrain_height=800.0,
        sim_time=60.0, warmup=10.0, seed=1,
    )
    simulation = build_simulation(config, "push", "standard")
    assert simulation.sim.trace is NULL_TRACE
    assert simulation.sim.trace.enabled is False


def test_parser_accepts_trace_surface():
    parser = build_parser()
    args = parser.parse_args(["trace", "rpcc-dc", "--out", "x.jsonl", "--no-check"])
    assert args.command == "trace"
    assert args.no_check is True
    args = parser.parse_args(["run", "push", "--trace", "y.jsonl"])
    assert args.trace == "y.jsonl"
    with pytest.raises(SystemExit):
        parser.parse_args(["trace", "not-a-spec"])


def test_traced_metrics_match_untraced_metrics(tmp_path):
    """Tracing observes; it must never change simulation behaviour."""
    config = SimulationConfig(
        n_peers=12, terrain_width=800.0, terrain_height=800.0,
        sim_time=120.0, warmup=30.0, seed=9,
    )
    from repro.obs import JsonlSink, TraceBus

    untraced = build_simulation(config, "rpcc-sc", "standard").run()
    bus = TraceBus()
    bus.add_sink(JsonlSink(str(tmp_path / "t.jsonl")))
    traced = build_simulation(config, "rpcc-sc", "standard", trace=bus).run()
    bus.close()
    assert traced.summary == untraced.summary
