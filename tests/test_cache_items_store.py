"""Unit tests for data items and the bounded cache store."""

import pytest

from repro.cache.item import CachedCopy, MasterCopy
from repro.cache.replacement import FIFOPolicy, LFUPolicy, LRUPolicy, make_policy
from repro.cache.store import CacheStore
from repro.errors import CacheCapacityError, CacheError, UnknownItemError


class TestMasterCopy:
    def test_version_starts_at_zero(self):
        assert MasterCopy(1, 1).version == 0

    def test_update_increments_version(self):
        master = MasterCopy(1, 1)
        assert master.update(now=5.0) == 1
        assert master.update(now=9.0) == 2
        assert master.updated_at == 9.0
        assert master.update_count == 2

    def test_content_size_validated(self):
        with pytest.raises(UnknownItemError):
            MasterCopy(1, 1, content_size=0)


class TestCachedCopy:
    def test_refresh_advances_version(self):
        copy = CachedCopy(1, 2, 100, now=0.0)
        copy.refresh(5, now=10.0)
        assert copy.version == 5
        assert copy.fetched_at == 10.0

    def test_refresh_rejects_downgrade(self):
        copy = CachedCopy(1, 5, 100, now=0.0)
        with pytest.raises(UnknownItemError):
            copy.refresh(3, now=1.0)

    def test_refresh_same_version_allowed(self):
        copy = CachedCopy(1, 5, 100, now=0.0)
        copy.refresh(5, now=1.0)
        assert copy.version == 5

    def test_touch_updates_access_stats(self):
        copy = CachedCopy(1, 0, 100, now=0.0)
        copy.touch(3.0)
        copy.touch(7.0)
        assert copy.access_count == 2
        assert copy.last_access == 7.0


def copy_of(item_id, now=0.0, version=0):
    return CachedCopy(item_id, version, 100, now)


class TestCacheStore:
    def test_capacity_validated(self):
        with pytest.raises(CacheCapacityError):
            CacheStore(0)

    def test_put_and_get(self):
        store = CacheStore(2)
        store.put(copy_of(1))
        assert store.get(1, now=1.0) is not None
        assert 1 in store
        assert len(store) == 1

    def test_get_records_hit_and_miss(self):
        store = CacheStore(2)
        store.put(copy_of(1))
        store.get(1, now=1.0)
        store.get(2, now=1.0)
        assert store.hits == 1
        assert store.misses == 1
        assert store.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert CacheStore(1).hit_ratio == 0.0

    def test_peek_does_not_touch(self):
        store = CacheStore(2)
        store.put(copy_of(1))
        store.peek(1)
        assert store.hits == 0
        assert store.peek(1).access_count == 0

    def test_eviction_at_capacity(self):
        store = CacheStore(2)
        store.put(copy_of(1, now=0.0))
        store.put(copy_of(2, now=1.0))
        store.get(1, now=2.0)  # make 2 the LRU victim
        evicted = store.put(copy_of(3, now=3.0))
        assert evicted == 2
        assert store.evictions == 1
        assert sorted(store.item_ids) == [1, 3]

    def test_reinsert_existing_replaces_without_eviction(self):
        store = CacheStore(1)
        store.put(copy_of(1, version=0))
        evicted = store.put(copy_of(1, version=3))
        assert evicted is None
        assert store.peek(1).version == 3

    def test_discard(self):
        store = CacheStore(2)
        store.put(copy_of(1))
        assert store.discard(1)
        assert not store.discard(1)
        assert 1 not in store

    def test_clear(self):
        store = CacheStore(3)
        for item in (1, 2, 3):
            store.put(copy_of(item))
        store.clear()
        assert len(store) == 0

    def test_membership_callbacks(self):
        inserted, evicted = [], []
        store = CacheStore(1, on_insert=inserted.append, on_evict=evicted.append)
        store.put(copy_of(1))
        store.put(copy_of(2))
        store.discard(2)
        assert inserted == [1, 2]
        assert evicted == [1, 2]

    def test_full_property(self):
        store = CacheStore(1)
        assert not store.full
        store.put(copy_of(1))
        assert store.full


class TestReplacementPolicies:
    def build(self, policy):
        store = CacheStore(3, policy=policy)
        store.put(copy_of(1, now=0.0))
        store.put(copy_of(2, now=1.0))
        store.put(copy_of(3, now=2.0))
        return store

    def test_lru_evicts_least_recent(self):
        store = self.build(LRUPolicy())
        store.get(1, now=10.0)
        store.get(2, now=11.0)
        assert store.put(copy_of(4, now=12.0)) == 3

    def test_lfu_evicts_least_frequent(self):
        store = self.build(LFUPolicy())
        store.get(1, now=10.0)
        store.get(1, now=11.0)
        store.get(2, now=12.0)
        assert store.put(copy_of(4, now=13.0)) == 3

    def test_fifo_evicts_oldest_insert(self):
        store = self.build(FIFOPolicy())
        store.get(1, now=10.0)  # access does not save it under FIFO
        assert store.put(copy_of(4, now=11.0)) == 1

    def test_make_policy_by_name(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("LFU"), LFUPolicy)
        assert isinstance(make_policy("fifo"), FIFOPolicy)

    def test_make_policy_unknown(self):
        with pytest.raises(CacheError):
            make_policy("random")
