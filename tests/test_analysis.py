"""Tests for the push/pull traffic-split analysis (Fig 7c's discussion)."""

import pytest

from repro.experiments.analysis import TrafficSplit, rpcc_traffic_split
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_simulation
from repro.metrics.collector import MetricsSummary


def summary_with(types):
    return MetricsSummary(
        transmissions=sum(types.values()),
        messages=0,
        bytes_on_air=0,
        queries_issued=0,
        queries_answered=0,
        queries_unanswered=0,
        mean_latency=0.0,
        mean_hit_latency=0.0,
        p95_latency=0.0,
        local_answer_ratio=0.0,
        stale_ratio=0.0,
        violation_ratio=0.0,
        mean_staleness_age=0.0,
        transmissions_by_type=types,
        counters={},
    )


class TestTrafficSplit:
    def test_classification(self):
        split = rpcc_traffic_split(summary_with({
            "Invalidation": 100,
            "Update": 20,
            "Poll": 50,
            "PollAckA": 10,
            "PollHold": 5,
            "QueryRequest": 30,
            "QueryReply": 30,
            "Mystery": 7,
        }))
        assert split.push == 120
        assert split.pull == 65
        assert split.query == 60
        assert split.other == 7
        assert split.total == 252

    def test_shares_sum_to_one(self):
        split = TrafficSplit(push=30, pull=70, query=0, other=0)
        assert split.push_share == pytest.approx(0.3)
        assert split.pull_share == pytest.approx(0.7)

    def test_empty_protocol_traffic(self):
        split = TrafficSplit(push=0, pull=0, query=5, other=0)
        assert split.push_share == 0.0
        assert split.pull_share == 0.0


class TestFig7cClaim:
    """Paper: more cache peers -> pull share falls, push share rises."""

    def run_split(self, cache_num):
        config = SimulationConfig(
            n_peers=24, sim_time=600.0, warmup=300.0, seed=4,
            cache_num=cache_num, terrain_width=1000.0, terrain_height=1000.0,
        )
        result = run_simulation(config, "rpcc-sc")
        return rpcc_traffic_split(result.summary)

    def test_push_share_grows_with_cache_size(self):
        small = self.run_split(cache_num=2)
        large = self.run_split(cache_num=12)
        assert large.push_share > small.push_share
        assert large.pull_share < small.pull_share

    def test_split_accounts_for_everything(self):
        split = self.run_split(cache_num=6)
        assert split.other == 0  # stock RPCC emits no unclassified traffic
        assert split.total > 0
