"""Focused unit tests for the RPCC source/relay sides and config flags."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.messages import Apply, Cancel, GetNew, Poll
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy

from tests.conftest import line_positions, make_eligible, make_world


def rpcc_world(count=4, **config_kwargs):
    defaults = dict(
        ttl_invalidation=3, ttn=100.0, ttr=75.0, ttp=200.0,
        poll_timeout=2.0, source_poll_timeout=2.0, grace_timeout=6.0,
    )
    defaults.update(config_kwargs)
    config = RPCCConfig(**defaults)
    return make_world(line_positions(count), lambda ctx: RPCCStrategy(ctx, config))


class TestSourceSide:
    def test_ignores_messages_for_foreign_items(self):
        world = rpcc_world()
        source = world.agent(0).source
        before = world.network.messages_sent
        source.handle_get_new(GetNew(sender=1, item_id=2))  # not ours
        source.handle_apply(Apply(sender=1, item_id=2))
        source.handle_poll(Poll(sender=1, item_id=2, version=0, poll_id=9))
        assert world.network.messages_sent == before
        assert source.relay_table == set()

    def test_cancel_from_unknown_peer_harmless(self):
        world = rpcc_world()
        world.agent(0).source.handle_cancel(Cancel(sender=9, item_id=0))

    def test_direct_poll_fresh_gets_ack_a(self):
        world = rpcc_world()
        world.give_copy(1, 0)
        world.agent(0).source.handle_poll(
            Poll(sender=1, item_id=0, version=0, poll_id=1)
        )
        world.run(1.0)
        assert world.metrics.traffic.messages("PollAckA") == 1

    def test_direct_poll_stale_gets_ack_b_with_content(self):
        world = rpcc_world()
        world.give_copy(1, 0, version=0)
        world.update_item(0)
        world.agent(0).source.handle_poll(
            Poll(sender=1, item_id=0, version=0, poll_id=2)
        )
        world.run(1.0)
        acks = world.metrics.traffic.by_type()["PollAckB"]
        assert acks.messages == 1
        assert acks.bytes > 500  # carried the 1000-byte payload

    def test_timer_stagger_distinct_per_source(self):
        world = rpcc_world()
        world.strategy.start()
        offsets = set()
        for node in range(4):
            timer = world.agent(node).source._timer
            assert timer is not None and timer.running
        # Offsets derive from node ids via the golden ratio: all distinct.
        world.run(100.0)
        counts = world.metrics.traffic.messages("Invalidation")
        assert counts == 4  # each source ticked exactly once in 100 s

    def test_stop_disarms_timer(self):
        world = rpcc_world()
        world.strategy.start()
        source = world.agent(0).source
        source.stop()
        world.run(500.0)
        # Other three sources tick 5 times each; source 0 never.
        assert world.metrics.traffic.messages("Invalidation") == 15

    def test_immediate_update_push_flag(self):
        world = rpcc_world(immediate_update_push=True)
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(110.0)  # promotion complete
        before = world.metrics.traffic.messages("Update")
        world.update_item(3)
        world.run(1.0)  # no TTN boundary needed
        assert world.metrics.traffic.messages("Update") == before + 1
        assert world.host(1).store.peek(3).version == 1

    def test_batched_update_push_waits_for_ttn(self):
        world = rpcc_world(immediate_update_push=False)
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(110.0)
        before = world.metrics.traffic.messages("Update")
        world.update_item(3)
        world.run(1.0)
        assert world.metrics.traffic.messages("Update") == before  # batched

    def test_only_one_update_per_ttn_despite_many_writes(self):
        world = rpcc_world()
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(110.0)
        before = world.metrics.traffic.messages("Update")
        for _ in range(5):
            world.update_item(3)
        world.run(110.0)
        assert world.metrics.traffic.messages("Update") == before + 1
        assert world.host(1).store.peek(3).version == 5


class TestRelaySide:
    def promote(self, world, node_id=1, item_id=3):
        world.give_copy(node_id, item_id)
        make_eligible(world.host(node_id))
        world.strategy.start()
        world.run(110.0)
        agent = world.agent(node_id)
        assert agent.roles.is_relay(item_id)
        return agent

    def test_forget_clears_all_state(self):
        world = rpcc_world()
        agent = self.promote(world)
        world.run(100.0)
        assert agent.relay.ttr_remaining(3) > 0
        agent.relay.forget(3)
        assert agent.relay.ttr_remaining(3) == 0.0
        assert agent.relay.queued_poll_count(3) == 0

    def test_duplicate_get_new_suppressed(self):
        world = rpcc_world()
        agent = self.promote(world)
        world.host(1).set_online(False)
        world.update_item(3)
        world.update_item(3)
        world.run(150.0)
        world.host(1).set_online(True)
        before = world.metrics.traffic.messages("GetNew")
        # Two invalidations arrive before SEND_NEW could be processed if
        # the relay spammed; the _awaiting guard sends exactly one.
        world.run(110.0)
        assert world.metrics.traffic.messages("GetNew") == before + 1

    def test_poll_for_unheld_item_ignored(self):
        world = rpcc_world()
        agent = self.promote(world)
        # Force-mark as relay for an item it does not cache.
        agent.roles.promote(2)
        before = world.network.messages_sent
        agent.relay.on_poll(Poll(sender=2, item_id=2, version=0, poll_id=7))
        assert world.network.messages_sent == before

    def test_queued_polls_drained_in_order(self):
        world = rpcc_world(ttn=100.0, ttr=10.0, count=6)
        world.give_copy(1, 0)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(150.0)  # mid dead-window
        agent = world.agent(1)
        assert agent.relay.ttr_remaining(0) == 0.0
        for poll_id in (101, 102, 103):
            agent.relay.on_poll(
                Poll(sender=4, item_id=0, version=0, poll_id=poll_id)
            )
        assert agent.relay.queued_poll_count(0) == 3
        world.run(100.0)  # next INVALIDATION drains
        assert agent.relay.queued_poll_count(0) == 0

    def test_old_update_does_not_downgrade(self):
        from repro.consistency.messages import Update

        world = rpcc_world()
        agent = self.promote(world)
        copy = world.host(1).store.peek(3)
        copy.refresh(5, world.sim.now)
        agent.relay.on_update(
            Update(sender=3, item_id=3, version=2, content_size=100)
        )
        assert world.host(1).store.peek(3).version == 5


class TestQueryLevelRouting:
    def test_delta_uses_config_delta_for_audit(self):
        world = rpcc_world(ttp=50.0)
        world.context.delta = 50.0
        world.give_copy(0, 2)
        world.agent(0).cache_peer.renew_ttp(2)
        world.update_item(2)  # copy is one version behind
        record = world.agent(0).local_query(2, ConsistencyLevel.DELTA)
        assert record.answered  # TTP open: served immediately
        # Served within delta of the update -> no violation.
        assert world.metrics.staleness.violations("delta") == 0
