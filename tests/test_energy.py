"""Unit tests for the battery and energy-cost model."""

import pytest

from repro.energy.battery import Battery, EnergyCosts
from repro.errors import ConfigurationError


class TestEnergyCosts:
    def test_transmit_cost_scales_with_size(self):
        costs = EnergyCosts(tx_fixed=0.01, tx_per_byte=0.001)
        assert costs.transmit_cost(100) == pytest.approx(0.11)

    def test_receive_cheaper_than_transmit_by_default(self):
        costs = EnergyCosts()
        assert costs.receive_cost(100) < costs.transmit_cost(100)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyCosts(tx_fixed=-1.0)


class TestBattery:
    def test_starts_full(self):
        battery = Battery(capacity=50.0)
        assert battery.level == 50.0
        assert battery.fraction == 1.0

    def test_initial_charge(self):
        battery = Battery(capacity=100.0, initial=25.0)
        assert battery.fraction == 0.25

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity=10.0, initial=20.0)

    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity=0.0)

    def test_consume_drains(self):
        battery = Battery(capacity=10.0)
        battery.consume(4.0)
        assert battery.level == pytest.approx(6.0)
        assert battery.total_consumed == pytest.approx(4.0)

    def test_consume_clamps_at_empty(self):
        battery = Battery(capacity=1.0)
        battery.consume(5.0)
        assert battery.level == 0.0
        assert battery.depleted
        assert battery.total_consumed == pytest.approx(1.0)

    def test_negative_consume_rejected(self):
        with pytest.raises(ConfigurationError):
            Battery().consume(-1.0)

    def test_transmit_receive_counters(self):
        battery = Battery()
        battery.on_transmit(100)
        battery.on_transmit(100)
        battery.on_receive(100)
        assert battery.tx_count == 2
        assert battery.rx_count == 1
        assert battery.level < battery.capacity

    def test_idle_drain(self):
        costs = EnergyCosts(idle_per_second=0.5)
        battery = Battery(capacity=10.0, costs=costs)
        battery.idle(4.0)
        assert battery.level == pytest.approx(8.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            Battery().idle(-1.0)

    def test_full_recharge(self):
        battery = Battery(capacity=10.0, initial=2.0)
        battery.recharge()
        assert battery.level == 10.0

    def test_partial_recharge_capped(self):
        battery = Battery(capacity=10.0, initial=8.0)
        battery.recharge(5.0)
        assert battery.level == 10.0

    def test_negative_recharge_rejected(self):
        with pytest.raises(ConfigurationError):
            Battery().recharge(-1.0)

    def test_fraction_tracks_level(self):
        battery = Battery(capacity=20.0)
        battery.consume(5.0)
        assert battery.fraction == pytest.approx(0.75)
