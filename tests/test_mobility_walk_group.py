"""Unit tests for the random-walk and group mobility models."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.mobility.group import GroupMember, make_group
from repro.mobility.stationary import PiecewiseLinear, Stationary
from repro.mobility.terrain import Point, Terrain
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint


def make_walk(terrain, seed=1, **kwargs):
    defaults = dict(speed_min=1.0, speed_max=5.0, epoch=30.0)
    defaults.update(kwargs)
    return RandomWalk(terrain, random.Random(seed), **defaults)


class TestRandomWalk:
    def test_position_at_zero_is_start(self, terrain):
        model = make_walk(terrain, start=Point(50, 50))
        assert model.position(0.0) == Point(50, 50)

    def test_stays_inside_terrain(self, terrain):
        model = make_walk(terrain, seed=9, speed_max=20.0)
        for t in range(0, 10_000, 73):
            assert terrain.contains(model.position(float(t)))

    def test_reflection_at_boundary(self):
        # Small terrain, fast node: reflections must occur and stay legal.
        terrain = Terrain(100.0, 100.0)
        model = make_walk(terrain, seed=3, speed_min=10.0, speed_max=10.0)
        for t in range(0, 500):
            point = model.position(float(t))
            assert 0.0 <= point.x <= 100.0
            assert 0.0 <= point.y <= 100.0

    def test_deterministic_given_seed(self, terrain):
        a = make_walk(terrain, seed=5)
        b = make_walk(terrain, seed=5)
        for t in (1.0, 77.7, 456.0):
            assert a.position(t) == b.position(t)

    def test_pure_function_of_time(self, terrain):
        model = make_walk(terrain, seed=2)
        late = model.position(900.0)
        assert model.position(900.0) == late

    def test_speed_constant_within_epoch(self, terrain):
        model = make_walk(terrain, seed=4, epoch=50.0)
        assert model.speed_at(10.0) == pytest.approx(model.speed_at(40.0))

    def test_speed_within_bounds(self, terrain):
        model = make_walk(terrain, seed=6, speed_min=2.0, speed_max=3.0)
        for t in (5.0, 100.0, 555.0):
            assert 2.0 <= model.speed_at(t) <= 3.0

    def test_direction_changes_between_epochs(self, terrain):
        model = make_walk(terrain, seed=8, epoch=10.0)
        headings = set()
        for epoch_index in range(6):
            t = epoch_index * 10.0 + 5.0
            a = model.position(t)
            b = model.position(t + 1.0)
            headings.add(round(math.atan2(b.y - a.y, b.x - a.x), 3))
        assert len(headings) > 1

    def test_validation(self, terrain, rng):
        with pytest.raises(ConfigurationError):
            RandomWalk(terrain, rng, speed_min=0.0)
        with pytest.raises(ConfigurationError):
            RandomWalk(terrain, rng, epoch=0.0)
        with pytest.raises(ConfigurationError):
            RandomWalk(terrain, rng, start=Point(-1, 0))


class TestGroupMobility:
    def test_members_stay_near_reference(self, terrain, rng):
        reference = Stationary(Point(700, 700))
        members = make_group(terrain, reference, rng, size=5,
                             spread=80.0, jitter=10.0)
        for member in members:
            for t in (0.0, 100.0, 500.0):
                distance = member.position(t).distance_to(Point(700, 700))
                assert distance <= 80.0 + 10.0 * 2 + 1e-9

    def test_members_move_with_reference(self, terrain, rng):
        reference = PiecewiseLinear(
            [(0.0, Point(100, 100)), (100.0, Point(900, 900))]
        )
        member = GroupMember(terrain, reference, rng, spread=50.0, jitter=0.0)
        start = member.position(0.0)
        end = member.position(100.0)
        # The member's displacement mirrors the reference's.
        assert start.distance_to(end) > 700.0

    def test_members_have_distinct_offsets(self, terrain, rng):
        reference = Stationary(Point(500, 500))
        members = make_group(terrain, reference, rng, size=8, jitter=0.0)
        positions = {members[i].position(0.0) for i in range(8)}
        assert len(positions) > 1

    def test_positions_clamped_to_terrain(self, rng):
        terrain = Terrain(200.0, 200.0)
        reference = Stationary(Point(195, 195))  # near the corner
        member = GroupMember(terrain, reference, rng, spread=100.0, jitter=30.0)
        for t in (0.0, 33.0, 250.0):
            assert terrain.contains(member.position(t))

    def test_jitter_moves_member_over_time(self, terrain, rng):
        reference = Stationary(Point(500, 500))
        member = GroupMember(terrain, reference, rng, spread=0.0,
                             jitter=20.0, jitter_period=100.0)
        positions = {member.position(t) for t in (0.0, 25.0, 50.0, 75.0)}
        assert len(positions) > 1

    def test_validation(self, terrain, rng):
        reference = Stationary(Point(0, 0))
        with pytest.raises(ConfigurationError):
            GroupMember(terrain, reference, rng, spread=-1.0)
        with pytest.raises(ConfigurationError):
            GroupMember(terrain, reference, rng, jitter_period=0.0)
        with pytest.raises(ConfigurationError):
            make_group(terrain, reference, rng, size=0)

    def test_group_over_waypoint_reference(self, terrain):
        reference = RandomWaypoint(terrain, random.Random(1), 1.0, 5.0, 10.0)
        members = make_group(terrain, reference, random.Random(2), size=4,
                             spread=60.0, jitter=5.0)
        for t in (0.0, 300.0, 900.0):
            anchor = reference.position(t)
            for member in members:
                assert member.position(t).distance_to(anchor) < 140.0
