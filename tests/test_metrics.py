"""Unit tests for traffic counters, latency recording and staleness audits."""

import pytest

from repro.errors import ProtocolError
from repro.metrics.collector import MetricsCollector
from repro.metrics.counters import MessageCounters
from repro.metrics.latency import LatencyRecorder
from repro.metrics.report import format_summary, format_table
from repro.metrics.staleness import StalenessTracker
from repro.net.message import Message


class TestMessageCounters:
    def test_record_accumulates(self):
        counters = MessageCounters()
        msg = Message(sender=1, size_bytes=100)
        counters.record_transmissions(msg, 3)
        counters.record_transmissions(msg, 2)
        assert counters.messages() == 2
        assert counters.transmissions() == 5
        assert counters.total_bytes() == 500

    def test_by_type_separation(self):
        class Ping(Message):
            pass

        counters = MessageCounters()
        counters.record_transmissions(Message(sender=1), 1)
        counters.record_transmissions(Ping(sender=1), 4)
        assert counters.transmissions("Ping") == 4
        assert counters.transmissions("Message") == 1
        assert counters.types() == ["Message", "Ping"]

    def test_filter_unknown_type_is_zero(self):
        assert MessageCounters().transmissions("Nope") == 0


class TestLatencyRecorder:
    def test_open_close_cycle(self):
        recorder = LatencyRecorder()
        record = recorder.open(1, 5, "strong", now=10.0)
        recorder.close(record.query_id, now=12.5, served_version=3)
        assert record.latency == pytest.approx(2.5)
        assert recorder.answered == 1
        assert recorder.unanswered == 0

    def test_unknown_close_tolerated(self):
        recorder = LatencyRecorder()
        assert recorder.close(999_999_999, now=1.0, served_version=0) is None

    def test_double_close_rejected(self):
        recorder = LatencyRecorder()
        record = recorder.open(1, 5, "weak", now=0.0)
        recorder.close(record.query_id, now=1.0, served_version=0)
        with pytest.raises(ProtocolError):
            recorder.close(record.query_id, now=2.0, served_version=0)

    def test_latency_of_unanswered_raises(self):
        recorder = LatencyRecorder()
        record = recorder.open(1, 5, "weak", now=0.0)
        with pytest.raises(ProtocolError):
            record.latency

    def test_mean_and_percentile(self):
        recorder = LatencyRecorder()
        for latency in (1.0, 2.0, 3.0, 4.0):
            record = recorder.open(1, 1, "weak", now=0.0)
            recorder.close(record.query_id, now=latency, served_version=0)
        assert recorder.mean_latency() == pytest.approx(2.5)
        assert recorder.percentile_latency(0.95) == 4.0

    def test_level_filter(self):
        recorder = LatencyRecorder()
        a = recorder.open(1, 1, "strong", now=0.0)
        recorder.close(a.query_id, now=10.0, served_version=0)
        b = recorder.open(1, 1, "weak", now=0.0)
        recorder.close(b.query_id, now=2.0, served_version=0)
        assert recorder.mean_latency("strong") == pytest.approx(10.0)
        assert recorder.mean_latency("weak") == pytest.approx(2.0)

    def test_hit_latency_subset(self):
        recorder = LatencyRecorder()
        hit = recorder.open(1, 1, "weak", now=0.0)
        hit.cache_hit = True
        recorder.close(hit.query_id, now=1.0, served_version=0)
        miss = recorder.open(1, 2, "weak", now=0.0)
        recorder.close(miss.query_id, now=9.0, served_version=0)
        assert recorder.mean_hit_latency() == pytest.approx(1.0)
        assert recorder.mean_latency() == pytest.approx(5.0)

    def test_local_answer_ratio(self):
        recorder = LatencyRecorder()
        a = recorder.open(1, 1, "weak", now=0.0)
        recorder.close(a.query_id, now=1.0, served_version=0, served_locally=True)
        b = recorder.open(1, 2, "weak", now=0.0)
        recorder.close(b.query_id, now=1.0, served_version=0)
        assert recorder.local_answer_ratio() == pytest.approx(0.5)

    def test_empty_summaries_are_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean_latency() == 0.0
        assert recorder.percentile_latency(0.5) == 0.0
        assert recorder.local_answer_ratio() == 0.0


class TestStalenessTracker:
    def test_current_read_not_stale(self):
        tracker = StalenessTracker()
        tracker.record_update(1, 1, now=10.0)
        audit = tracker.record_read(1, 1, now=20.0, level="strong")
        assert audit.staleness_age == 0.0
        assert not audit.violated

    def test_stale_read_age(self):
        tracker = StalenessTracker()
        tracker.record_update(1, 1, now=10.0)  # version 0 superseded at 10
        audit = tracker.record_read(1, 0, now=25.0, level="strong")
        assert audit.staleness_age == pytest.approx(15.0)
        assert audit.violated
        assert audit.version_lag == 1

    def test_delta_violation_bound(self):
        tracker = StalenessTracker(delta=20.0)
        tracker.record_update(1, 1, now=10.0)
        fresh_enough = tracker.record_read(1, 0, now=25.0, level="delta")
        assert not fresh_enough.violated
        too_old = tracker.record_read(1, 0, now=35.0, level="delta")
        assert too_old.violated

    def test_explicit_delta_overrides_default(self):
        tracker = StalenessTracker(delta=1000.0)
        tracker.record_update(1, 1, now=0.0)
        audit = tracker.record_read(1, 0, now=50.0, level="delta", delta=10.0)
        assert audit.violated

    def test_weak_never_violated(self):
        tracker = StalenessTracker()
        for _ in range(5):
            tracker.record_update(1, tracker.current_version(1) + 1, now=1.0)
        audit = tracker.record_read(1, 0, now=100.0, level="weak")
        assert audit.staleness_age > 0
        assert not audit.violated

    def test_ratios(self):
        tracker = StalenessTracker()
        tracker.record_update(1, 1, now=0.0)
        tracker.record_read(1, 1, now=1.0, level="strong")
        tracker.record_read(1, 0, now=1.0, level="strong")
        assert tracker.stale_ratio() == pytest.approx(0.5)
        assert tracker.violation_ratio() == pytest.approx(0.5)
        assert tracker.reads == 2
        assert tracker.stale_reads() == 1

    def test_level_filtered_ratios(self):
        tracker = StalenessTracker()
        tracker.record_update(1, 1, now=0.0)
        tracker.record_read(1, 0, now=1.0, level="strong")
        tracker.record_read(1, 0, now=1.0, level="weak")
        assert tracker.violation_ratio("strong") == 1.0
        assert tracker.violation_ratio("weak") == 0.0

    def test_untracked_version_treated_as_ancient(self):
        tracker = StalenessTracker()
        tracker.record_update(1, 5, now=10.0)
        audit = tracker.record_read(1, 2, now=30.0, level="strong")
        assert audit.staleness_age == pytest.approx(30.0)


class TestCollector:
    def test_summary_shape(self):
        collector = MetricsCollector()
        collector.record_transmissions(Message(sender=1, size_bytes=10), 2)
        record = collector.latency.open(1, 1, "weak", now=0.0)
        collector.latency.close(record.query_id, now=1.0, served_version=0)
        collector.staleness.record_read(1, 0, now=1.0, level="weak")
        collector.bump("custom", 3)
        summary = collector.summary()
        assert summary.transmissions == 2
        assert summary.queries_answered == 1
        assert summary.counters == {"custom": 3}
        assert "Message" in summary.transmissions_by_type

    def test_reset_preserves_version_history(self):
        collector = MetricsCollector()
        collector.staleness.record_update(1, 1, now=5.0)
        collector.bump("x")
        collector.reset()
        assert collector.counter("x") == 0
        assert collector.summary().transmissions == 0
        audit = collector.staleness.record_read(1, 0, now=10.0, level="strong")
        assert audit.staleness_age == pytest.approx(5.0)  # history kept


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(("a", "b"), [(1, 2.5), (10, 0.25)], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_summary_contains_key_metrics(self):
        collector = MetricsCollector()
        collector.record_transmissions(Message(sender=1), 5)
        text = format_summary(collector.summary())
        assert "transmissions" in text
        assert "mean latency" in text
        assert "traffic by type" in text
