"""Unit tests for arrival processes, access patterns and level mixes."""

import random
from collections import Counter

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.errors import WorkloadError
from repro.workload.access import UniformAccess, ZipfAccess
from repro.workload.arrivals import ExponentialProcess, FixedIntervalProcess
from repro.workload.mix import LevelMix


class TestExponentialProcess:
    def test_mean_interval_approximate(self, sim, rng):
        times = []
        process = ExponentialProcess(sim, rng, 10.0, lambda: times.append(sim.now))
        process.start()
        sim.run_until(10_000.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 8.5 < mean_gap < 11.5

    def test_stop_halts_arrivals(self, sim, rng):
        process = ExponentialProcess(sim, rng, 1.0, lambda: None)
        process.start()
        sim.run_until(10.0)
        count = process.arrivals
        process.stop()
        sim.run_until(100.0)
        assert process.arrivals == count

    def test_start_idempotent(self, sim, rng):
        process = ExponentialProcess(sim, rng, 5.0, lambda: None)
        process.start()
        process.start()
        assert sim.pending_events == 1

    def test_invalid_mean(self, sim, rng):
        with pytest.raises(WorkloadError):
            ExponentialProcess(sim, rng, 0.0, lambda: None)

    def test_deterministic_given_seed(self):
        def run_once():
            from repro.sim.engine import Simulator

            local = Simulator()
            times = []
            process = ExponentialProcess(
                local, random.Random(7), 5.0, lambda: times.append(local.now)
            )
            process.start()
            local.run_until(100.0)
            return times

        assert run_once() == run_once()


class TestFixedIntervalProcess:
    def test_exact_cadence(self, sim):
        times = []
        process = FixedIntervalProcess(sim, 10.0, lambda: times.append(sim.now))
        process.start()
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_invalid_interval(self, sim):
        with pytest.raises(WorkloadError):
            FixedIntervalProcess(sim, -1.0, lambda: None)


class TestUniformAccess:
    def test_never_returns_own_item(self, rng):
        access = UniformAccess(range(10))
        assert all(access.choose(rng, 3) != 3 for _ in range(200))

    def test_covers_all_items(self, rng):
        access = UniformAccess(range(5))
        seen = {access.choose(rng, 0) for _ in range(500)}
        assert seen == {1, 2, 3, 4}

    def test_roughly_uniform(self, rng):
        access = UniformAccess(range(5))
        counts = Counter(access.choose(rng, 0) for _ in range(4000))
        assert max(counts.values()) / min(counts.values()) < 1.4

    def test_single_item_degenerate(self, rng):
        access = UniformAccess([7])
        assert access.choose(rng, 7) == 7

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            UniformAccess([])


class TestZipfAccess:
    def test_skewed_popularity(self, rng):
        access = ZipfAccess(range(50), theta=0.9, seed=1)
        counts = Counter(access.choose(rng, -1) for _ in range(20_000))
        frequencies = sorted(counts.values(), reverse=True)
        top_share = sum(frequencies[:5]) / 20_000
        assert top_share > 0.3  # the head dominates

    def test_theta_zero_is_uniform(self, rng):
        access = ZipfAccess(range(10), theta=0.0, seed=1)
        counts = Counter(access.choose(rng, -1) for _ in range(10_000))
        assert max(counts.values()) / min(counts.values()) < 1.4

    def test_avoids_own_item(self, rng):
        access = ZipfAccess(range(5), theta=1.0, seed=2)
        assert all(access.choose(rng, 2) != 2 for _ in range(300))

    def test_negative_theta_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfAccess(range(5), theta=-0.5)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfAccess([])

    def test_rank_shuffle_depends_on_seed(self, rng):
        heavy_a = Counter(
            ZipfAccess(range(20), theta=1.2, seed=1).choose(rng, -1)
            for _ in range(3000
        )).most_common(1)[0][0]
        heavy_b = Counter(
            ZipfAccess(range(20), theta=1.2, seed=2).choose(rng, -1)
            for _ in range(3000
        )).most_common(1)[0][0]
        assert heavy_a != heavy_b  # popular item placed differently


class TestLevelMix:
    def test_pure_mix(self, rng):
        mix = LevelMix.pure("sc")
        assert all(
            mix.choose(rng) is ConsistencyLevel.STRONG for _ in range(50)
        )

    def test_hybrid_equal_thirds(self, rng):
        mix = LevelMix.hybrid()
        counts = Counter(mix.choose(rng) for _ in range(9000))
        for level in ConsistencyLevel:
            assert 2600 < counts[level] < 3400

    def test_weighted_mix(self, rng):
        mix = LevelMix({ConsistencyLevel.WEAK: 3.0, ConsistencyLevel.STRONG: 1.0})
        counts = Counter(mix.choose(rng) for _ in range(8000))
        ratio = counts[ConsistencyLevel.WEAK] / counts[ConsistencyLevel.STRONG]
        assert 2.4 < ratio < 3.6

    def test_invalid_weights(self):
        with pytest.raises(WorkloadError):
            LevelMix({})
        with pytest.raises(WorkloadError):
            LevelMix({ConsistencyLevel.WEAK: -1.0})

    def test_levels_property(self):
        mix = LevelMix.pure("dc")
        assert mix.levels == (ConsistencyLevel.DELTA,)
