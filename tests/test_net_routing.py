"""Unit tests for routing policies, including the DSR-style route cache."""

import pytest

from repro.mobility.terrain import Point
from repro.net.routing import CachingRouter, ShortestPathRouter
from repro.net.topology import TopologySnapshot


def snapshot_of(coords, radio_range=150.0):
    return TopologySnapshot(
        {i: Point(x, y) for i, (x, y) in enumerate(coords)}, radio_range
    )


LINE5 = [(0, 0), (100, 0), (200, 0), (300, 0), (400, 0)]


class TestShortestPathRouter:
    def test_finds_optimal_route(self):
        router = ShortestPathRouter()
        route = router.find_route(snapshot_of(LINE5), 0, 4, now=0.0)
        assert route == [0, 1, 2, 3, 4]

    def test_partition_returns_none(self):
        router = ShortestPathRouter()
        snap = snapshot_of([(0, 0), (1000, 0)])
        assert router.find_route(snap, 0, 1, now=0.0) is None


class TestCachingRouter:
    def test_first_lookup_is_a_miss(self):
        router = CachingRouter()
        router.find_route(snapshot_of(LINE5), 0, 4, now=0.0)
        assert router.misses == 1
        assert router.hits == 0

    def test_second_lookup_hits(self):
        router = CachingRouter()
        snap = snapshot_of(LINE5)
        first = router.find_route(snap, 0, 4, now=0.0)
        second = router.find_route(snap, 0, 4, now=1.0)
        assert second == first
        assert router.hits == 1

    def test_reverse_route_primed(self):
        router = CachingRouter()
        snap = snapshot_of(LINE5)
        router.find_route(snap, 0, 4, now=0.0)
        reverse = router.find_route(snap, 4, 0, now=1.0)
        assert reverse == [4, 3, 2, 1, 0]
        assert router.hits == 1

    def test_broken_link_invalidates(self):
        router = CachingRouter()
        router.find_route(snapshot_of(LINE5), 0, 4, now=0.0)
        # Node 2 moved away: the cached route's middle link is gone.
        broken = snapshot_of([(0, 0), (100, 0), (200, 900), (300, 0), (400, 0)])
        route = router.find_route(broken, 0, 4, now=1.0)
        assert route is None  # and no stale route was returned
        assert router.invalidations == 1

    def test_departed_node_invalidates(self):
        router = CachingRouter()
        router.find_route(snapshot_of(LINE5), 0, 4, now=0.0)
        without_node_2 = TopologySnapshot(
            {i: Point(x, y) for i, (x, y) in enumerate(LINE5) if i != 2},
            radio_range=150.0,
        )
        assert router.find_route(without_node_2, 0, 4, now=1.0) is None
        assert router.invalidations == 1

    def test_ttl_expiry_forces_rediscovery(self):
        router = CachingRouter(route_ttl=10.0)
        snap = snapshot_of(LINE5)
        router.find_route(snap, 0, 4, now=0.0)
        router.find_route(snap, 0, 4, now=20.0)
        assert router.invalidations == 1
        assert router.misses == 2

    def test_cached_route_survives_new_shortcut(self):
        # DSR realism: a cached (valid) route is reused even if a shorter
        # one has appeared.
        router = CachingRouter()
        router.find_route(snapshot_of(LINE5), 0, 4, now=0.0)
        with_shortcut = snapshot_of(LINE5 + [(200, 100)])
        route = router.find_route(with_shortcut, 0, 4, now=1.0)
        assert route == [0, 1, 2, 3, 4]
        assert router.hits == 1

    def test_returns_copies_not_aliases(self):
        router = CachingRouter()
        snap = snapshot_of(LINE5)
        first = router.find_route(snap, 0, 4, now=0.0)
        first.append(999)
        second = router.find_route(snap, 0, 4, now=1.0)
        assert 999 not in second

    def test_clear(self):
        router = CachingRouter()
        router.find_route(snapshot_of(LINE5), 0, 4, now=0.0)
        assert router.cached_routes == 2  # forward + reverse
        router.clear()
        assert router.cached_routes == 0

    def test_failed_discovery_not_cached(self):
        router = CachingRouter()
        snap = snapshot_of([(0, 0), (1000, 0)])
        assert router.find_route(snap, 0, 1, now=0.0) is None
        assert router.cached_routes == 0


class TestNetworkWithCachingRouter:
    def test_unicast_through_caching_router(self):
        from repro.metrics.counters import MessageCounters
        from repro.net.message import Message
        from repro.net.network import Network
        from repro.sim.engine import Simulator
        from tests.test_net_network import StubNode

        sim = Simulator()
        router = CachingRouter()
        net = Network(sim, radio_range=150.0, traffic=MessageCounters(),
                      router=router)
        nodes = [StubNode(i, Point(x, y)) for i, (x, y) in enumerate(LINE5)]
        for node in nodes:
            net.register(node)
        assert net.unicast(0, 4, Message(sender=0))
        assert net.unicast(0, 4, Message(sender=0))
        sim.run()
        assert len(nodes[4].inbox) == 2
        assert router.hits == 1
