"""Unit tests for mobility models: random waypoint, stationary, scripted."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.mobility.stationary import PiecewiseLinear, Stationary
from repro.mobility.terrain import Point, Terrain
from repro.mobility.waypoint import RandomWaypoint


def make_waypoint(terrain, seed=1, **kwargs):
    defaults = dict(speed_min=1.0, speed_max=5.0, pause_time=10.0)
    defaults.update(kwargs)
    return RandomWaypoint(terrain, random.Random(seed), **defaults)


class TestRandomWaypoint:
    def test_position_at_zero_is_start(self, terrain):
        start = Point(100, 100)
        model = make_waypoint(terrain, start=start)
        assert model.position(0.0) == start

    def test_negative_time_clamps_to_start(self, terrain):
        model = make_waypoint(terrain, start=Point(5, 5))
        assert model.position(-10.0) == Point(5, 5)

    def test_stays_inside_terrain(self, terrain):
        model = make_waypoint(terrain, seed=7)
        for t in range(0, 5000, 37):
            assert terrain.contains(model.position(float(t)))

    def test_deterministic_given_seed(self, terrain):
        a = make_waypoint(terrain, seed=3)
        b = make_waypoint(terrain, seed=3)
        for t in (0.0, 10.0, 123.4, 999.9):
            assert a.position(t) == b.position(t)

    def test_different_seeds_diverge(self, terrain):
        a = make_waypoint(terrain, seed=1)
        b = make_waypoint(terrain, seed=2)
        assert any(a.position(t) != b.position(t) for t in (50.0, 100.0, 200.0))

    def test_speed_within_bounds_while_moving(self, terrain):
        model = make_waypoint(terrain, seed=5, speed_min=2.0, speed_max=4.0)
        moving_speeds = [
            model.speed_at(float(t))
            for t in range(0, 2000, 13)
            if model.speed_at(float(t)) > 0
        ]
        assert moving_speeds, "node should move at some sampled instant"
        assert all(2.0 <= s <= 4.0 for s in moving_speeds)

    def test_pauses_at_waypoints(self, terrain):
        model = make_waypoint(terrain, seed=5, pause_time=50.0)
        leg = model._legs[0]
        mid_pause = (leg.arrive_time + leg.end_time) / 2.0
        assert model.position(mid_pause) == leg.destination
        assert model.speed_at(mid_pause) == 0.0

    def test_movement_continuous(self, terrain):
        model = make_waypoint(terrain, seed=9, speed_max=5.0, pause_time=0.1)
        previous = model.position(0.0)
        for t in range(1, 1000):
            current = model.position(float(t))
            assert previous.distance_to(current) <= 5.0 + 1e-9
            previous = current

    def test_queries_out_of_order(self, terrain):
        model = make_waypoint(terrain, seed=4)
        late = model.position(500.0)
        early = model.position(10.0)
        assert model.position(500.0) == late
        assert model.position(10.0) == early

    def test_legs_generated_lazily(self, terrain):
        model = make_waypoint(terrain, seed=2)
        initial = model.generated_legs
        model.position(10000.0)
        assert model.generated_legs > initial

    def test_invalid_speed_range(self, terrain, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(terrain, rng, speed_min=0.0, speed_max=5.0)
        with pytest.raises(ConfigurationError):
            RandomWaypoint(terrain, rng, speed_min=5.0, speed_max=1.0)

    def test_negative_pause_rejected(self, terrain, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(terrain, rng, pause_time=-1.0)

    def test_start_outside_terrain_rejected(self, terrain, rng):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(terrain, rng, start=Point(-10, 0))


class TestStationary:
    def test_never_moves(self):
        model = Stationary(Point(10, 20))
        assert model.position(0.0) == Point(10, 20)
        assert model.position(1e6) == Point(10, 20)

    def test_zero_speed(self):
        assert Stationary(Point(0, 0)).speed_at(123.0) == 0.0


class TestPiecewiseLinear:
    def test_before_first_waypoint(self):
        model = PiecewiseLinear([(10.0, Point(0, 0)), (20.0, Point(10, 0))])
        assert model.position(0.0) == Point(0, 0)

    def test_after_last_waypoint(self):
        model = PiecewiseLinear([(10.0, Point(0, 0)), (20.0, Point(10, 0))])
        assert model.position(100.0) == Point(10, 0)

    def test_linear_interpolation(self):
        model = PiecewiseLinear([(0.0, Point(0, 0)), (10.0, Point(10, 20))])
        assert model.position(5.0) == Point(5, 10)

    def test_multi_segment(self):
        model = PiecewiseLinear(
            [(0.0, Point(0, 0)), (10.0, Point(10, 0)), (20.0, Point(10, 10))]
        )
        assert model.position(15.0) == Point(10, 5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinear([])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinear([(5.0, Point(0, 0)), (5.0, Point(1, 1))])


class TestPositionValidityWindows:
    """The position_valid_until contract: position(s) == position(t) for
    every s in [t, t'] — sampled, plus per-model structural checks."""

    def check_contract(self, model, times, samples_per_window=5):
        for t in times:
            valid_until = model.position_valid_until(t)
            assert valid_until >= t or valid_until == float("-inf")
            if valid_until <= t:
                continue
            reference = model.position(t)
            horizon = min(valid_until, t + 1000.0)
            for k in range(samples_per_window):
                s = t + (horizon - t) * k / (samples_per_window - 1)
                assert model.position(s) == reference, (t, s, valid_until)

    def test_stationary_is_valid_forever(self):
        model = Stationary(Point(3, 4))
        assert model.position_valid_until(0.0) == float("inf")
        assert model.position_valid_until(1e9) == float("inf")

    def test_waypoint_pause_windows(self, terrain):
        model = make_waypoint(terrain, seed=11, pause_time=10.0)
        times = [0.1 * k for k in range(0, 3000, 7)]
        self.check_contract(model, times)
        # At least one sampled instant must fall inside a pause and report
        # a strictly later expiry (pause_time is 10 s, so pauses exist).
        assert any(model.position_valid_until(t) > t for t in times)

    def test_waypoint_moving_instant_has_empty_window(self, terrain):
        model = make_waypoint(terrain, seed=3, pause_time=0.0)
        # With zero pause the node is always moving after t=0.
        for t in (0.5, 7.3, 42.0):
            assert model.position_valid_until(t) == t

    def test_waypoint_parked_before_time_zero(self, terrain):
        model = make_waypoint(terrain, start=Point(50, 50))
        assert model.position_valid_until(-5.0) <= 0.0
        assert model.position(-5.0) == model.position(-1.0)

    def test_piecewise_linear_windows(self):
        hold = PiecewiseLinear([
            (0.0, Point(0, 0)),
            (10.0, Point(10, 0)),
            (20.0, Point(10, 0)),   # held still 10..20
            (30.0, Point(0, 0)),
        ])
        assert hold.position_valid_until(5.0) == 5.0
        assert hold.position_valid_until(12.0) == 20.0
        # At the exact waypoint time the sampled position comes from a
        # fraction-1.0 interpolation of the *earlier* segment, which is not
        # guaranteed bit-identical to the held point: stay conservative.
        assert hold.position_valid_until(10.0) == 10.0
        assert hold.position_valid_until(35.0) == float("inf")
        self.check_contract(hold, [0.5 * k for k in range(70)])

    def test_piecewise_linear_before_first_waypoint(self):
        model = PiecewiseLinear([(10.0, Point(0, 0)), (20.0, Point(10, 0))])
        assert model.position_valid_until(2.0) == 10.0
        self.check_contract(model, [0.0, 2.0, 9.9, 10.0, 15.0, 25.0])

    def test_random_walk_never_pauses(self, terrain):
        from repro.mobility.walk import RandomWalk

        model = RandomWalk(terrain, random.Random(5))
        assert model.position_valid_until(3.0) == 3.0
        assert model.position_valid_until(0.0) == 0.0

    def test_group_member_delegates_without_jitter(self, terrain):
        from repro.mobility.group import GroupMember

        leader = Stationary(Point(100, 100))
        member = GroupMember(terrain, leader, random.Random(2), jitter=0.0)
        assert member.position_valid_until(7.0) == float("inf")
        jittery = GroupMember(terrain, leader, random.Random(2), jitter=5.0)
        assert jittery.position_valid_until(7.0) == 7.0

    def test_trace_replay_has_pause_windows(self, terrain):
        from repro.mobility.trace import record_trace

        model = make_waypoint(
            terrain, seed=9, pause_time=20.0, speed_min=10.0, speed_max=20.0
        )
        replay = record_trace(model, duration=600.0, interval=1.0).as_model()
        times = [0.5 * k for k in range(1200)]
        self.check_contract(replay, times)
        assert any(replay.position_valid_until(t) > t for t in times)

    def test_base_default_is_conservative(self):
        from repro.mobility.base import MobilityModel

        class Opaque(MobilityModel):
            def position(self, time):
                return Point(0, 0)

        assert Opaque().position_valid_until(123.0) == 123.0
