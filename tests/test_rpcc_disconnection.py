"""Section 4.5 edge cases: disconnection/reconnection handling in RPCC.

Each test reproduces one failure narrative from the paper's Section 4.5
(source failure, relay failure, cache-node failure) in a controlled line
world and checks the prescribed recovery.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.consistency.rpcc.roles import Role

from tests.conftest import line_positions, make_eligible, make_world


def rpcc_world(count=4, **config_kwargs):
    defaults = dict(
        ttl_invalidation=3, ttn=100.0, ttr=75.0, ttp=200.0,
        poll_timeout=2.0, source_poll_timeout=2.0, grace_timeout=6.0,
    )
    defaults.update(config_kwargs)
    config = RPCCConfig(**defaults)
    return make_world(line_positions(count), lambda ctx: RPCCStrategy(ctx, config))


def promote(world, node_id, item_id):
    world.give_copy(node_id, item_id)
    make_eligible(world.host(node_id))
    world.strategy.start()
    world.run(110.0)
    assert world.agent(node_id).roles.is_relay(item_id)
    return world.agent(node_id)


class TestSourceFailure:
    """Paper: "If the source peer fails, cache peers can not receive the
    INVALIDATION and UPDATE ... strong consistency can be ensured only
    for TTR time"."""

    def test_invalidations_stop_while_source_offline(self):
        world = rpcc_world()
        promote(world, 1, 3)
        before = world.metrics.traffic.messages("Invalidation")
        world.host(3).set_online(False)
        world.run(300.0)
        # The three surviving sources tick 3 times each in 300 s; the
        # offline source contributes nothing.
        delta = world.metrics.traffic.messages("Invalidation") - before
        assert delta == 9

    def test_relay_ttr_expires_without_source(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        world.run(100.0)  # TTR freshly renewed
        world.host(3).set_online(False)
        world.run(200.0)  # well past TTR with no renewals
        assert agent.relay.ttr_remaining(3) == 0.0

    def test_queries_degrade_to_stale_answers(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.host(3).set_online(False)
        world.run(200.0)
        world.give_copy(2, 3)
        record = world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(60.0)
        assert record.answered  # via queued-relay wait or forced-stale

    def test_source_recovers_and_invalidation_resumes(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        world.host(3).set_online(False)
        world.run(250.0)
        world.host(3).set_online(True)
        world.host(3).update_master()
        world.run(30.0)  # the next TTN tick pushes UPDATE + INVALIDATION
        assert world.host(1).store.peek(3).version == 1
        assert agent.relay.ttr_remaining(3) > 0


class TestRelayFailure:
    """Paper: a relay that missed UPDATEs compares VER at the next
    INVALIDATION and GET_NEWs the fresh copy."""

    def test_multiple_missed_updates_resynced(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        world.host(1).set_online(False)
        for _ in range(3):
            world.update_item(3)
            world.run(110.0)
        world.host(1).set_online(True)
        world.run(110.0)
        assert world.host(1).store.peek(3).version == 3

    def test_unchanged_data_needs_no_get_new(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.host(1).set_online(False)
        world.run(150.0)  # no updates happen
        world.host(1).set_online(True)
        before = world.metrics.traffic.messages("GetNew")
        world.run(110.0)
        assert world.metrics.traffic.messages("GetNew") == before

    def test_offline_relay_does_not_answer_polls(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.run(100.0)
        world.host(1).set_online(False)
        world.give_copy(2, 3)
        record = world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(30.0)
        # Answered by the fallback broadcast reaching the source instead.
        assert record.answered
        assert world.metrics.traffic.messages("PollAckA") + \
            world.metrics.traffic.messages("PollAckB") >= 1

    def test_update_undeliverable_counted_not_fatal(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.host(1).set_online(False)
        world.update_item(3)
        world.run(110.0)
        assert world.metrics.counter("rpcc_update_undeliverable") >= 1
        # The source keeps the relay: it will resync via INVALIDATION.
        assert 1 in world.agent(3).source.relay_table


class TestCandidateFailure:
    """Paper: a candidate unreachable at APPLY_ACK time is removed from
    the relay table (MAC-layer discovery)."""

    def test_unreachable_candidate_removed(self):
        world = rpcc_world()
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        source = world.agent(3).source
        # Simulate: APPLY arrived, but the candidate vanished before ACK.
        world.host(1).set_online(False)
        world.network.topology.invalidate()
        from repro.consistency.messages import Apply

        source.handle_apply(Apply(sender=1, item_id=3))
        assert 1 not in source.relay_table
        assert world.metrics.counter("rpcc_apply_ack_undeliverable") == 1

    def test_candidate_reapplies_next_period(self):
        world = rpcc_world()
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        agent = world.agent(1)
        agent.roles.become_candidate(3)  # APPLY lost in transit
        agent.on_period_closed()  # new switching period: retry
        world.run(5.0)
        assert world.metrics.counter("rpcc_apply_retry") == 1
        assert agent.roles.is_relay(3)  # the retry succeeded

    def test_offline_candidate_does_not_retry(self):
        world = rpcc_world()
        world.give_copy(1, 3)
        make_eligible(world.host(1))
        agent = world.agent(1)
        agent.roles.become_candidate(3)
        world.host(1).set_online(False)
        agent.on_period_closed()
        assert world.metrics.counter("rpcc_apply_retry") == 0


class TestLossyLinks:
    def test_rpcc_answers_despite_loss(self):
        import random as random_module

        from repro.net.link import LinkModel

        world = rpcc_world()
        promote(world, 1, 3)
        world.network.link = LinkModel(
            loss_rate=0.15, rng=random_module.Random(5)
        )
        world.give_copy(2, 3)
        answered = 0
        for _ in range(8):
            record = world.agent(2).local_query(3, ConsistencyLevel.STRONG)
            world.run(60.0)
            answered += record.answered
        assert answered >= 6  # retries and fallbacks absorb the loss
