"""Unit tests of the trace-driven invariant checker on synthetic traces."""

from __future__ import annotations

import pytest

from repro.obs import (
    CheckReport,
    InvalidationReceived,
    InvariantChecker,
    ReadServed,
    SourceUpdate,
    check_events,
)


def read(time, node=2, item=0, version=0, level="strong", **kwargs):
    return ReadServed(time=time, node=node, item=item, version=version,
                      level=level, **kwargs)


class TestStrong:
    def test_serving_known_stale_version_is_a_violation(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(10.0, version=0),
        ])
        assert not report.ok
        assert report.by_invariant() == {"strong": 1}
        (violation,) = report.violations
        assert violation.node == 2 and violation.item == 0
        assert violation.served_version == 0
        assert "v1" in violation.detail

    def test_serve_within_slack_is_tolerated(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(1.5, version=0),  # answer already in flight
        ])
        assert report.ok

    def test_unknown_update_cannot_be_held_against_the_node(self):
        # Knowledge-relative: no invalidation was delivered, so a stale
        # strong serve is the network's fault, not the protocol's.
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=3),
            read(50.0, version=0),
        ])
        assert report.ok

    def test_serving_the_known_version_is_fine(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(10.0, version=1),
        ])
        assert report.ok

    def test_source_update_counts_as_own_knowledge(self):
        # The source itself (node 0) can never serve below its own master.
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            read(10.0, node=0, version=0),
        ])
        assert report.by_invariant() == {"strong": 1}

    def test_duplicate_and_stale_deliveries_ignored(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=2),
            InvalidationReceived(time=1.0, node=2, item=0, version=2),
            InvalidationReceived(time=5.0, node=2, item=0, version=2),
            InvalidationReceived(time=6.0, node=2, item=0, version=1),
            read(7.5, version=2),
        ])
        assert report.ok


class TestDelta:
    def test_lag_within_delta_is_allowed(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(100.0, version=0, level="delta"),
        ], delta=240.0)
        assert report.ok

    def test_lag_beyond_delta_plus_slack_is_a_violation(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(300.0, version=0, level="delta"),
        ], delta=240.0)
        assert report.by_invariant() == {"delta": 1}

    def test_delta_bound_is_configurable(self):
        events = [
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(100.0, version=0, level="delta"),
        ]
        assert check_events(events, delta=240.0).ok
        assert not check_events(events, delta=30.0).ok


class TestWeakMonotone:
    def test_local_weak_serves_never_downgrade(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=2),
            read(1.0, version=2, level="weak", served_locally=True),
            read(2.0, version=1, level="weak", served_locally=True),
        ])
        assert report.by_invariant() == {"weak-monotone": 1}

    def test_remote_weak_serves_are_exempt(self):
        # A different holder legitimately has an older copy.
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=2),
            read(1.0, version=2, level="weak", served_locally=True),
            read(2.0, version=1, level="weak", remote=True),
        ])
        assert report.ok

    def test_equal_version_is_not_a_downgrade(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            read(1.0, version=1, level="weak", served_locally=True),
            read(2.0, version=1, level="weak", served_locally=True),
        ])
        assert report.ok


class TestValidity:
    def test_served_version_cannot_exceed_ground_truth(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            read(1.0, version=5),
        ])
        assert report.by_invariant() == {"validity": 1}

    def test_validity_applies_to_fallback_reads_too(self):
        report = check_events([
            read(1.0, version=5, fallback=True),
        ])
        assert report.by_invariant() == {"validity": 1}


class TestTimeOrder:
    def test_backwards_timestamps_flagged(self):
        report = check_events([
            SourceUpdate(time=5.0, node=0, item=0, version=1),
            SourceUpdate(time=2.0, node=0, item=1, version=1),
        ])
        assert report.by_invariant() == {"time-order": 1}

    def test_equal_timestamps_are_fine(self):
        report = check_events([
            SourceUpdate(time=5.0, node=0, item=0, version=1),
            SourceUpdate(time=5.0, node=0, item=1, version=1),
        ])
        assert report.ok


class TestFallbackExemption:
    def test_fallback_read_escapes_strong_and_delta(self):
        base = [
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
        ]
        for level in ("strong", "delta"):
            report = check_events(
                base + [read(500.0, version=0, level=level, fallback=True)]
            )
            assert report.ok, level
            assert report.fallback_reads == 1

    def test_fallback_still_faces_weak_monotone(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=2),
            read(1.0, version=2, level="weak", served_locally=True),
            read(2.0, version=1, level="weak", served_locally=True, fallback=True),
        ])
        assert report.by_invariant() == {"weak-monotone": 1}


class TestReportAndPlumbing:
    def test_counts(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            read(1.0, version=1),
            read(2.0, version=1, fallback=True),
        ])
        assert report.events == 3
        assert report.reads_checked == 2
        assert report.fallback_reads == 1
        assert isinstance(report, CheckReport)

    def test_dicts_are_accepted(self):
        events = [
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(10.0, version=0),
        ]
        report = check_events([e.to_dict() for e in events])
        assert report.by_invariant() == {"strong": 1}

    def test_format_ok(self):
        text = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            read(1.0, version=1),
        ]).format()
        assert "OK" in text and "reads checked: 1" in text

    def test_format_failure_lists_violations(self):
        text = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(10.0, version=0),
        ]).format()
        assert "FAILED" in text and "[strong]" in text

    def test_format_truncates(self):
        events = [SourceUpdate(time=0.0, node=0, item=0, version=1)]
        events += [read(float(i + 1), version=5) for i in range(30)]
        text = check_events(events).format(max_violations=5)
        assert "... 25 more" in text

    def test_streaming_api_matches_one_shot(self):
        events = [
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=1.0, node=2, item=0, version=1),
            read(10.0, version=0),
        ]
        checker = InvariantChecker()
        for event in events:
            checker.feed(event)
        assert checker.finish().by_invariant() == check_events(events).by_invariant()

    @pytest.mark.parametrize("level", ["strong", "delta", "weak"])
    def test_empty_trace_is_ok(self, level):
        assert check_events([]).ok
