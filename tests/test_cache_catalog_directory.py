"""Unit tests for the catalog, directory, discovery and placement."""

import random

import pytest

from repro.cache.catalog import Catalog
from repro.cache.directory import CacheDirectory
from repro.cache.discovery import Discovery
from repro.cache.item import MasterCopy
from repro.cache.placement import random_placement, single_item_placement
from repro.cache.store import CacheStore
from repro.errors import ConfigurationError, UnknownItemError
from repro.mobility.terrain import Point
from repro.net.topology import TopologySnapshot


class TestCatalog:
    def test_one_item_per_host(self):
        catalog = Catalog.one_item_per_host(range(5))
        assert len(catalog) == 5
        assert catalog.source_of(3) == 3

    def test_duplicate_item_rejected(self):
        catalog = Catalog()
        catalog.add(MasterCopy(1, 1))
        with pytest.raises(UnknownItemError):
            catalog.add(MasterCopy(1, 2))

    def test_unknown_item_raises(self):
        with pytest.raises(UnknownItemError):
            Catalog().master(42)

    def test_current_version_tracks_updates(self):
        catalog = Catalog.one_item_per_host(range(2))
        catalog.master(0).update(now=1.0)
        assert catalog.current_version(0) == 1
        assert catalog.current_version(1) == 0

    def test_items_sourced_by(self):
        catalog = Catalog()
        catalog.add(MasterCopy(10, 1))
        catalog.add(MasterCopy(11, 1))
        catalog.add(MasterCopy(12, 2))
        assert sorted(catalog.items_sourced_by(1)) == [10, 11]

    def test_contains(self):
        catalog = Catalog.one_item_per_host([0])
        assert 0 in catalog
        assert 1 not in catalog


class TestCacheDirectory:
    def test_add_and_holders(self):
        directory = CacheDirectory()
        directory.add(1, 10)
        directory.add(1, 11)
        assert directory.holders(1) == {10, 11}
        assert directory.holder_count(1) == 2

    def test_remove(self):
        directory = CacheDirectory()
        directory.add(1, 10)
        directory.remove(1, 10)
        assert directory.holders(1) == set()

    def test_remove_unknown_is_noop(self):
        CacheDirectory().remove(1, 10)  # must not raise

    def test_bind_store_keeps_directory_current(self):
        directory = CacheDirectory()
        on_insert, on_evict = directory.bind_store(7)
        store = CacheStore(1, on_insert=on_insert, on_evict=on_evict)
        from repro.cache.item import CachedCopy

        store.put(CachedCopy(1, 0, 100, 0.0))
        assert directory.holders(1) == {7}
        store.put(CachedCopy(2, 0, 100, 1.0))  # evicts item 1
        assert directory.holders(1) == set()
        assert directory.holders(2) == {7}

    def test_items_cached_anywhere(self):
        directory = CacheDirectory()
        directory.add(1, 10)
        directory.add(2, 10)
        assert sorted(directory.items_cached_anywhere()) == [1, 2]


def snapshot_line(count, spacing=100.0, radio_range=150.0):
    return TopologySnapshot(
        {i: Point(i * spacing, 0.0) for i in range(count)}, radio_range
    )


class TestDiscovery:
    def build(self, holders):
        catalog = Catalog.one_item_per_host(range(5))
        directory = CacheDirectory()
        for node in holders:
            directory.add(3, node)
        return Discovery(catalog, directory)

    def test_source_always_candidate(self):
        discovery = self.build(holders=[])
        assert discovery.candidate_holders(3) == {3}

    def test_nearest_holder_by_hops(self):
        discovery = self.build(holders=[1])
        snap = snapshot_line(5)
        # Node 0 asks for item 3: holder 1 is 1 hop away, source 3 is 3.
        assert discovery.nearest_holder(snap, 0, 3) == 1

    def test_requester_holding_wins(self):
        discovery = self.build(holders=[0])
        snap = snapshot_line(5)
        assert discovery.nearest_holder(snap, 0, 3) == 0

    def test_exclusion(self):
        discovery = self.build(holders=[1])
        snap = snapshot_line(5)
        assert discovery.nearest_holder(snap, 0, 3, exclude=[1]) == 3

    def test_unreachable_returns_none(self):
        discovery = self.build(holders=[])
        snap = TopologySnapshot(
            {0: Point(0, 0), 3: Point(5000, 0)}, radio_range=150.0
        )
        assert discovery.nearest_holder(snap, 0, 3) is None

    def test_offline_requester_returns_none(self):
        discovery = self.build(holders=[1])
        snap = snapshot_line(5)
        assert discovery.nearest_holder(snap, 99, 3) is None

    def test_nearest_among(self):
        discovery = self.build(holders=[])
        snap = snapshot_line(5)
        assert discovery.nearest_among(snap, 0, [2, 4]) == 2

    def test_nearest_among_max_hops(self):
        discovery = self.build(holders=[])
        snap = snapshot_line(5)
        assert discovery.nearest_among(snap, 0, [4], max_hops=2) is None

    def test_deterministic_tie_break(self):
        discovery = self.build(holders=[])
        snap = TopologySnapshot(
            {0: Point(0, 0), 1: Point(100, 0), 2: Point(-100, 0)},
            radio_range=150.0,
        )
        assert discovery.nearest_among(snap, 0, [1, 2]) == 1  # lowest id wins


class TestPlacement:
    def make_stores(self, count, capacity=10):
        return {i: CacheStore(capacity) for i in range(count)}

    def test_random_placement_fills_caches(self):
        catalog = Catalog.one_item_per_host(range(20))
        stores = self.make_stores(20, capacity=5)
        assignment = random_placement(catalog, stores, 5, random.Random(1))
        for host_id, items in assignment.items():
            assert len(items) == 5
            assert len(set(items)) == 5
            assert host_id not in items  # never caches own item
            for item in items:
                assert item in stores[host_id]

    def test_random_placement_capped_by_catalog(self):
        catalog = Catalog.one_item_per_host(range(3))
        stores = self.make_stores(3, capacity=10)
        assignment = random_placement(catalog, stores, 10, random.Random(1))
        assert all(len(items) == 2 for items in assignment.values())

    def test_random_placement_validates_cache_num(self):
        catalog = Catalog.one_item_per_host(range(3))
        with pytest.raises(ConfigurationError):
            random_placement(catalog, self.make_stores(3), 0, random.Random(1))

    def test_random_placement_deterministic(self):
        catalog = Catalog.one_item_per_host(range(10))
        a = random_placement(catalog, self.make_stores(10), 3, random.Random(5))
        b = random_placement(catalog, self.make_stores(10), 3, random.Random(5))
        assert a == b

    def test_single_item_placement(self):
        catalog = Catalog.one_item_per_host(range(4))
        stores = self.make_stores(4, capacity=1)
        holders = single_item_placement(catalog, stores, item_id=2)
        assert holders == [0, 1, 3]
        assert all(2 in stores[h] for h in holders)
        assert 2 not in stores[2]

    def test_placement_copies_carry_master_version(self):
        catalog = Catalog.one_item_per_host(range(3))
        catalog.master(1).update(now=1.0)
        stores = self.make_stores(3, capacity=2)
        single_item_placement(catalog, stores, item_id=1)
        assert stores[0].peek(1).version == 1
