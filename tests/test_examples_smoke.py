"""Every committed example script must run end-to-end.

Examples are the repo's living documentation and the first thing to rot
when an API moves.  Each script honours ``REPRO_SMOKE=1`` (a
seconds-long configuration instead of the full example scale), which is
how this suite keeps the check affordable.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))

#: A fragment each script's output must contain (a cheap assertion that
#: the run reached its final report, not just imported cleanly).
EXPECTED_OUTPUT = {
    "quickstart.py": "all six strategy curves",
    "battlefield.py": "RPCC relay overlay",
    "mobile_marketplace.py": "total radio traffic",
    "ttl_tuning.py": "trade-off",
    "relay_dynamics.py": "steady-state mean",
    "replica_gossip.py": "converged: True",
}


def test_every_example_is_covered():
    assert {path.name for path in EXAMPLES} == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.name for p in EXAMPLES])
def test_example_runs_in_smoke_mode(path):
    env = dict(os.environ, REPRO_SMOKE="1")
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(path)],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{path.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert EXPECTED_OUTPUT[path.name] in completed.stdout, path.name
