"""Unit tests for the disc-model connectivity graph."""

import random
from collections import deque

import pytest

from repro.errors import TopologyError
from repro.mobility.terrain import Point
from repro.net.topology import TopologySnapshot, TopologyService


def snapshot_of(coords, radio_range=150.0):
    positions = {i: Point(x, y) for i, (x, y) in enumerate(coords)}
    return TopologySnapshot(positions, radio_range)


def brute_force_adjacency(positions, radio_range):
    """The seed O(N^2) all-pairs build the spatial grid must reproduce."""
    adjacency = {node: [] for node in positions}
    nodes = list(positions.items())
    limit_sq = radio_range * radio_range
    for index, (node_a, pos_a) in enumerate(nodes):
        for node_b, pos_b in nodes[index + 1:]:
            dx = pos_a.x - pos_b.x
            dy = pos_a.y - pos_b.y
            if dx * dx + dy * dy <= limit_sq:
                adjacency[node_a].append(node_b)
                adjacency[node_b].append(node_a)
    return adjacency


def fresh_bfs_levels(snapshot, source, max_depth=None):
    """The seed per-call depth-limited BFS memoisation must reproduce."""
    levels = {source: 0}
    queue = deque([source])
    while queue:
        current = queue.popleft()
        depth = levels[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in snapshot.neighbors(current):
            if neighbor not in levels:
                levels[neighbor] = depth + 1
                queue.append(neighbor)
    return levels


class TestTopologySnapshot:
    def test_neighbors_within_range(self):
        snap = snapshot_of([(0, 0), (100, 0), (400, 0)])
        assert snap.neighbors(0) == [1]
        assert snap.neighbors(2) == []

    def test_range_boundary_inclusive(self):
        snap = snapshot_of([(0, 0), (150, 0)])
        assert snap.neighbors(0) == [1]

    def test_unknown_node_raises(self):
        snap = snapshot_of([(0, 0)])
        with pytest.raises(TopologyError):
            snap.neighbors(99)

    def test_degree(self):
        snap = snapshot_of([(0, 0), (100, 0), (100, 100)])
        assert snap.degree(0) == 2

    def test_shortest_path_line(self):
        snap = snapshot_of([(0, 0), (100, 0), (200, 0), (300, 0)])
        assert snap.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_shortest_path_self(self):
        snap = snapshot_of([(0, 0), (100, 0)])
        assert snap.shortest_path(0, 0) == [0]

    def test_shortest_path_partitioned_returns_none(self):
        snap = snapshot_of([(0, 0), (1000, 0)])
        assert snap.shortest_path(0, 1) is None

    def test_shortest_path_unknown_target(self):
        snap = snapshot_of([(0, 0)])
        assert snap.shortest_path(0, 42) is None

    def test_shortest_path_prefers_fewer_hops(self):
        # 0-1-2 direct chain plus a detour 0-3-4-2.
        snap = snapshot_of([(0, 0), (100, 0), (200, 0), (0, 100), (150, 100)])
        assert snap.shortest_path(0, 2) == [0, 1, 2]

    def test_hop_distance(self):
        snap = snapshot_of([(0, 0), (100, 0), (200, 0)])
        assert snap.hop_distance(0, 2) == 2
        assert snap.hop_distance(0, 0) == 0

    def test_bfs_levels_depth_limited(self):
        snap = snapshot_of([(i * 100, 0) for i in range(6)])
        levels = snap.bfs_levels(0, max_depth=2)
        assert levels == {0: 0, 1: 1, 2: 2}

    def test_bfs_levels_unlimited(self):
        snap = snapshot_of([(i * 100, 0) for i in range(4)])
        assert snap.bfs_levels(0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_connected_components(self):
        snap = snapshot_of([(0, 0), (100, 0), (1000, 0), (1100, 0)])
        components = sorted(sorted(c) for c in snap.connected_components())
        assert components == [[0, 1], [2, 3]]

    def test_is_connected(self):
        assert snapshot_of([(0, 0), (100, 0)]).is_connected()
        assert not snapshot_of([(0, 0), (500, 0)]).is_connected()
        assert TopologySnapshot({}, 100.0).is_connected()

    def test_edge_count(self):
        snap = snapshot_of([(0, 0), (100, 0), (100, 100)])
        assert snap.edge_count() == 3

    def test_nodes_property(self):
        assert snapshot_of([(0, 0), (1, 1)]).nodes == {0, 1}


class TestGridEquivalence:
    """The spatial-hash build must be indistinguishable from brute force."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("count,side,radio_range", [
        (25, 500.0, 150.0),     # dense: most pairs in range
        (60, 1500.0, 150.0),    # paper-like density
        (60, 1500.0, 250.0),    # Table-1 range
        (120, 4000.0, 100.0),   # sparse, many isolated nodes
    ])
    def test_randomized_matches_brute_force(self, seed, count, side, radio_range):
        rng = random.Random(seed)
        positions = {
            i: Point(rng.uniform(0, side), rng.uniform(0, side))
            for i in range(count)
        }
        snap = TopologySnapshot(positions, radio_range)
        expected = brute_force_adjacency(positions, radio_range)
        for node in positions:
            assert snap.neighbors(node) == expected[node]

    def test_negative_coordinates(self):
        rng = random.Random(99)
        positions = {
            i: Point(rng.uniform(-800, 800), rng.uniform(-800, 800))
            for i in range(50)
        }
        snap = TopologySnapshot(positions, 200.0)
        expected = brute_force_adjacency(positions, 200.0)
        for node in positions:
            assert snap.neighbors(node) == expected[node]

    def test_boundary_distance_pairs(self):
        # Exact-range pairs straddling grid cells in every direction.
        r = 150.0
        snap = snapshot_of([(0, 0), (r, 0), (0, r), (-r, 0), (0, -r)], r)
        assert snap.neighbors(0) == [1, 2, 3, 4]
        assert snap.neighbors(1) == [0]

    def test_just_beyond_boundary_excluded(self):
        snap = snapshot_of([(0, 0), (150.0000001, 0)], 150.0)
        assert snap.neighbors(0) == []

    def test_coincident_nodes_are_neighbors(self):
        snap = snapshot_of([(10, 10), (10, 10), (10, 10)], 150.0)
        assert snap.neighbors(0) == [1, 2]
        assert snap.edge_count() == 3

    def test_empty_snapshot(self):
        snap = TopologySnapshot({}, 150.0)
        assert snap.nodes == set()
        assert snap.edge_count() == 0

    def test_single_node(self):
        snap = snapshot_of([(5, 5)])
        assert snap.neighbors(0) == []
        assert snap.shortest_path(0, 0) == [0]

    def test_nonpositive_radio_range_direct_construction(self):
        # Only coincident nodes connect when the disc has zero radius.
        snap = TopologySnapshot({0: Point(0, 0), 1: Point(0, 0), 2: Point(1, 0)}, 0.0)
        assert snap.neighbors(0) == [1]
        assert snap.neighbors(2) == []


class TestBFSMemoization:
    """Memoised BFS answers must equal fresh per-call traversals."""

    def random_snapshot(self, seed, count=60, side=1500.0, radio_range=250.0):
        rng = random.Random(seed)
        positions = {
            i: Point(rng.uniform(0, side), rng.uniform(0, side))
            for i in range(count)
        }
        return TopologySnapshot(positions, radio_range)

    @pytest.mark.parametrize("seed", range(5))
    def test_bfs_levels_match_fresh_bfs(self, seed):
        snap = self.random_snapshot(seed)
        for source in (0, 17, 42):
            for max_depth in (None, 0, 1, 3, 8):
                memoized = snap.bfs_levels(source, max_depth=max_depth)
                fresh = fresh_bfs_levels(snap, source, max_depth=max_depth)
                assert memoized == fresh
                # Flood scheduling iterates this dict: order matters too.
                assert list(memoized) == list(fresh)

    @pytest.mark.parametrize("seed", range(5))
    def test_shortest_path_consistent_with_levels(self, seed):
        snap = self.random_snapshot(seed)
        levels = fresh_bfs_levels(snap, 0)
        for target in snap.nodes:
            path = snap.shortest_path(0, target)
            if target in levels:
                assert path[0] == 0 and path[-1] == target
                assert len(path) - 1 == levels[target]
                for hop_a, hop_b in zip(path, path[1:]):
                    assert snap.has_edge(hop_a, hop_b)
            else:
                assert path is None

    def test_repeated_queries_reuse_cache(self):
        snap = self.random_snapshot(1)
        first = snap.shortest_path(0, 42)
        assert snap.bfs_cache_size == 1
        assert snap.shortest_path(0, 42) == first
        snap.bfs_levels(0, max_depth=3)
        assert snap.bfs_cache_size == 1  # same source, same tree
        snap.hop_distance(0, 17)
        assert snap.bfs_cache_size == 1

    def test_returned_levels_are_copies(self):
        snap = snapshot_of([(0, 0), (100, 0), (200, 0)])
        levels = snap.bfs_levels(0)
        levels[99] = 99  # caller mutation must not poison the cache
        assert 99 not in snap.bfs_levels(0)

    def test_hop_distance_raises_for_offline_source(self):
        snap = snapshot_of([(0, 0)])
        with pytest.raises(TopologyError):
            snap.hop_distance(42, 0)


class TestHasEdge:
    def test_symmetric(self):
        snap = snapshot_of([(0, 0), (100, 0), (400, 0)])
        assert snap.has_edge(0, 1) and snap.has_edge(1, 0)
        assert not snap.has_edge(0, 2)

    def test_offline_endpoint_is_false_not_error(self):
        snap = snapshot_of([(0, 0), (100, 0)])
        assert not snap.has_edge(0, 99)
        assert not snap.has_edge(99, 0)

    def test_no_self_edges(self):
        snap = snapshot_of([(0, 0), (100, 0)])
        assert not snap.has_edge(0, 0)

    def test_matches_neighbor_lists(self):
        rng = random.Random(5)
        positions = {
            i: Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for i in range(40)
        }
        snap = TopologySnapshot(positions, 200.0)
        for a in positions:
            neighbors = set(snap.neighbors(a))
            for b in positions:
                assert snap.has_edge(a, b) == (b in neighbors)


class TestTopologyService:
    def make_service(self, states, quantum=1.0):
        clock = {"t": 0.0}
        service = TopologyService(
            clock=lambda: clock["t"],
            node_states=lambda: list(states),
            radio_range=150.0,
            quantum=quantum,
        )
        return service, clock

    def test_offline_nodes_excluded(self):
        states = [(0, Point(0, 0), True), (1, Point(100, 0), False)]
        service, _ = self.make_service(states)
        assert service.current().nodes == {0}

    def test_snapshot_cached_within_quantum(self):
        states = [(0, Point(0, 0), True)]
        service, clock = self.make_service(states)
        first = service.current()
        clock["t"] = 0.5
        assert service.current() is first
        assert service.snapshots_built == 1

    def test_unmoved_snapshot_reused_after_quantum(self):
        # The same Point objects are served each refresh, so the new bucket
        # diffs to an empty delta and hands back the previous snapshot.
        states = [(0, Point(0, 0), True)]
        service, clock = self.make_service(states)
        first = service.current()
        clock["t"] = 1.5
        assert service.current() is first
        assert service.snapshots_built == 1
        assert service.snapshots_reused == 1

    def test_moved_node_rebuilds_after_quantum(self):
        states = [(0, Point(0, 0), True), (1, Point(100, 0), True)]
        service, clock = self.make_service(states)
        first = service.current()
        clock["t"] = 1.5
        states[0] = (0, Point(10, 0), True)
        second = service.current()
        assert second is not first
        assert second.neighbors(0) == [1]
        # Two movers out of two nodes exceed the delta threshold only when
        # the fraction does; with one mover the patch path is taken.
        assert service.snapshots_built + service.incremental_updates == 2

    def test_incremental_disabled_always_rebuilds(self):
        states = [(0, Point(0, 0), True)]
        service, clock = self.make_service(states)
        service.incremental = False
        first = service.current()
        clock["t"] = 1.5
        second = service.current()
        assert second is not first
        assert service.snapshots_built == 2
        assert service.snapshots_reused == 0

    def test_note_churn_rediffs_within_quantum(self):
        states = [(0, Point(0, 0), True), (1, Point(100, 0), True)]
        service, _ = self.make_service(states)
        first = service.current()
        assert first.nodes == {0, 1}
        states[1] = (1, Point(100, 0), False)
        service.note_churn(1)
        second = service.current()
        assert second.nodes == {0}
        assert service.invalidations == 1
        # The patched snapshot is cached: same bucket, no further churn.
        assert service.current() is second

    def test_invalidate_forces_rebuild(self):
        states = [(0, Point(0, 0), True)]
        service, _ = self.make_service(states)
        service.current()
        service.invalidate()
        service.current()
        assert service.snapshots_built == 2

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            TopologyService(lambda: 0.0, lambda: [], radio_range=0.0)
        with pytest.raises(TopologyError):
            TopologyService(lambda: 0.0, lambda: [], radio_range=100.0, quantum=0.0)
