"""Unit tests for the disc-model connectivity graph."""

import pytest

from repro.errors import TopologyError
from repro.mobility.terrain import Point
from repro.net.topology import TopologySnapshot, TopologyService


def snapshot_of(coords, radio_range=150.0):
    positions = {i: Point(x, y) for i, (x, y) in enumerate(coords)}
    return TopologySnapshot(positions, radio_range)


class TestTopologySnapshot:
    def test_neighbors_within_range(self):
        snap = snapshot_of([(0, 0), (100, 0), (400, 0)])
        assert snap.neighbors(0) == [1]
        assert snap.neighbors(2) == []

    def test_range_boundary_inclusive(self):
        snap = snapshot_of([(0, 0), (150, 0)])
        assert snap.neighbors(0) == [1]

    def test_unknown_node_raises(self):
        snap = snapshot_of([(0, 0)])
        with pytest.raises(TopologyError):
            snap.neighbors(99)

    def test_degree(self):
        snap = snapshot_of([(0, 0), (100, 0), (100, 100)])
        assert snap.degree(0) == 2

    def test_shortest_path_line(self):
        snap = snapshot_of([(0, 0), (100, 0), (200, 0), (300, 0)])
        assert snap.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_shortest_path_self(self):
        snap = snapshot_of([(0, 0), (100, 0)])
        assert snap.shortest_path(0, 0) == [0]

    def test_shortest_path_partitioned_returns_none(self):
        snap = snapshot_of([(0, 0), (1000, 0)])
        assert snap.shortest_path(0, 1) is None

    def test_shortest_path_unknown_target(self):
        snap = snapshot_of([(0, 0)])
        assert snap.shortest_path(0, 42) is None

    def test_shortest_path_prefers_fewer_hops(self):
        # 0-1-2 direct chain plus a detour 0-3-4-2.
        snap = snapshot_of([(0, 0), (100, 0), (200, 0), (0, 100), (150, 100)])
        assert snap.shortest_path(0, 2) == [0, 1, 2]

    def test_hop_distance(self):
        snap = snapshot_of([(0, 0), (100, 0), (200, 0)])
        assert snap.hop_distance(0, 2) == 2
        assert snap.hop_distance(0, 0) == 0

    def test_bfs_levels_depth_limited(self):
        snap = snapshot_of([(i * 100, 0) for i in range(6)])
        levels = snap.bfs_levels(0, max_depth=2)
        assert levels == {0: 0, 1: 1, 2: 2}

    def test_bfs_levels_unlimited(self):
        snap = snapshot_of([(i * 100, 0) for i in range(4)])
        assert snap.bfs_levels(0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_connected_components(self):
        snap = snapshot_of([(0, 0), (100, 0), (1000, 0), (1100, 0)])
        components = sorted(sorted(c) for c in snap.connected_components())
        assert components == [[0, 1], [2, 3]]

    def test_is_connected(self):
        assert snapshot_of([(0, 0), (100, 0)]).is_connected()
        assert not snapshot_of([(0, 0), (500, 0)]).is_connected()
        assert TopologySnapshot({}, 100.0).is_connected()

    def test_edge_count(self):
        snap = snapshot_of([(0, 0), (100, 0), (100, 100)])
        assert snap.edge_count() == 3

    def test_nodes_property(self):
        assert snapshot_of([(0, 0), (1, 1)]).nodes == {0, 1}


class TestTopologyService:
    def make_service(self, states, quantum=1.0):
        clock = {"t": 0.0}
        service = TopologyService(
            clock=lambda: clock["t"],
            node_states=lambda: list(states),
            radio_range=150.0,
            quantum=quantum,
        )
        return service, clock

    def test_offline_nodes_excluded(self):
        states = [(0, Point(0, 0), True), (1, Point(100, 0), False)]
        service, _ = self.make_service(states)
        assert service.current().nodes == {0}

    def test_snapshot_cached_within_quantum(self):
        states = [(0, Point(0, 0), True)]
        service, clock = self.make_service(states)
        first = service.current()
        clock["t"] = 0.5
        assert service.current() is first
        assert service.snapshots_built == 1

    def test_snapshot_rebuilt_after_quantum(self):
        states = [(0, Point(0, 0), True)]
        service, clock = self.make_service(states)
        service.current()
        clock["t"] = 1.5
        service.current()
        assert service.snapshots_built == 2

    def test_invalidate_forces_rebuild(self):
        states = [(0, Point(0, 0), True)]
        service, _ = self.make_service(states)
        service.current()
        service.invalidate()
        service.current()
        assert service.snapshots_built == 2

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            TopologyService(lambda: 0.0, lambda: [], radio_range=0.0)
        with pytest.raises(TopologyError):
            TopologyService(lambda: 0.0, lambda: [], radio_range=100.0, quantum=0.0)
