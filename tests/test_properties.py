"""Property-based tests (hypothesis) for core invariants."""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.item import CachedCopy
from repro.cache.replacement import FIFOPolicy, LFUPolicy, LRUPolicy
from repro.cache.store import CacheStore
from repro.metrics.staleness import StalenessTracker
from repro.mobility.terrain import Point, Terrain
from repro.mobility.waypoint import RandomWaypoint
from repro.net.topology import TopologySnapshot
from repro.peers.coefficients import CoefficientTracker
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


# ----------------------------------------------------------------------
# Event kernel
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1000.0), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    outcomes = []
    handles = []
    for index, (delay, cancel) in enumerate(entries):
        handles.append((sim.schedule(delay, outcomes.append, index), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    cancelled = {i for i, (_, cancel) in enumerate(entries) if cancel}
    assert set(outcomes) == set(range(len(entries))) - cancelled


# ----------------------------------------------------------------------
# Mobility
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    times=st.lists(
        st.floats(min_value=0.0, max_value=20_000.0), min_size=1, max_size=20
    ),
)
def test_waypoint_positions_always_inside_terrain(seed, times):
    terrain = Terrain(1500.0, 1500.0)
    model = RandomWaypoint(terrain, random.Random(seed), 1.0, 10.0, 5.0)
    for t in times:
        assert terrain.contains(model.position(t))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_waypoint_is_pure_function_of_time(seed):
    terrain = Terrain(1000.0, 1000.0)
    model = RandomWaypoint(terrain, random.Random(seed), 1.0, 10.0, 5.0)
    sample_late = model.position(5000.0)
    sample_early = model.position(100.0)
    assert model.position(5000.0) == sample_late
    assert model.position(100.0) == sample_early


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
coords = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1000.0),
    ),
    min_size=2,
    max_size=15,
)


@settings(max_examples=50, deadline=None)
@given(coords=coords)
def test_shortest_path_endpoints_and_adjacency(coords):
    snap = TopologySnapshot(
        {i: Point(x, y) for i, (x, y) in enumerate(coords)}, radio_range=300.0
    )
    path = snap.shortest_path(0, len(coords) - 1)
    if path is not None:
        assert path[0] == 0
        assert path[-1] == len(coords) - 1
        for a, b in zip(path, path[1:]):
            assert b in snap.neighbors(a)
        assert len(set(path)) == len(path)  # simple path


@settings(max_examples=50, deadline=None)
@given(coords=coords)
def test_bfs_levels_consistent_with_hop_distance(coords):
    snap = TopologySnapshot(
        {i: Point(x, y) for i, (x, y) in enumerate(coords)}, radio_range=300.0
    )
    levels = snap.bfs_levels(0)
    for node, depth in levels.items():
        assert snap.hop_distance(0, node) == depth


@settings(max_examples=50, deadline=None)
@given(coords=coords, ttl=st.integers(min_value=0, max_value=5))
def test_flood_reach_monotone_in_ttl(coords, ttl):
    snap = TopologySnapshot(
        {i: Point(x, y) for i, (x, y) in enumerate(coords)}, radio_range=300.0
    )
    smaller = set(snap.bfs_levels(0, max_depth=ttl))
    larger = set(snap.bfs_levels(0, max_depth=ttl + 1))
    assert smaller <= larger


# ----------------------------------------------------------------------
# Cache store
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(st.sampled_from(["put", "get", "discard"]), st.integers(0, 20)),
    max_size=120,
)


@settings(max_examples=50, deadline=None)
@given(ops=ops, capacity=st.integers(min_value=1, max_value=8))
def test_store_never_exceeds_capacity(ops, capacity):
    for policy in (LRUPolicy(), LFUPolicy(), FIFOPolicy()):
        store = CacheStore(capacity, policy=policy)
        clock = 0.0
        for op, item in ops:
            clock += 1.0
            if op == "put":
                store.put(CachedCopy(item, 0, 10, clock))
            elif op == "get":
                store.get(item, clock)
            else:
                store.discard(item)
            assert len(store) <= capacity
        assert len(set(store.item_ids)) == len(store)


@settings(max_examples=50, deadline=None)
@given(ops=ops)
def test_store_membership_callbacks_balance(ops):
    events = []
    store = CacheStore(
        3,
        on_insert=lambda i: events.append(("in", i)),
        on_evict=lambda i: events.append(("out", i)),
    )
    clock = 0.0
    for op, item in ops:
        clock += 1.0
        if op == "put":
            store.put(CachedCopy(item, 0, 10, clock))
        elif op == "discard":
            store.discard(item)
    holders = set()
    for kind, item in events:
        if kind == "in":
            assert item not in holders
            holders.add(item)
        else:
            assert item in holders
            holders.remove(item)
    assert holders == set(store.item_ids)


# ----------------------------------------------------------------------
# Staleness audit
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    update_times=st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20
    ),
    read_version=st.integers(min_value=0, max_value=25),
)
def test_staleness_age_nonnegative_and_zero_for_current(update_times, read_version):
    tracker = StalenessTracker()
    clock = 0.0
    version = 0
    for gap in update_times:
        clock += gap
        version += 1
        tracker.record_update(1, version, now=clock)
    read_version = min(read_version, version)
    audit = tracker.record_read(1, read_version, now=clock + 1.0, level="weak")
    assert audit.staleness_age >= 0.0
    if read_version == version:
        assert audit.staleness_age == 0.0
    else:
        assert audit.staleness_age > 0.0


@settings(max_examples=50, deadline=None)
@given(delta=st.floats(min_value=0.5, max_value=100.0))
def test_strong_violations_superset_of_delta_violations(delta):
    strong = StalenessTracker(delta=delta)
    tracker = StalenessTracker(delta=delta)
    tracker.record_update(1, 1, now=0.0)
    strong.record_update(1, 1, now=0.0)
    for read_time in (0.1, delta / 2, delta + 1.0, delta * 3):
        delta_audit = tracker.record_read(1, 0, now=read_time, level="delta")
        strong_audit = strong.record_read(1, 0, now=read_time, level="strong")
        if delta_audit.violated:
            assert strong_audit.violated


# ----------------------------------------------------------------------
# Coefficients
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20),
    omega=st.floats(min_value=0.0, max_value=0.9),
)
def test_coefficients_always_in_unit_interval(accesses, omega):
    tracker = CoefficientTracker(phi=100.0, omega=omega)
    for count in accesses:
        tracker.record_access(count)
        tracker.record_switch()
        tracker.record_moves(count % 3)
        tracker.close_period()
        assert 0.0 < tracker.car <= 1.0
        assert 0.0 < tracker.cs <= 1.0
        assert 0.0 <= tracker.ce <= 1.0
        assert tracker.par >= 0.0
        assert tracker.psr >= 0.0
        assert tracker.pmr >= 0.0


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32), name=st.text(max_size=30))
def test_streams_reproducible(seed, name):
    a = RandomStreams(seed).stream(name).random()
    b = RandomStreams(seed).stream(name).random()
    assert a == b


# ----------------------------------------------------------------------
# Multi-writer register (CRDT laws)
# ----------------------------------------------------------------------
from repro.extensions.replica import ReplicatedRegister, WriteTag  # noqa: E402

tags = st.tuples(st.integers(1, 50), st.integers(0, 9)).map(lambda t: WriteTag(*t))
# A tag uniquely identifies one write, so tag -> value must be functional:
# generate a dict keyed by tag and spill it to (tag, value) pairs.
states = st.dictionaries(tags, st.integers(0, 100), min_size=1, max_size=8).map(
    lambda mapping: list(mapping.items())
)


@settings(max_examples=50, deadline=None)
@given(states=states)
def test_register_merge_order_independent(states):
    """Folding the same remote states in any order converges identically."""
    forward = ReplicatedRegister(0, 0)
    backward = ReplicatedRegister(0, 0)
    for tag, value in states:
        forward.merge(tag, value)
    for tag, value in reversed(states):
        backward.merge(tag, value)
    assert forward.tag == backward.tag
    assert forward.value == backward.value


@settings(max_examples=50, deadline=None)
@given(states=states)
def test_register_merge_idempotent(states):
    """Replaying every state a second time changes nothing."""
    register = ReplicatedRegister(0, 0)
    for tag, value in states:
        register.merge(tag, value)
    snapshot = (register.tag, register.value)
    for tag, value in states:
        register.merge(tag, value)
    assert (register.tag, register.value) == snapshot


@settings(max_examples=50, deadline=None)
@given(states=states)
def test_register_converges_to_maximum_tag(states):
    register = ReplicatedRegister(0, 0)
    for tag, value in states:
        register.merge(tag, value)
    best_tag, best_value = max(states, key=lambda pair: pair[0])
    if best_tag > WriteTag(0, 0):
        assert register.tag == best_tag
        assert register.value == best_value


# ----------------------------------------------------------------------
# Random walk
# ----------------------------------------------------------------------
from repro.mobility.walk import RandomWalk, _reflect  # noqa: E402


@settings(max_examples=100, deadline=None)
@given(
    value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    limit=st.floats(min_value=1.0, max_value=2000.0),
)
def test_reflect_stays_in_bounds(value, limit):
    reflected = _reflect(value, limit)
    assert 0.0 <= reflected <= limit


@settings(max_examples=100, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=100.0))
def test_reflect_identity_inside_bounds(value):
    assert _reflect(value, 100.0) == pytest.approx(value)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    times=st.lists(st.floats(min_value=0.0, max_value=5_000.0),
                   min_size=1, max_size=10),
)
def test_random_walk_inside_terrain(seed, times):
    terrain = Terrain(800.0, 800.0)
    model = RandomWalk(terrain, random.Random(seed), 1.0, 15.0, 30.0)
    for t in times:
        assert terrain.contains(model.position(t))


# ----------------------------------------------------------------------
# Time series bucketing
# ----------------------------------------------------------------------
from repro.metrics.timeseries import TimeSeries  # noqa: E402

samples = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1000.0),
              st.floats(min_value=-100.0, max_value=100.0)),
    min_size=1, max_size=50,
).map(lambda pairs: sorted(pairs, key=lambda p: p[0]))


@settings(max_examples=50, deadline=None)
@given(samples=samples, width=st.floats(min_value=1.0, max_value=200.0))
def test_bucket_counts_partition_all_samples(samples, width):
    series = TimeSeries()
    for t, v in samples:
        series.record(t, v)
    counted = sum(count for _, count in series.bucketed(width, "count"))
    assert counted == len(samples)


@settings(max_examples=50, deadline=None)
@given(samples=samples, width=st.floats(min_value=1.0, max_value=200.0))
def test_bucket_sums_preserve_total(samples, width):
    series = TimeSeries()
    for t, v in samples:
        series.record(t, v)
    total = sum(value for _, value in series.bucketed(width, "sum"))
    assert total == pytest.approx(sum(v for _, v in samples), abs=1e-6)
