"""Unit tests for the link model and the message base class."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.link import LinkModel
from repro.net.message import Message, next_message_id


class TestLinkModel:
    def test_hop_delay_combines_latency_and_serialisation(self):
        link = LinkModel(latency=0.01, bandwidth_bps=1_000_000)
        # 1250 bytes = 10000 bits -> 10 ms at 1 Mbps, plus 10 ms latency.
        assert link.hop_delay(1250) == pytest.approx(0.02)

    def test_path_delay_scales_with_hops(self):
        link = LinkModel(latency=0.005, bandwidth_bps=2_000_000)
        assert link.path_delay(100, 4) == pytest.approx(4 * link.hop_delay(100))

    def test_path_delay_zero_hops(self):
        assert LinkModel().path_delay(100, 0) == 0.0

    def test_no_loss_by_default(self):
        link = LinkModel()
        assert not any(link.hop_is_lost() for _ in range(100))

    def test_loss_rate_applies(self):
        link = LinkModel(loss_rate=0.5, rng=random.Random(1))
        losses = sum(link.hop_is_lost() for _ in range(1000))
        assert 400 < losses < 600

    def test_loss_requires_rng(self):
        with pytest.raises(ConfigurationError):
            LinkModel(loss_rate=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LinkModel(latency=-0.1)
        with pytest.raises(ConfigurationError):
            LinkModel(bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            LinkModel(loss_rate=1.0, rng=random.Random(1))


class TestMessage:
    def test_ids_unique_and_increasing(self):
        a, b = next_message_id(), next_message_id()
        assert b == a + 1

    def test_default_size_applied(self):
        msg = Message(sender=1)
        assert msg.size_bytes == Message.DEFAULT_SIZE

    def test_explicit_size_kept(self):
        assert Message(sender=1, size_bytes=500).size_bytes == 500

    def test_type_name(self):
        assert Message(sender=1).type_name == "Message"

    def test_messages_are_frozen(self):
        msg = Message(sender=1)
        with pytest.raises(Exception):
            msg.sender = 2  # type: ignore[misc]

    def test_distinct_messages_distinct_ids(self):
        assert Message(sender=1).msg_id != Message(sender=1).msg_id
