"""Experiment-matrix expansion, execution and aggregation semantics.

Pins the contracts ``repro matrix`` relies on: exact cross-product
expansion, first-appearance dedup by content address, loud validation of
every axis before anything simulates, and byte-identical aggregate CSVs
across serial, sharded and killed-then-resumed executions.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor, CampaignRunError
from repro.experiments.store import ResultStore
from repro.experiments.transport import ShardedTransport
from repro.scenarios.matrix import (
    AGGREGATE_COLUMNS,
    MatrixSpec,
    aggregate_matrix,
    expand_matrix,
    load_matrix,
    matrix_csv,
)

TINY_BASE = SimulationConfig(
    n_peers=10,
    sim_time=40.0,
    warmup=0.0,
    terrain_width=800.0,
    terrain_height=800.0,
)


class TestExpansion:
    def test_exact_cross_product(self):
        matrix = MatrixSpec(
            scenarios=("urban-grid", "highway-strip", "multi-source"),
            strategies=("push", "rpcc-sc"),
            policies=("lru", "fifo"),
            seeds=(1, 2),
        )
        points = expand_matrix(matrix, base_config=TINY_BASE)
        assert matrix.cells == 3 * 2 * 2 * 2 == len(points) == 24
        expanded = {(p.scenario, p.strategy, p.policy, p.seed) for p in points}
        expected = set(itertools.product(
            matrix.scenarios, matrix.strategies, matrix.policies, matrix.seeds
        ))
        assert expanded == expected
        for point in points:
            assert point.config.replacement_policy == point.policy
            assert point.config.seed == point.seed

    def test_repeated_seed_dedups_by_content_address(self):
        matrix = MatrixSpec(
            scenarios=("urban-grid",),
            strategies=("push",),
            seeds=(1, 1, 2),
        )
        points = expand_matrix(matrix, base_config=TINY_BASE)
        assert matrix.cells == 3
        assert [p.seed for p in points] == [1, 2]

    def test_unknown_axis_names_fail_before_any_run(self):
        base = dict(scenarios=("urban-grid",), strategies=("push",))
        with pytest.raises(ConfigurationError, match="scenario"):
            expand_matrix(MatrixSpec(**{**base, "scenarios": ("atlantis",)}))
        with pytest.raises(ConfigurationError, match="strategy"):
            expand_matrix(MatrixSpec(**{**base, "strategies": ("gossip",)}))
        with pytest.raises(ConfigurationError, match="policy"):
            expand_matrix(MatrixSpec(**base, policies=("arc",)))

    def test_base_table_applies_and_scenario_overrides_win(self):
        matrix = MatrixSpec(
            scenarios=("urban-grid",),
            strategies=("push",),
            base={"sim_time": 33.0, "n_peers": 5},
        )
        (point,) = expand_matrix(matrix)
        assert point.config.sim_time == 33.0
        # urban-grid's own override beats the [base] table.
        assert point.config.n_peers == 24

    def test_unknown_base_field_is_loud(self):
        matrix = MatrixSpec(
            scenarios=("urban-grid",),
            strategies=("push",),
            base={"sim_tmie": 33.0},
        )
        with pytest.raises(ConfigurationError, match="sim_tmie"):
            expand_matrix(matrix)

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            MatrixSpec(scenarios=(), strategies=("push",))
        with pytest.raises(ConfigurationError, match="integers"):
            MatrixSpec(scenarios=("urban-grid",), strategies=("push",),
                       seeds=(1.5,))


class TestLoading:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text(
            '[matrix]\n'
            'scenarios = ["urban-grid"]\n'
            'strategies = ["push", "rpcc-sc"]\n'
            'seeds = [3, 4]\n'
            '[base]\n'
            'sim_time = 45.0\n'
        )
        matrix = load_matrix(path)
        assert matrix.scenarios == ("urban-grid",)
        assert matrix.strategies == ("push", "rpcc-sc")
        assert matrix.policies == ("lru",)
        assert matrix.seeds == (3, 4)
        assert matrix.base == {"sim_time": 45.0}

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "matrix": {"scenarios": ["flash-crowd"], "strategies": ["pull"]},
        }))
        matrix = load_matrix(path)
        assert matrix.scenarios == ("flash-crowd",)
        assert matrix.seeds == (1,)

    def test_unknown_tables_and_axes_rejected(self, tmp_path):
        bad_table = tmp_path / "a.toml"
        bad_table.write_text('[matrx]\nscenarios = ["urban-grid"]\n')
        with pytest.raises(ConfigurationError, match="matrx"):
            load_matrix(bad_table)
        bad_axis = tmp_path / "b.toml"
        bad_axis.write_text(
            '[matrix]\nscenarios = ["urban-grid"]\n'
            'strategies = ["push"]\npolices = ["lru"]\n'
        )
        with pytest.raises(ConfigurationError, match="polices"):
            load_matrix(bad_axis)
        missing = tmp_path / "c.toml"
        missing.write_text('[matrix]\nscenarios = ["urban-grid"]\n')
        with pytest.raises(ConfigurationError, match="strategies"):
            load_matrix(missing)

    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_matrix(tmp_path / "nope.toml")

    def test_committed_example_files_load(self):
        smoke = load_matrix("examples/matrix/smoke.toml")
        assert smoke.cells == 4
        sweep = load_matrix("examples/matrix/catalog_sweep.toml")
        assert sweep.cells == 6 * 3 * 2 * 2
        # Every axis name in the committed files must resolve.
        expand_matrix(MatrixSpec(
            scenarios=sweep.scenarios, strategies=sweep.strategies,
            policies=sweep.policies, seeds=(1,),
        ))


SMALL = MatrixSpec(
    scenarios=("urban-grid", "multi-source"),
    strategies=("push", "rpcc-sc"),
    base={"n_peers": 10, "sim_time": 40.0, "warmup": 0.0},
)


class TestExecution:
    def _rows(self, executor):
        points = expand_matrix(SMALL)
        results = executor.run_many([p.task for p in points])
        return aggregate_matrix(points, results)

    def test_serial_sharded_resumed_csv_byte_identical(self, tmp_path):
        serial_rows = self._rows(CampaignExecutor())
        sharded_rows = self._rows(CampaignExecutor(
            transport=ShardedTransport(2), store=ResultStore(tmp_path / "s")
        ))
        assert matrix_csv(serial_rows) == matrix_csv(sharded_rows)

        # Kill mid-flight: a poisoned spec aborts the campaign after some
        # points completed into the store ...
        points = expand_matrix(SMALL)
        tasks = [p.task for p in points]
        poisoned = tasks[:2] + [(TINY_BASE, "gossip", "standard")] + tasks[2:]
        store = ResultStore(tmp_path / "resume")
        with pytest.raises(CampaignRunError):
            CampaignExecutor(store=store).run_many(poisoned)

        # ... and the resumed run serves them from the store, finishes
        # the rest, and aggregates bit-identically to the serial run.
        resumed_executor = CampaignExecutor(store=ResultStore(tmp_path / "resume"))
        resumed = resumed_executor.run_many(tasks)
        assert resumed_executor.store_hits == 2
        assert resumed_executor.runs_executed == len(tasks) - 2
        resumed_rows = aggregate_matrix(points, resumed)
        assert matrix_csv(resumed_rows) == matrix_csv(serial_rows)

    def test_aggregate_shape_and_order(self):
        rows = self._rows(CampaignExecutor())
        assert [row[:3] for row in rows] == [
            ("urban-grid", "push", "lru"),
            ("urban-grid", "rpcc-sc", "lru"),
            ("multi-source", "push", "lru"),
            ("multi-source", "rpcc-sc", "lru"),
        ]
        for row in rows:
            assert len(row) == len(AGGREGATE_COLUMNS)
            assert row[3] == 1  # one seed per cell

    def test_aggregate_needs_matching_lengths(self):
        points = expand_matrix(SMALL)
        with pytest.raises(ConfigurationError, match="one result per point"):
            aggregate_matrix(points, [])

    def test_seeds_average_into_one_row(self):
        matrix = MatrixSpec(
            scenarios=("urban-grid",),
            strategies=("push",),
            seeds=(1, 2),
            base={"n_peers": 10, "sim_time": 40.0, "warmup": 0.0},
        )
        points = expand_matrix(matrix)
        results = CampaignExecutor().run_many([p.task for p in points])
        (row,) = aggregate_matrix(points, results)
        assert row[3] == 2
        per_seed = [float(r.summary.transmissions) for r in results]
        assert row[4] == sum(per_seed) / 2
