"""The adaptive control subsystem: policies, signals, controller, checker.

Covers the anti-oscillation contract of the hysteresis policy (two-point
actuation, cooldowns, healthy-window hysteresis), the pull-based signal
derivation, the controller's sample -> decide -> actuate loop against a
real simulation, and the invariant checker's actuation timeline (a
controller that lowers Δ must never retroactively create violations).
"""

from __future__ import annotations

import random

import pytest

from repro.control import (
    ControlDecision,
    ControlPolicy,
    ControlSignals,
    DeltaTracker,
    HysteresisPolicy,
    OnlineController,
    StaticPolicy,
)
from repro.errors import ConfigurationError
from repro.obs import (
    ControllerActuated,
    ControllerSampled,
    InvalidationReceived,
    InvariantChecker,
    ListSink,
    ReadServed,
    SourceUpdate,
    TraceBus,
    check_events,
)
from repro.scenarios.registry import CONTROLLERS


def sig(time: float, **overrides) -> ControlSignals:
    return ControlSignals(time=time, window=30.0, **overrides)


BASELINE = {"ttr": 90.0, "ttp": 240.0, "poll_timeout": 4.0,
            "relay_boost": 1.0, "backoff_factor": 2.0}


class TestRegistry:
    def test_both_policies_registered(self):
        assert "static" in CONTROLLERS
        assert "hysteresis" in CONTROLLERS

    def test_factories_build_policies(self):
        for name in CONTROLLERS.names():
            policy = CONTROLLERS.get(name)()
            assert isinstance(policy, ControlPolicy)
            assert policy.name == name


class TestStaticPolicy:
    def test_never_actuates(self):
        policy = StaticPolicy()
        policy.prime(dict(BASELINE))
        rng = random.Random(1)
        for window in range(20):
            degraded = sig(30.0 * window, availability=0.1, partitions_active=2)
            assert policy.decide(degraded, rng) is None


class TestHysteresisValidation:
    @pytest.mark.parametrize("kwargs", [
        {"tighten_scale": 0.0}, {"tighten_scale": 1.0},
        {"relay_boost": 0.5}, {"backoff_boost": 0.9},
        {"cooldown": 0.0}, {"healthy_windows": 0},
        {"cooldown_jitter": -0.1}, {"cooldown_jitter": 1.5},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            HysteresisPolicy(**kwargs)


class TestHysteresisStateMachine:
    def _primed(self, **kwargs) -> HysteresisPolicy:
        policy = HysteresisPolicy(**kwargs)
        policy.prime(dict(BASELINE))
        return policy

    def test_holds_before_prime(self):
        policy = HysteresisPolicy()
        decision = policy.decide(sig(30.0, partitions_active=1), random.Random(1))
        assert decision is None  # no baseline -> nothing to actuate

    def test_tightens_on_first_degraded_window(self):
        policy = self._primed()
        decision = policy.decide(sig(30.0, partitions_active=1), random.Random(1))
        assert decision is not None
        assert policy.tight
        assert decision.knobs["ttr"] == 22.5       # x tighten_scale
        assert decision.knobs["ttp"] == 60.0
        assert decision.knobs["poll_timeout"] == 1.0
        assert decision.knobs["relay_boost"] == 2.0     # x relay_boost
        assert decision.knobs["backoff_factor"] == 3.0  # x backoff_boost
        assert "partition" in decision.reason

    def test_two_point_actuation_never_ratchets(self):
        """Tighten -> relax -> tighten lands on the same two value sets."""
        policy = self._primed(healthy_windows=1, cooldown=10.0)
        rng = random.Random(2)
        first = policy.decide(sig(30.0, partitions_active=1), rng)
        relax = policy.decide(sig(90.0), rng)
        second = policy.decide(sig(150.0, partitions_active=1), rng)
        assert relax.knobs == BASELINE
        assert second.knobs == first.knobs  # no compounding

    def test_cooldown_bounds_the_actuation_rate(self):
        policy = self._primed(healthy_windows=1, cooldown=45.0,
                              cooldown_jitter=0.0)
        rng = random.Random(3)
        assert policy.decide(sig(30.0, partitions_active=1), rng) is not None
        # Clean windows inside the cooldown cannot relax yet.
        assert policy.decide(sig(60.0), rng) is None
        # First window past the cooldown may.
        assert policy.decide(sig(80.0), rng) is not None

    def test_relax_needs_consecutive_healthy_windows(self):
        policy = self._primed(healthy_windows=3, cooldown=10.0,
                              cooldown_jitter=0.0)
        rng = random.Random(4)
        assert policy.decide(sig(30.0, partitions_active=1), rng) is not None
        assert policy.decide(sig(60.0), rng) is None   # healthy 1
        assert policy.decide(sig(90.0), rng) is None   # healthy 2
        relax = policy.decide(sig(120.0), rng)         # healthy 3
        assert relax is not None and relax.knobs == BASELINE
        assert not policy.tight

    def test_flapping_signal_cannot_flap_the_parameters(self):
        """A degraded window resets the healthy streak: no oscillation."""
        policy = self._primed(healthy_windows=3, cooldown=10.0,
                              cooldown_jitter=0.0)
        rng = random.Random(5)
        assert policy.decide(sig(30.0, partitions_active=1), rng) is not None
        actuations = 0
        for window in range(2, 40):
            # healthy, healthy, degraded, healthy, healthy, degraded, ...
            degraded = window % 3 == 0
            signals = sig(30.0 * window,
                          partitions_active=1 if degraded else 0)
            if policy.decide(signals, rng) is not None:
                actuations += 1
        assert actuations == 0  # streak never reaches 3: stays tight
        assert policy.tight

    def test_low_availability_alone_triggers_tighten(self):
        policy = self._primed()
        decision = policy.decide(sig(30.0, availability=0.5, queries=10,
                                     answers=5), random.Random(6))
        assert decision is not None
        assert "availability" in decision.reason

    def test_update_dominated_stress_flips_mode_to_pull(self):
        policy = self._primed()
        decision = policy.decide(
            sig(30.0, partitions_active=1, update_rate=2.0, query_rate=0.5),
            random.Random(7),
        )
        assert decision.mode_all == "pull"

    def test_query_dominated_stress_keeps_hybrid_mode(self):
        policy = self._primed()
        decision = policy.decide(
            sig(30.0, partitions_active=1, update_rate=0.1, query_rate=2.0),
            random.Random(8),
        )
        assert decision.mode_all is None

    def test_relax_restores_hybrid_mode(self):
        policy = self._primed(healthy_windows=1, cooldown=10.0,
                              cooldown_jitter=0.0)
        rng = random.Random(9)
        policy.decide(sig(30.0, partitions_active=1, update_rate=2.0,
                          query_rate=0.5), rng)
        relax = policy.decide(sig(90.0), rng)
        assert relax.mode_all == "hybrid"


class TestDeltaTracker:
    def test_deltas_from_cumulative_totals(self):
        tracker = DeltaTracker()
        assert tracker.take("q", 10.0) == 10.0
        assert tracker.take("q", 25.0) == 15.0
        assert tracker.take("q", 25.0) == 0.0

    def test_counter_reset_yields_post_reset_total(self):
        tracker = DeltaTracker()
        tracker.take("q", 100.0)
        # Warm-up reset dropped the counter to 7: the window saw 7.
        assert tracker.take("q", 7.0) == 7.0
        assert tracker.take("q", 10.0) == 3.0

    def test_names_are_independent(self):
        tracker = DeltaTracker()
        tracker.take("a", 5.0)
        assert tracker.take("b", 2.0) == 2.0


class TestControlSignals:
    def test_degraded_composite(self):
        assert sig(0.0, partitions_active=1).degraded
        assert sig(0.0, crashes=1).degraded
        assert not sig(0.0).degraded


class TestCheckerActuationTimeline:
    """Knowledge-relative Δ contracts re-evaluated at actuation boundaries."""

    def _actuation(self, time, value, knob="ttp"):
        return ControllerActuated(time=time, policy="hysteresis",
                                  knob=knob, value=value, reason="test")

    def test_lowering_delta_never_retroactively_violates(self):
        # Knowledge delivered at t=10 under Δ=60; the controller lowers
        # Δ to 5 at t=50.  A stale serve at t=60 (lag 50 <= 60) opened
        # under the old bound and must stay legal.
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            InvalidationReceived(time=10.0, node=2, item=0, version=1),
            self._actuation(50.0, 5.0),
            ReadServed(time=60.0, node=2, item=0, version=0, level="delta"),
        ], delta=60.0)
        assert report.ok

    def test_new_knowledge_held_to_the_lowered_bound(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            self._actuation(50.0, 5.0),
            # Delivered well after the actuation drained the old windows:
            InvalidationReceived(time=200.0, node=2, item=0, version=1),
            ReadServed(time=230.0, node=2, item=0, version=0, level="delta"),
        ], delta=60.0)
        assert not report.ok
        assert report.by_invariant() == {"delta": 1}

    def test_raising_delta_applies_immediately(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            self._actuation(5.0, 500.0),
            InvalidationReceived(time=10.0, node=2, item=0, version=1),
            ReadServed(time=300.0, node=2, item=0, version=0, level="delta"),
        ], delta=60.0)
        assert report.ok

    def test_non_delta_knobs_do_not_move_the_timeline(self):
        report = check_events([
            SourceUpdate(time=0.0, node=0, item=0, version=1),
            self._actuation(5.0, 500.0, knob="ttr"),
            InvalidationReceived(time=10.0, node=2, item=0, version=1),
            ReadServed(time=300.0, node=2, item=0, version=0, level="delta"),
        ], delta=60.0)
        assert not report.ok  # ttr actuations leave Δ at 60


def _chaos_config(controller=None, seed=7, **overrides):
    from repro.experiments.config import SimulationConfig
    from repro.faults import FaultPlan
    from pathlib import Path

    plan = FaultPlan.load(
        Path(__file__).parent.parent / "examples" / "faults" / "partition.json"
    )
    return SimulationConfig(
        n_peers=20, terrain_width=1000.0, terrain_height=1000.0,
        sim_time=180.0, warmup=60.0, seed=seed, faults=plan,
        controller=controller, **overrides,
    )


def _traced_run(config, spec="rpcc-sc"):
    from repro.experiments.runner import build_simulation

    bus = TraceBus()
    sink = bus.add_sink(ListSink())
    simulation = build_simulation(config, spec, "standard", trace=bus)
    result = simulation.run()
    bus.close()
    return simulation, result, sink.events


class TestOnlineControllerIntegration:
    def test_hysteresis_actuates_under_partition_chaos(self):
        simulation, result, events = _traced_run(_chaos_config("hysteresis"))
        controller = simulation.controller
        assert controller is not None
        assert controller.samples_taken > 0
        assert result.control_decisions  # the partition forced a tighten
        sampled = [e for e in events if isinstance(e, ControllerSampled)]
        actuated = [e for e in events if isinstance(e, ControllerActuated)]
        assert len(sampled) == controller.samples_taken
        assert actuated
        assert all(e.policy == "hysteresis" for e in actuated)
        # Every applied decision surfaced as one event per knob.
        knob_events = [e for e in actuated if e.knob != "dissemination_mode"]
        assert len(knob_events) == sum(
            len(d["applied"]) for d in result.control_decisions
        )

    def test_actuated_run_stays_violation_free(self):
        config = _chaos_config("hysteresis")
        _, _, events = _traced_run(config)
        report = InvariantChecker(delta=config.ttp).feed_all(events).finish()
        assert report.ok, report.format()

    def test_static_controller_samples_but_never_actuates(self):
        simulation, result, events = _traced_run(_chaos_config("static"))
        assert simulation.controller.samples_taken > 0
        assert result.control_decisions == []
        assert not [e for e in events if isinstance(e, ControllerActuated)]

    def test_controller_decisions_are_deterministic(self):
        _, first, _ = _traced_run(_chaos_config("hysteresis"))
        _, second, _ = _traced_run(_chaos_config("hysteresis"))
        assert first.control_decisions == second.control_decisions

    def test_no_controller_runs_have_no_decisions(self):
        _, result, _ = _traced_run(_chaos_config(None))
        assert result.control_decisions == []


class TestActuationSeams:
    """apply_control changes future behaviour only, and reports changes."""

    def _rpcc(self, controller="hysteresis"):
        from repro.experiments.runner import build_simulation

        return build_simulation(_chaos_config(controller), "rpcc-sc", "standard")

    def test_rpcc_knob_baseline_matches_config(self):
        simulation = self._rpcc()
        knobs = simulation.strategy.control_knobs()
        config = simulation.strategy.config
        assert knobs["ttr"] == config.ttr
        assert knobs["ttp"] == config.ttp
        assert knobs["poll_timeout"] == config.poll_timeout
        assert knobs["relay_boost"] == 1.0

    def test_apply_control_reports_only_real_changes(self):
        simulation = self._rpcc()
        strategy = simulation.strategy
        before = strategy.control_knobs()
        decision = ControlDecision(
            time=0.0, policy="test", reason="t",
            knobs={"ttr": before["ttr"], "poll_timeout": before["poll_timeout"] / 2,
                   "unknown_knob": 3.0},
        )
        applied = strategy.apply_control(decision)
        assert "ttr" not in applied          # unchanged -> not reported
        assert "unknown_knob" not in applied  # not a seam this strategy owns
        assert applied["poll_timeout"] == before["poll_timeout"] / 2
        assert strategy.control_knobs()["poll_timeout"] == before["poll_timeout"] / 2

    def test_ttp_actuation_moves_the_checker_delta_seam(self):
        simulation = self._rpcc()
        strategy = simulation.strategy
        target = strategy.config.ttp / 2
        strategy.apply_control(ControlDecision(
            time=0.0, policy="test", reason="t", knobs={"ttp": target},
        ))
        assert strategy.context.delta == target

    def test_relay_boost_widens_the_eligibility_gates(self):
        simulation = self._rpcc()
        strategy = simulation.strategy
        base = strategy._base_thresholds
        strategy.apply_control(ControlDecision(
            time=0.0, policy="test", reason="t", knobs={"relay_boost": 2.0},
        ))
        boosted = strategy.config.thresholds
        assert boosted.mu_car == min(1.0, base.mu_car * 2.0)
        assert boosted.mu_cs == pytest.approx(base.mu_cs / 2.0)
        assert boosted.mu_ce == pytest.approx(base.mu_ce / 2.0)
        # Relaxing back to 1.0 restores the exact base thresholds.
        strategy.apply_control(ControlDecision(
            time=0.0, policy="test", reason="t", knobs={"relay_boost": 1.0},
        ))
        assert strategy.config.thresholds == base

    def test_mode_actuation_counts_changes(self):
        simulation = self._rpcc()
        strategy = simulation.strategy
        items = list(simulation.catalog.item_ids)
        decision = ControlDecision(
            time=0.0, policy="test", reason="t",
            modes={items[0]: "pull", items[1]: "push", items[2]: "hybrid"},
        )
        applied = strategy.apply_control(decision)
        assert applied["_modes"] == 2  # hybrid was already the default
        assert strategy.dissemination_mode(items[0]) == "pull"
        assert strategy.dissemination_mode(items[1]) == "push"
        assert strategy.dissemination_mode(items[2]) == "hybrid"
