"""Unit tests for the simple pull baseline."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.pull import PullStrategy
from repro.errors import ProtocolError

from tests.conftest import line_positions, make_world


def pull_world(count=4, ttl=8, poll_timeout=2.0, max_attempts=2):
    return make_world(
        line_positions(count),
        lambda ctx: PullStrategy(
            ctx, ttl=ttl, poll_timeout=poll_timeout, max_poll_attempts=max_attempts
        ),
    )


class TestPolling:
    def test_fresh_copy_confirmed(self):
        world = pull_world()
        world.give_copy(0, 1)
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered
        assert record.served_version == 0
        assert world.metrics.staleness.violations() == 0

    def test_stale_copy_refreshed(self):
        world = pull_world()
        world.give_copy(0, 1, version=0)
        world.update_item(1)
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered
        assert record.served_version == 1
        assert world.host(0).store.peek(1).version == 1

    def test_poll_is_flooded(self):
        world = pull_world()
        world.give_copy(0, 1)
        world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(5.0)
        polls = world.metrics.traffic.by_type()["PullPoll"]
        assert polls.transmissions >= 3  # reaches beyond the source

    def test_latency_is_round_trip_not_interval(self):
        world = pull_world()
        world.give_copy(0, 3)
        record = world.agent(0).local_query(3, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered
        assert record.latency < 1.0

    def test_every_query_polls(self):
        world = pull_world()
        world.give_copy(0, 1)
        for _ in range(3):
            world.agent(0).local_query(1, ConsistencyLevel.STRONG)
            world.run(5.0)
        assert world.metrics.traffic.messages("PullPoll") == 3

    def test_weak_level_still_polls(self):
        # The simple baselines provide a single consistency behaviour.
        world = pull_world()
        world.give_copy(0, 1)
        world.agent(0).local_query(1, ConsistencyLevel.WEAK)
        assert world.metrics.traffic.messages("PullPoll") == 1


class TestFailureHandling:
    def test_source_unreachable_serves_stale(self):
        world = pull_world(count=2, poll_timeout=1.0)
        world.give_copy(1, 0, version=0)
        world.update_item(0)
        world.host(0).set_online(False)
        record = world.agent(1).local_query(0, ConsistencyLevel.STRONG)
        world.run(30.0)
        assert record.answered
        assert record.served_version == 0
        assert world.metrics.counter("pull_fallback_stale") == 1
        assert world.metrics.counter("pull_retry") == 1

    def test_source_beyond_ttl_unreachable(self):
        world = pull_world(count=6, ttl=2, poll_timeout=1.0)
        world.give_copy(0, 5, version=0)
        record = world.agent(0).local_query(5, ConsistencyLevel.STRONG)
        world.run(30.0)
        # Poll flood (TTL 2) never reaches source 5 hops away -> stale serve.
        assert record.answered
        assert world.metrics.counter("pull_fallback_stale") == 1

    def test_copy_lost_while_polling(self):
        world = pull_world(count=2, poll_timeout=1.0)
        world.give_copy(1, 0)
        world.host(0).set_online(False)
        record = world.agent(1).local_query(0, ConsistencyLevel.STRONG)
        world.host(1).store.discard(0)
        world.run(30.0)
        assert not record.answered
        assert world.metrics.counter("pull_copy_lost") == 1

    def test_non_source_nodes_ignore_polls(self):
        world = pull_world()
        world.give_copy(0, 2)
        world.give_copy(1, 2)  # bystander holder must not reply
        record = world.agent(0).local_query(2, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered
        replies = world.metrics.traffic.messages("PullReply")
        assert replies == 1  # only the source replied


class TestValidation:
    def test_parameters_validated(self):
        world = pull_world()
        with pytest.raises(ProtocolError):
            PullStrategy(world.context, ttl=0)
        with pytest.raises(ProtocolError):
            PullStrategy(world.context, poll_timeout=0.0)
        with pytest.raises(ProtocolError):
            PullStrategy(world.context, max_poll_attempts=0)

    def test_remote_query_timeout_covers_retries(self):
        world = pull_world(poll_timeout=2.0, max_attempts=2)
        assert world.strategy.remote_query_timeout() >= 4.0
