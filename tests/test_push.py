"""Unit tests for the simple push baseline."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.push import PushStrategy

from tests.conftest import line_positions, make_world


def push_world(ttn=100.0, ttl=8, wait_factor=2.5, count=4):
    return make_world(
        line_positions(count),
        lambda ctx: PushStrategy(ctx, ttn=ttn, ttl=ttl, wait_factor=wait_factor),
    )


class TestSourceReports:
    def test_reports_flood_periodically(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.run(350.0)
        reports = world.metrics.traffic.by_type().get("PushInvalidation")
        assert reports is not None
        # 4 sources x 3 intervals, each actually flooded
        assert reports.messages >= 8

    def test_offline_source_skips_report(self):
        world = push_world(ttn=100.0, count=2)
        world.host(0).set_online(False)
        world.strategy.start()
        world.run(350.0)
        senders = {
            r.sender for r in []  # placeholder: check via traffic by type below
        }
        reports = world.metrics.traffic.by_type().get("PushInvalidation")
        # Only host 1 floods (host 0 offline): 3 intervals -> 3 messages.
        assert reports.messages == 3

    def test_stop_halts_reports(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.run(150.0)
        world.strategy.stop()
        before = world.metrics.traffic.messages("PushInvalidation")
        world.run(500.0)
        assert world.metrics.traffic.messages("PushInvalidation") == before


class TestQueryWaiting:
    def test_query_waits_for_next_report(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.give_copy(0, 1)
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        assert not record.answered  # must wait for the report
        world.run(200.0)
        assert record.answered
        assert record.latency > 0.0
        assert record.latency <= 110.0

    def test_fresh_copy_confirmed_by_report(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.give_copy(0, 1)
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(200.0)
        assert record.served_version == 0
        assert world.metrics.staleness.violations() == 0

    def test_stale_copy_refreshed_from_source(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.give_copy(0, 1, version=0)
        world.update_item(1)  # master v1
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(200.0)
        assert record.answered
        assert record.served_version == 1
        assert world.host(0).store.peek(1).version == 1

    def test_multiple_waiters_drain_together(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.give_copy(0, 1)
        world.update_item(1)
        records = [
            world.agent(0).local_query(1, ConsistencyLevel.STRONG)
            for _ in range(3)
        ]
        world.run(200.0)
        assert all(record.answered for record in records)
        assert all(record.served_version == 1 for record in records)

    def test_giveup_serves_stale_when_source_unreachable(self):
        world = push_world(ttn=100.0, wait_factor=1.5, count=2)
        world.strategy.start()
        world.give_copy(1, 0, version=0)
        world.update_item(0)
        world.host(0).set_online(False)  # source gone
        record = world.agent(1).local_query(0, ConsistencyLevel.STRONG)
        world.run(400.0)
        assert record.answered
        assert record.served_version == 0  # stale fallback
        assert world.metrics.counter("push_fallback_stale") == 1

    def test_remote_query_timeout_covers_wait(self):
        world = push_world(ttn=100.0, wait_factor=2.0)
        assert world.strategy.remote_query_timeout() > 200.0

    def test_remote_query_answered_after_holder_wait(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.give_copy(1, 3)
        record = world.agent(0).local_query(3, ConsistencyLevel.STRONG)
        world.run(250.0)
        assert record.answered

    def test_waiting_count_introspection(self):
        world = push_world(ttn=100.0)
        world.strategy.start()
        world.give_copy(0, 1)
        world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        assert world.agent(0).waiting_count(1) == 1


class TestValidation:
    def test_parameters_validated(self):
        from repro.errors import ProtocolError

        world = push_world()
        with pytest.raises(ProtocolError):
            PushStrategy(world.context, ttn=0.0)
        with pytest.raises(ProtocolError):
            PushStrategy(world.context, ttl=0)
