"""Behavioural and property tests for the new replacement policies.

The three PR-8 policies (ttl-value, size-utility, lru-k) ride behind the
uniform :class:`~repro.cache.replacement.CachePolicy` interface; these
tests pin the properties the catalog relies on: LRU-K degenerates to
exact LRU at K=1, the utility policy never thrashes a just-admitted
copy, and the TTL-aware policy sends lapsed copies out first.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.item import CachedCopy
from repro.cache.replacement import (
    LRUKPolicy,
    LRUPolicy,
    SizeUtilityPolicy,
    TTLValuePolicy,
    make_policy,
)
from repro.cache.store import CacheStore
from repro.errors import CacheError

# A workload step: (item id, is_get).  Puts insert a fresh copy; gets
# touch it if resident.  Timestamps strictly increase one per step.
_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.booleans()),
    max_size=80,
)


def _drive(store: CacheStore, ops):
    """Replay an op sequence; returns the eviction sequence."""
    evictions = []
    now = 0.0
    for item, is_get in ops:
        now += 1.0
        if is_get:
            store.get(item, now)
        else:
            evicted = store.put(CachedCopy(item, 0, 1024 + item, now))
            evictions.append(evicted)
    return evictions


class TestLRUK:
    @given(_ops)
    def test_k1_is_exactly_lru(self, ops):
        lru = CacheStore(3, policy=LRUPolicy())
        lruk = CacheStore(3, policy=LRUKPolicy(k=1))
        assert _drive(lru, ops) == _drive(lruk, ops)
        assert sorted(lru.item_ids) == sorted(lruk.item_ids)

    def test_k2_prefers_single_access_items(self):
        # Items 1 and 2 each get a second access; item 3 never does, so
        # its backward-2 distance is -inf and it is the K=2 victim even
        # though it is the most recently used copy.
        store = CacheStore(3, policy=LRUKPolicy(k=2))
        for item, t in ((1, 1.0), (2, 2.0), (3, 3.0)):
            store.put(CachedCopy(item, 0, 1024, t))
        store.get(1, 4.0)
        store.get(2, 5.0)
        store.get(3, 6.0)  # only its first re-access: history len 2 now
        store.get(1, 7.0)
        assert store.put(CachedCopy(4, 0, 1024, 8.0)) == 2

    def test_history_capped_and_cleared(self):
        policy = LRUKPolicy(k=2)
        store = CacheStore(2, policy=policy)
        store.put(CachedCopy(1, 0, 1024, 1.0))
        for t in range(2, 8):
            store.get(1, float(t))
        assert len(policy._history[1]) == 2
        store.discard(1)
        assert 1 not in policy._history

    def test_k_validated(self):
        with pytest.raises(CacheError):
            LRUKPolicy(k=0)


class TestSizeUtility:
    @given(_ops)
    def test_never_evicts_the_just_admitted_copy(self, ops):
        store = CacheStore(3, policy=SizeUtilityPolicy())
        last_admitted = None
        now = 0.0
        for item, is_get in ops:
            now += 1.0
            if is_get:
                store.get(item, now)
                continue
            evicted = store.put(CachedCopy(item, 0, 1024 + 512 * item, now))
            if evicted is not None and last_admitted in store:
                assert evicted != last_admitted
            last_admitted = item

    def test_large_cold_copy_goes_first(self):
        store = CacheStore(3, policy=SizeUtilityPolicy())
        store.put(CachedCopy(1, 0, 100, 1.0))
        store.put(CachedCopy(2, 0, 100_000, 2.0))  # big, never accessed
        store.put(CachedCopy(3, 0, 100, 3.0))
        store.get(1, 4.0)
        assert store.put(CachedCopy(4, 0, 100, 5.0)) == 2

    def test_sole_resident_is_still_evictable(self):
        store = CacheStore(1, policy=SizeUtilityPolicy())
        store.put(CachedCopy(1, 0, 100, 1.0))
        assert store.put(CachedCopy(2, 0, 100, 2.0)) == 1


class TestTTLValue:
    def test_lapsed_copies_go_first(self):
        # Item 1 is popular but fetched long ago (freshness lapsed =>
        # value 0); item 2 is unpopular but fresh.  1 is the victim.
        store = CacheStore(2, policy=TTLValuePolicy(ttl=10.0))
        store.put(CachedCopy(1, 0, 1024, 0.0))
        store.put(CachedCopy(2, 0, 1024, 95.0))
        for t in (1.0, 2.0, 3.0):
            store.get(1, t)
        store.get(1, 99.0)  # recent touch does not refresh fetched_at
        assert store.put(CachedCopy(3, 0, 1024, 100.0)) == 1

    def test_among_fresh_popularity_wins(self):
        store = CacheStore(2, policy=TTLValuePolicy(ttl=1000.0))
        store.put(CachedCopy(1, 0, 1024, 0.0))
        store.put(CachedCopy(2, 0, 1024, 1.0))
        store.get(1, 2.0)
        assert store.put(CachedCopy(3, 0, 1024, 3.0)) == 2

    def test_clock_wiring(self):
        ticks = [50.0]
        policy = TTLValuePolicy(ttl=10.0, clock=lambda: ticks[0])
        store = CacheStore(2, policy=policy)
        store.put(CachedCopy(1, 0, 1024, 45.0))  # fresh until 55
        store.put(CachedCopy(2, 0, 1024, 30.0))  # lapsed at 40
        assert store.put(CachedCopy(3, 0, 1024, 50.0)) == 2

    def test_ttl_validated(self):
        with pytest.raises(CacheError):
            TTLValuePolicy(ttl=0.0)


class TestMakePolicy:
    def test_context_is_filtered_per_constructor(self):
        clock = lambda: 7.0
        ttl = make_policy("ttl-value", ttl=60.0, clock=clock, k=5)
        assert ttl.ttl == 60.0 and ttl.clock is clock
        lruk = make_policy("lru-k", ttl=60.0, clock=clock, k=3)
        assert lruk.k == 3
        # Stateless policies ignore the whole context.
        assert isinstance(make_policy("lru", ttl=60.0, clock=clock), LRUPolicy)

    def test_unknown_policy_is_cache_error(self):
        with pytest.raises(CacheError, match="ttl-value"):
            make_policy("arc")

    def test_policies_run_end_to_end(self):
        """Every registered policy drives a full (tiny) simulation."""
        from repro.cache.replacement import POLICIES
        from repro.experiments.config import SimulationConfig
        from repro.experiments.runner import run_simulation

        for name in POLICIES.names():
            config = SimulationConfig(
                n_peers=8, sim_time=20.0, warmup=0.0, cache_num=2,
                replacement_policy=name,
            )
            result = run_simulation(config, "pull")
            assert result.summary.queries_issued > 0, name
