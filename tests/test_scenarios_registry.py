"""Registry and scenario-spec behaviour: discovery, errors, round-trips.

The listing tests are deliberate *snapshots*: adding (or losing) a
registered scenario, policy or strategy must show up as a diff here, not
silently widen or shrink the sweep surface.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.faults import FaultPlan, Partition
from repro.scenarios.registry import (
    POLICIES,
    SCENARIOS,
    STRATEGIES,
    Registry,
    register_scenario,
)
from repro.scenarios.spec import BASE_SCENARIOS, ScenarioSpec


class TestRegistrySnapshots:
    """The discovery surface, pinned exactly."""

    def test_policy_listing(self):
        assert POLICIES.names() == [
            "fifo", "lfu", "lru", "lru-k", "size-utility", "ttl-value",
        ]

    def test_scenario_listing(self):
        assert SCENARIOS.names() == [
            "campus-partition", "flash-crowd", "highway-strip",
            "multi-source", "trace-replay", "urban-grid",
        ]

    def test_strategy_listing(self):
        assert STRATEGIES.names() == ["pull", "push", "rpcc"]

    def test_every_scenario_has_a_description(self):
        for name in SCENARIOS:
            assert SCENARIOS.get(name).description, name

    def test_len_and_contains(self):
        assert len(SCENARIOS) == 6
        assert "urban-grid" in SCENARIOS
        assert "URBAN-GRID" in SCENARIOS  # case-insensitive lookup
        assert "atlantis" not in SCENARIOS
        assert 42 not in SCENARIOS


class TestRegistryBehaviour:
    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="urban-grid"):
            SCENARIOS.get("no-such-scenario")

    def test_duplicate_name_rejected(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            registry.register("a", 2)

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_scenario(ScenarioSpec(name="urban-grid"))

    def test_blank_name_rejected(self):
        registry = Registry("thing")
        with pytest.raises(ConfigurationError):
            registry.register("   ", 1)
        with pytest.raises(ConfigurationError):
            registry.register(None, 1)

    def test_non_string_lookup_rejected(self):
        with pytest.raises(ConfigurationError):
            POLICIES.get(3)

    def test_decorator_form(self):
        registry = Registry("thing")

        @registry.register("dec")
        def entry():
            return "hi"

        assert registry.get("dec") is entry
        assert registry.items() == [("dec", entry)]

    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
            ).filter(lambda s: s.strip()),
            st.integers(),
            min_size=1,
            max_size=8,
        )
    )
    def test_register_then_get_round_trips(self, entries):
        registry = Registry("thing")
        for name, value in entries.items():
            registry.register(name, value)
        for name, value in entries.items():
            assert registry.get(name) == value
            assert registry.get(name.upper()) == value
        assert registry.names() == sorted(n.lower() for n in entries)


# Hypothesis strategy for JSON-scalar override values.
_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
_identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=15
).filter(str.isidentifier)


class TestScenarioSpec:
    def test_configure_applies_overrides(self):
        spec = ScenarioSpec(name="t", overrides={"n_peers": 12, "cache_num": 3})
        config = spec.configure(SimulationConfig())
        assert (config.n_peers, config.cache_num) == (12, 3)

    def test_configure_rejects_unknown_field(self):
        spec = ScenarioSpec(name="t", overrides={"n_prs": 12})
        with pytest.raises(ConfigurationError, match="n_prs"):
            spec.configure(SimulationConfig())

    def test_base_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="t", base="sideways")
        for base in BASE_SCENARIOS:
            assert ScenarioSpec(name="t", base=base).base == base

    def test_faults_round_trip(self):
        plan = FaultPlan(
            faults=(
                Partition(start=70.0, duration=30.0, mode="spatial",
                          axis="x", frac=0.5, name="cut"),
            )
        )
        spec = ScenarioSpec(name="t", faults=plan)
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.faults == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="flavor"):
            ScenarioSpec.from_dict({"name": "t", "flavor": "mint"})

    def test_catalog_presets_round_trip_bit_identically(self):
        for name in SCENARIOS.names():
            spec = SCENARIOS.get(name)
            blob = spec.to_json()
            again = ScenarioSpec.from_json(blob)
            assert again == spec, name
            assert again.to_json() == blob, name

    @given(
        name=st.text(min_size=1, max_size=20).filter(lambda s: s.strip()),
        description=st.text(max_size=40),
        base=st.sampled_from(BASE_SCENARIOS),
        overrides=st.dictionaries(_identifiers, _scalars, max_size=6),
    )
    def test_json_round_trip_is_bit_identical(self, name, description, base, overrides):
        spec = ScenarioSpec(
            name=name, description=description, base=base, overrides=overrides
        )
        blob = spec.to_json()
        again = ScenarioSpec.from_json(blob)
        assert again == spec
        # Bit-identity, not just equality: re-serialising reproduces the
        # exact bytes, so specs are safe content-address inputs.
        assert again.to_json() == blob
        assert json.loads(blob)["name"] == name

    def test_expand_returns_placement(self):
        spec = SCENARIOS.get("multi-source")
        config, placement = spec.expand(SimulationConfig())
        assert placement == "hot_set"
        assert config.hot_set_size == 4
