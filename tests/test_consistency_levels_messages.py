"""Unit tests for consistency levels and the protocol message set."""

import pytest

from repro.consistency.levels import ConsistencyLevel, parse_level
from repro.consistency.messages import (
    CONTROL_SIZE,
    Apply,
    FetchReply,
    Invalidation,
    Poll,
    PollAckA,
    PollAckB,
    PollHold,
    PullReply,
    QueryReply,
    QueryRequest,
    SendNew,
    Update,
    next_fetch_id,
    next_poll_id,
    next_request_id,
)
from repro.errors import ConfigurationError


class TestLevels:
    def test_labels(self):
        assert ConsistencyLevel.STRONG.label == "strong"
        assert ConsistencyLevel.DELTA.label == "delta"
        assert ConsistencyLevel.WEAK.label == "weak"

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("strong", ConsistencyLevel.STRONG),
            ("SC", ConsistencyLevel.STRONG),
            ("delta", ConsistencyLevel.DELTA),
            ("dc", ConsistencyLevel.DELTA),
            (" weak ", ConsistencyLevel.WEAK),
            ("WC", ConsistencyLevel.WEAK),
        ],
    )
    def test_parse_aliases(self, alias, expected):
        assert parse_level(alias) is expected

    def test_parse_passthrough(self):
        assert parse_level(ConsistencyLevel.DELTA) is ConsistencyLevel.DELTA

    def test_parse_unknown(self):
        with pytest.raises(ConfigurationError):
            parse_level("eventual")

    def test_str(self):
        assert str(ConsistencyLevel.STRONG) == "strong"


class TestMessageSizes:
    def test_control_messages_are_small(self):
        for msg in (
            Invalidation(sender=1, item_id=2, version=3),
            Apply(sender=1, item_id=2),
            Poll(sender=1, item_id=2, version=3, poll_id=4),
            PollAckA(sender=1, item_id=2, version=3, poll_id=4),
            PollHold(sender=1, item_id=2, poll_id=4),
            QueryRequest(sender=1, item_id=2, request_id=3),
        ):
            assert msg.size_bytes == CONTROL_SIZE

    def test_content_messages_add_payload(self):
        for msg in (
            Update(sender=1, item_id=2, version=3, content_size=1024),
            SendNew(sender=1, item_id=2, version=3, content_size=1024),
            PollAckB(sender=1, item_id=2, version=3, poll_id=4, content_size=1024),
            QueryReply(sender=1, item_id=2, version=3, request_id=4, content_size=1024),
            FetchReply(sender=1, item_id=2, version=3, fetch_id=4, content_size=1024),
        ):
            assert msg.size_bytes == CONTROL_SIZE + 1024

    def test_pull_reply_size_depends_on_freshness(self):
        fresh = PullReply(sender=1, item_id=2, version=3, poll_id=4,
                          up_to_date=True, content_size=1024)
        stale = PullReply(sender=1, item_id=2, version=3, poll_id=4,
                          up_to_date=False, content_size=1024)
        assert fresh.size_bytes == CONTROL_SIZE
        assert stale.size_bytes == CONTROL_SIZE + 1024

    def test_type_names(self):
        assert Invalidation(sender=1).type_name == "Invalidation"
        assert PollAckB(sender=1).type_name == "PollAckB"


class TestIdGenerators:
    def test_poll_ids_increase(self):
        assert next_poll_id() < next_poll_id()

    def test_fetch_ids_increase(self):
        assert next_fetch_id() < next_fetch_id()

    def test_request_ids_increase(self):
        assert next_request_id() < next_request_id()
