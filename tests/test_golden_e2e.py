"""Golden end-to-end regression digests for the seeded strategy matrix.

Each (spec, seed) cell runs a short traced simulation and is reduced to
a *digest*: the integer metrics, rounded float metrics and per-event-type
trace counts.  Digests are compared against ``tests/golden/digests.json``
— any behavioural drift in the engine, the network, a protocol, or the
trace instrumentation shows up as a digest mismatch here before it can
silently corrupt a figure.

Digests deliberately contain **no** ids (query/poll/message/fetch ids
come from process-global counters and depend on test execution order)
and no wall-clock fields.  Regenerate after an intentional behaviour
change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_e2e.py

and commit the refreshed ``digests.json`` alongside the change.

Every run is also replayed through the invariant checker: the golden
matrix doubles as the "checker passes seeded e2e runs of all strategies
and levels" acceptance gate.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.obs import InvariantChecker, ListSink, TraceBus

GOLDEN_PATH = Path(__file__).parent / "golden" / "digests.json"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))

SPECS = ("push", "pull", "rpcc-sc", "rpcc-dc", "rpcc-wc")
SEEDS = (7, 11)
MATRIX = [(spec, seed) for spec in SPECS for seed in SEEDS]

_INT_METRICS = (
    "transmissions", "messages", "bytes_on_air",
    "queries_issued", "queries_answered", "queries_unanswered",
)
_FLOAT_METRICS = (
    "mean_latency", "mean_hit_latency", "p95_latency",
    "local_answer_ratio", "stale_ratio", "violation_ratio",
    "mean_staleness_age",
)


def _config(seed: int) -> SimulationConfig:
    return SimulationConfig(
        n_peers=20,
        terrain_width=1000.0,
        terrain_height=1000.0,
        sim_time=180.0,
        warmup=60.0,
        seed=seed,
    )


def _run_cell(spec: str, seed: int):
    bus = TraceBus()
    sink = bus.add_sink(ListSink())
    result = build_simulation(_config(seed), spec, "standard", trace=bus).run()
    bus.close()
    return result, sink.events


def _digest(result, events) -> dict:
    summary = result.summary
    digest = {name: getattr(summary, name) for name in _INT_METRICS}
    digest.update({
        name: round(getattr(summary, name), 6) for name in _FLOAT_METRICS
    })
    digest["counters"] = dict(sorted(summary.counters.items()))
    digest["transmissions_by_type"] = dict(
        sorted(summary.transmissions_by_type.items())
    )
    digest["total_queries"] = result.total_queries
    digest["total_updates"] = result.total_updates
    digest["events"] = dict(sorted(Counter(e.etype for e in events).items()))
    return digest


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def _store_golden(key: str, digest: dict) -> None:
    golden = _load_golden()
    golden[key] = digest
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("spec,seed", MATRIX, ids=[f"{s}-s{d}" for s, d in MATRIX])
def test_golden_digest(spec, seed):
    result, events = _run_cell(spec, seed)
    digest = _digest(result, events)

    # The invariant gate rides along on every golden run.
    report = InvariantChecker(delta=result.config.ttp).feed_all(events).finish()
    assert report.ok, f"{spec} seed={seed}:\n{report.format()}"
    assert report.reads_checked > 0  # the pass is not vacuous

    key = f"{spec}-seed{seed}"
    if UPDATE:
        _store_golden(key, digest)
        pytest.skip(f"updated golden digest for {key}")
    golden = _load_golden()
    assert key in golden, (
        f"no golden digest for {key}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert digest == golden[key], (
        f"behaviour drift in {key}: digest no longer matches "
        f"tests/golden/digests.json (regenerate only if the change is intended)"
    )


def test_replay_is_bit_identical():
    """Same config, same seed, fresh build — byte-for-byte the same digest."""
    first_result, first_events = _run_cell("rpcc-sc", 7)
    second_result, second_events = _run_cell("rpcc-sc", 7)
    assert _digest(first_result, first_events) == _digest(second_result, second_events)
    # Stronger than the digest: the full timestamped event streams match.
    strip = lambda events: [
        {k: v for k, v in e.to_dict().items() if not k.endswith("_id")}
        for e in events
    ]
    assert strip(first_events) == strip(second_events)


def test_golden_digest_identical_on_both_cores(monkeypatch):
    """One golden cell rerun on each core must yield the committed digest.

    ``BUILD_MIN_NODES`` drops to 0 on the vectorized arm so the 20-peer
    golden population takes the array build path instead of the scalar
    small-graph fallback.
    """
    from repro.net import soa

    if not soa.HAVE_NUMPY:
        pytest.skip("numpy (the perf extra) is not installed")
    monkeypatch.setenv("REPRO_SOA", "1")
    monkeypatch.setattr(soa, "BUILD_MIN_NODES", 0)
    vectorized = _digest(*_run_cell("rpcc-sc", 7))
    monkeypatch.setenv("REPRO_SOA", "0")
    scalar = _digest(*_run_cell("rpcc-sc", 7))
    assert vectorized == scalar
    golden = _load_golden()
    if not UPDATE and "rpcc-sc-seed7" in golden:
        assert vectorized == golden["rpcc-sc-seed7"]


def test_golden_file_covers_the_whole_matrix():
    if UPDATE:
        pytest.skip("regenerating")
    golden = _load_golden()
    assert set(golden) == {f"{spec}-seed{seed}" for spec, seed in MATRIX}
