"""Unit tests for named deterministic random streams."""

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_similar_names_uncorrelated(self):
        # SHA-based derivation: adjacent names must not yield adjacent seeds.
        delta = abs(derive_seed(0, "node-1") - derive_seed(0, "node-2"))
        assert delta > 1_000_000


class TestRandomStreams:
    def test_same_name_same_instance(self, streams):
        assert streams.stream("x") is streams.stream("x")

    def test_different_names_different_sequences(self, streams):
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        first = [RandomStreams(7).stream("m").random() for _ in range(10)]
        second = [RandomStreams(7).stream("m").random() for _ in range(10)]
        assert first == second

    def test_new_stream_does_not_perturb_existing(self):
        registry_a = RandomStreams(3)
        stream = registry_a.stream("keep")
        first_draw = stream.random()
        registry_b = RandomStreams(3)
        registry_b.stream("other")  # extra consumer
        assert registry_b.stream("keep").random() == first_draw

    def test_spawn_namespaces(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("sub")
        child_b = parent.spawn("sub")
        assert child_a.seed == child_b.seed
        assert child_a.seed != parent.seed

    def test_contains_and_len(self, streams):
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams
        assert len(streams) == 1

    def test_seed_property(self):
        assert RandomStreams(123).seed == 123
