"""CLI coverage of the profiling flag and the topology counter footer."""

from __future__ import annotations

import pstats

import pytest

from repro.cli import build_parser, main

BASE = ["--sim-time", "120", "--warmup", "30", "--seed", "3"]


@pytest.fixture(autouse=True)
def _isolate_cache(tmp_path, monkeypatch):
    """Keep CLI result caches out of the repo during tests."""
    monkeypatch.chdir(tmp_path)


def test_run_profile_writes_loadable_pstats(tmp_path, capsys):
    out = tmp_path / "run.pstats"
    code = main(BASE + ["--no-cache", "run", "push", "--profile", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert f"-> {out}" in captured.out
    assert "events processed" in captured.out

    # The hot-spot digest goes to stderr: top functions by cumulative
    # time, without polluting the stdout summary.
    assert "cumulative" in captured.err
    assert "engine.py" in captured.err

    # Round-trip: the dump must load as pstats data and contain frames
    # from the simulation loop itself.
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0
    assert any("engine.py" in filename for filename, _, _ in stats.stats)


def test_run_profile_bypasses_result_cache(tmp_path, capsys):
    # Prime the cache, then profile the same configuration: the profiled
    # run must execute the simulation (a cache hit would profile nothing).
    assert main(BASE + ["run", "push"]) == 0
    capsys.readouterr()
    out = tmp_path / "cached.pstats"
    assert main(BASE + ["run", "push", "--profile", str(out)]) == 0
    stats = pstats.Stats(str(out))
    assert any("engine.py" in filename for filename, _, _ in stats.stats)


def test_run_footer_reports_topology_counters(capsys):
    code = main(BASE + ["--no-cache", "run", "push"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "topology:" in captured
    assert "reused" in captured
    assert "incremental" in captured
    assert "BFS trees retained" in captured


def test_run_footer_reports_which_core_ran(capsys):
    from repro.net import soa

    code = main(BASE + ["--no-cache", "run", "push"])
    assert code == 0
    captured = capsys.readouterr().out
    expected = "vectorized" if soa.soa_enabled() else "scalar"
    assert f"({expected} core)" in captured


def test_run_footer_reports_scalar_core_when_forced(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SOA", "0")
    code = main(BASE + ["--no-cache", "run", "push"])
    assert code == 0
    assert "(scalar core)" in capsys.readouterr().out


def test_parser_accepts_profile_flag():
    parser = build_parser()
    args = parser.parse_args(["run", "push", "--profile", "out.pstats"])
    assert args.profile == "out.pstats"
    args = parser.parse_args(["run", "push"])
    assert args.profile is None
