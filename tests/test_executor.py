"""Tests for the campaign executor and the content-addressed result cache.

The load-bearing property is *bit-identity*: every run is a pure function
of its ``(config, spec, scenario)`` triple, so the parallel executor and
the cache must be invisible to the science — same summaries, same series,
same relay samples, whatever the jobs count or cache state.
"""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import (
    CampaignExecutor,
    CampaignRunError,
    ResultCache,
    run_key,
)
from repro.experiments.figures.base import run_axis_sweep
from repro.experiments.runner import STRATEGY_SPECS, run_simulation
from repro.experiments.stats import run_replicated


def tiny_config(**kwargs):
    defaults = dict(
        n_peers=10,
        sim_time=120.0,
        warmup=0.0,
        seed=11,
        terrain_width=800.0,
        terrain_height=800.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def result_fingerprint(result):
    """Everything that must be identical across execution modes."""
    return (
        result.spec,
        result.scenario,
        result.config,
        result.summary,
        result.total_queries,
        result.total_updates,
        result.relay_samples,
        result.traffic_series.times,
        result.traffic_series.values,
        result.energy_consumed,
        result.mean_battery_fraction,
    )


class TestRunKey:
    def test_equal_configs_share_a_key(self):
        assert run_key(tiny_config(), "push") == run_key(tiny_config(), "push")

    def test_any_field_changes_the_key(self):
        base = run_key(tiny_config(), "push")
        assert run_key(tiny_config(seed=12), "push") != base
        assert run_key(tiny_config(cache_num=9), "push") != base
        assert run_key(tiny_config(), "pull") != base
        assert run_key(tiny_config(), "push", "single_source") != base

    def test_spec_normalised(self):
        assert run_key(tiny_config(), " PUSH ") == run_key(tiny_config(), "push")


class TestPickleRoundTrip:
    def test_config_roundtrip(self):
        config = tiny_config(zipf_theta=0.8, routing="cached")
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config

    def test_result_roundtrip(self):
        result = run_simulation(tiny_config(), "rpcc-sc")
        clone = pickle.loads(pickle.dumps(result))
        assert result_fingerprint(clone) == result_fingerprint(result)


class TestBitIdentity:
    def test_parallel_matches_serial_for_every_spec(self):
        tasks = [(tiny_config(), spec, "standard") for spec in STRATEGY_SPECS]
        serial = CampaignExecutor(jobs=1).run_many(tasks)
        parallel = CampaignExecutor(jobs=2).run_many(tasks)
        for spec, left, right in zip(STRATEGY_SPECS, serial, parallel):
            assert result_fingerprint(left) == result_fingerprint(right), spec

    def test_parallel_campaign_matches_serial(self):
        tasks = [
            (tiny_config(seed=seed), spec, "standard")
            for seed in (11, 12)
            for spec in ("push", "pull")
        ]
        serial = CampaignExecutor(jobs=1).run_many(tasks)
        parallel = CampaignExecutor(jobs=3).run_many(tasks)
        for left, right in zip(serial, parallel):
            assert result_fingerprint(left) == result_fingerprint(right)

    def test_run_replicated_through_parallel_executor(self):
        serial = run_replicated(tiny_config(), "push", seeds=(1, 2))
        parallel = run_replicated(
            tiny_config(), "push", seeds=(1, 2),
            executor=CampaignExecutor(jobs=2),
        )
        for left, right in zip(serial, parallel):
            assert result_fingerprint(left) == result_fingerprint(right)


class TestResultCache:
    def test_warm_rerun_does_no_simulation_work(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [(tiny_config(), spec, "standard") for spec in ("push", "pull")]
        cold = CampaignExecutor(cache=cache)
        first = cold.run_many(tasks)
        assert cold.runs_executed == 2
        assert cache.misses == 2 and cache.hits == 0

        warm = CampaignExecutor(cache=cache)
        second = warm.run_many(tasks)
        assert warm.runs_executed == 0
        assert warm.cache.hits == 2
        for left, right in zip(first, second):
            assert result_fingerprint(left) == result_fingerprint(right)

    def test_parameter_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignExecutor(cache=cache).run_one(tiny_config(), "push")
        changed = CampaignExecutor(cache=cache)
        changed.run_one(tiny_config(seed=99), "push")
        assert changed.runs_executed == 1

    def test_corrupt_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = CampaignExecutor(cache=cache)
        executor.run_one(tiny_config(), "push")
        key = run_key(tiny_config(), "push", "standard")
        cache.path_for(key).write_bytes(b"not a pickle")
        again = CampaignExecutor(cache=ResultCache(tmp_path / "cache"))
        result = again.run_one(tiny_config(), "push")
        assert again.runs_executed == 1
        assert result.summary.transmissions > 0

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignExecutor(cache=cache).run_one(tiny_config(), "push")
        key = run_key(tiny_config(), "push", "standard")
        cache.path_for(key).write_bytes(b"not a pickle")

        reopened = ResultCache(tmp_path / "cache")
        assert reopened.get(key) is None
        # The bad bytes are preserved for post-mortem, off the hot path.
        assert not cache.path_for(key).exists()
        quarantined = reopened.quarantine_path_for(key)
        assert quarantined.read_bytes() == b"not a pickle"
        assert reopened.corrupt == 1
        assert reopened.cache_stats == {
            "hits": 0, "misses": 1, "corrupt_quarantined": 1,
        }

    def test_purge_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignExecutor(cache=cache).run_many(
            [(tiny_config(), spec, "standard") for spec in ("push", "pull")]
        )
        assert len(cache) == 2
        assert cache.purge() == 2
        assert len(cache) == 0

    def test_purge_sweeps_quarantined_entries_too(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        CampaignExecutor(cache=cache).run_one(tiny_config(), "push")
        key = run_key(tiny_config(), "push", "standard")
        cache.path_for(key).write_bytes(b"junk")
        cache.get(key)  # quarantines
        assert cache.purge() == 1
        assert list((tmp_path / "cache").iterdir()) == []


class TestExecutorSemantics:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(jobs=0)

    def test_duplicate_tasks_run_once(self):
        executor = CampaignExecutor()
        results = executor.run_many([(tiny_config(), "push", "standard")] * 3)
        assert executor.runs_executed == 1
        assert len(results) == 3
        assert results[0] is results[1] is results[2]

    def test_serial_failure_names_the_point(self):
        executor = CampaignExecutor()
        with pytest.raises(CampaignRunError) as excinfo:
            executor.run_many([
                (tiny_config(), "push", "standard"),
                (tiny_config(), "gossip", "standard"),
            ])
        error = excinfo.value
        assert error.spec == "gossip"
        assert error.config == tiny_config()
        assert "ConfigurationError" in error.worker_traceback

    def test_parallel_failure_fails_cleanly(self):
        executor = CampaignExecutor(jobs=2)
        with pytest.raises(CampaignRunError) as excinfo:
            executor.run_many([
                (tiny_config(), "push", "standard"),
                (tiny_config(), "gossip", "standard"),
                (tiny_config(), "pull", "standard"),
            ])
        assert excinfo.value.spec == "gossip"
        assert "ConfigurationError" in excinfo.value.worker_traceback


class TestAxisSweepDedup:
    def test_duplicate_axis_values_run_once(self):
        executor = CampaignExecutor()
        results = run_axis_sweep(
            tiny_config(), "cache_num", (2, 2, 4), ("push",), executor=executor
        )
        assert executor.runs_executed == 2
        assert set(results) == {("push", 2), ("push", 4)}
