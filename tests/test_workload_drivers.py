"""Tests for the update/query workload drivers wired to real hosts."""

import pytest

from repro.consistency.base import BaseAgent, ConsistencyStrategy
from repro.sim.rng import RandomStreams
from repro.workload.access import UniformAccess
from repro.workload.drivers import QueryWorkload, UpdateWorkload
from repro.workload.mix import LevelMix

from tests.conftest import line_positions, make_world


class EchoStrategy(ConsistencyStrategy):
    name = "echo"

    def make_agent(self, host):
        return EchoAgent(self, host)


class EchoAgent(BaseAgent):
    def validate_hit(self, copy, level, job):
        self.answer(job, copy.version, served_locally=True)

    def handle_protocol_message(self, message):
        raise AssertionError("unexpected protocol message")


@pytest.fixture
def world():
    return make_world(line_positions(4), EchoStrategy)


class TestUpdateWorkload:
    def test_updates_advance_master_versions(self, world):
        workload = UpdateWorkload(
            world.hosts.values(), RandomStreams(3), mean_interval=10.0
        )
        workload.start()
        world.run(300.0)
        assert workload.total_updates > 0
        total_versions = sum(
            world.catalog.master(i).version for i in range(4)
        )
        assert total_versions == workload.total_updates

    def test_stop_halts_updates(self, world):
        workload = UpdateWorkload(
            world.hosts.values(), RandomStreams(3), mean_interval=10.0
        )
        workload.start()
        world.run(100.0)
        workload.stop()
        frozen = workload.total_updates
        world.run(500.0)
        assert workload.total_updates == frozen

    def test_hosts_without_source_skipped(self, world):
        world.host(0).source_item = None
        workload = UpdateWorkload(
            world.hosts.values(), RandomStreams(3), mean_interval=10.0
        )
        assert len(workload._processes) == 3


class TestQueryWorkload:
    def make_workload(self, world, restrict=None, mean=5.0):
        return QueryWorkload(
            world.hosts.values(),
            RandomStreams(5),
            world.strategy,
            UniformAccess(world.catalog.item_ids),
            LevelMix.pure("wc"),
            mean_interval=mean,
            restrict_to_items=restrict,
        )

    def test_queries_flow_into_metrics(self, world):
        workload = self.make_workload(world)
        workload.start()
        world.run(200.0)
        assert workload.total_queries > 0
        assert world.metrics.latency.issued == workload.total_queries

    def test_queries_never_target_own_item(self, world):
        workload = self.make_workload(world)
        workload.start()
        world.run(300.0)
        for record in world.metrics.latency.records():
            assert record.item_id != record.node_id

    def test_restriction_to_single_item(self, world):
        workload = self.make_workload(world, restrict=[2])
        workload.start()
        world.run(200.0)
        records = world.metrics.latency.records()
        assert records
        assert all(record.item_id == 2 for record in records)
        # Host 2 never queries its own (the only) item.
        assert all(record.node_id != 2 for record in records)

    def test_restriction_with_no_candidates_is_silent(self, world):
        # Only item 2 allowed and only host 2 issues -> nothing happens.
        workload = QueryWorkload(
            [world.host(2)],
            RandomStreams(5),
            world.strategy,
            UniformAccess(world.catalog.item_ids),
            LevelMix.pure("wc"),
            mean_interval=5.0,
            restrict_to_items=[2],
        )
        workload.start()
        world.run(100.0)
        assert world.metrics.latency.issued == 0

    def test_stop_halts_queries(self, world):
        workload = self.make_workload(world)
        workload.start()
        world.run(50.0)
        workload.stop()
        frozen = workload.total_queries
        world.run(500.0)
        assert workload.total_queries == frozen

    def test_deterministic_streams(self):
        def issue_counts(seed):
            world = make_world(line_positions(4), EchoStrategy)
            workload = QueryWorkload(
                world.hosts.values(),
                RandomStreams(seed),
                world.strategy,
                UniformAccess(world.catalog.item_ids),
                LevelMix.hybrid(),
                mean_interval=7.0,
            )
            workload.start()
            world.run(200.0)
            return [
                (record.node_id, record.item_id, record.level)
                for record in world.metrics.latency.records()
            ]

        assert issue_counts(9) == issue_counts(9)
        assert issue_counts(9) != issue_counts(10)
