"""Behavioural tests for the RPCC protocol: promotion, push, pull, queries.

The worlds are small lines of stationary hosts so that flood reach and
hop counts are exactly predictable.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.consistency.rpcc.roles import Role

from tests.conftest import line_positions, make_eligible, make_world


def rpcc_world(count=4, **config_kwargs):
    defaults = dict(
        ttl_invalidation=3,
        ttn=100.0,
        ttr=75.0,
        ttp=200.0,
        poll_timeout=2.0,
        source_poll_timeout=2.0,
    )
    defaults.update(config_kwargs)
    config = RPCCConfig(**defaults)
    world = make_world(
        line_positions(count),
        lambda ctx: RPCCStrategy(ctx, config),
    )
    return world


def promote(world, node_id, item_id):
    """Make a node an eligible relay for an item it caches, via protocol."""
    world.give_copy(node_id, item_id)
    make_eligible(world.host(node_id))
    world.strategy.start()
    world.run(110.0)  # one invalidation interval: APPLY + APPLY_ACK
    return world.agent(node_id)


class TestPromotion:
    def test_eligible_holder_becomes_relay(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        assert agent.roles.is_relay(3)
        source_side = world.agent(3).source
        assert 1 in source_side.relay_table

    def test_ineligible_holder_stays_cache_node(self):
        world = rpcc_world()
        world.give_copy(1, 3)  # eligibility not forced
        world.strategy.start()
        world.run(250.0)
        assert world.agent(1).roles.role(3) is Role.CACHE_NODE

    def test_out_of_ttl_holder_never_hears_invalidation(self):
        world = rpcc_world(count=6, ttl_invalidation=2)
        world.give_copy(5, 0)  # five hops from source 0
        make_eligible(world.host(5))
        world.strategy.start()
        world.run(300.0)
        assert world.agent(5).roles.role(0) is Role.CACHE_NODE

    def test_promotion_counted(self):
        world = rpcc_world()
        promote(world, 1, 3)
        assert world.metrics.counter("rpcc_promotions") == 1

    def test_demotion_on_failed_coefficients(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        # Make the node unstable: next period close demotes it.
        world.host(1).tracker.record_switch()
        world.host(1).tracker.record_switch()
        world.host(1).tracker.close_period()
        agent.on_period_closed()
        assert not agent.roles.is_relay(3)
        world.run(1.0)
        assert 1 not in world.agent(3).source.relay_table  # CANCEL arrived

    def test_eviction_resigns_relay_role(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        world.host(1).store.discard(3)
        agent.on_copy_evicted(3)
        world.run(1.0)
        assert not agent.roles.is_relay(3)
        assert 1 not in world.agent(3).source.relay_table

    def test_candidate_promoted_via_update_when_ack_lost(self):
        world = rpcc_world()
        world.give_copy(1, 3)
        agent = world.agent(1)
        agent.roles.become_candidate(3)
        # Source believes 1 is a relay (ACK was lost after registration).
        world.agent(3).source.relay_table.add(1)
        world.update_item(3)
        world.strategy.start()
        world.run(110.0)  # UPDATE pushed at the TTN boundary
        assert agent.roles.is_relay(3)
        assert world.metrics.counter("rpcc_promoted_via_update") == 1

    def test_cache_node_receiving_update_cancels(self):
        world = rpcc_world()
        world.give_copy(1, 3)
        world.agent(3).source.relay_table.add(1)  # stale relay table entry
        world.update_item(3)
        world.strategy.start()
        world.run(110.0)
        assert 1 not in world.agent(3).source.relay_table


class TestPushSide:
    def test_update_pushed_to_relays_at_ttn(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.update_item(3)
        world.run(110.0)
        assert world.host(1).store.peek(3).version == 1
        assert world.metrics.traffic.messages("Update") >= 1

    def test_no_update_message_when_nothing_changed(self):
        world = rpcc_world()
        promote(world, 1, 3)
        before = world.metrics.traffic.messages("Update")
        world.run(200.0)
        assert world.metrics.traffic.messages("Update") == before

    def test_relay_ttr_renewed_by_invalidation(self):
        world = rpcc_world(ttn=100.0, ttr=75.0)
        agent = promote(world, 1, 3)
        world.run(100.0)  # another invalidation
        assert agent.relay.ttr_remaining(3) > 0

    def test_reconnected_relay_resyncs_with_get_new(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        world.host(1).set_online(False)
        world.update_item(3)
        world.run(150.0)  # misses the UPDATE push
        world.host(1).set_online(True)
        world.run(110.0)  # next INVALIDATION triggers GET_NEW/SEND_NEW
        assert world.host(1).store.peek(3).version == 1
        assert world.metrics.traffic.messages("GetNew") >= 1
        assert world.metrics.traffic.messages("SendNew") >= 1


class TestQueryHandling:
    def test_weak_answered_immediately(self):
        world = rpcc_world()
        world.give_copy(0, 2)
        record = world.agent(0).local_query(2, ConsistencyLevel.WEAK)
        assert record.answered
        assert record.latency == 0.0

    def test_delta_within_ttp_answered_immediately(self):
        world = rpcc_world()
        world.give_copy(0, 2)
        world.agent(0).cache_peer.renew_ttp(2)
        record = world.agent(0).local_query(2, ConsistencyLevel.DELTA)
        assert record.answered

    def test_delta_after_ttp_expiry_polls(self):
        world = rpcc_world(ttp=50.0)
        world.give_copy(0, 2)
        world.agent(0).cache_peer.renew_ttp(2)
        world.run(60.0)  # TTP expired
        record = world.agent(0).local_query(2, ConsistencyLevel.DELTA)
        assert not record.answered  # poll in flight
        world.run(30.0)
        assert record.answered

    def test_strong_always_polls(self):
        world = rpcc_world()
        world.give_copy(0, 2)
        world.agent(0).cache_peer.renew_ttp(2)
        record = world.agent(0).local_query(2, ConsistencyLevel.STRONG)
        assert not record.answered
        world.run(30.0)
        assert record.answered

    def test_relay_with_open_ttr_answers_any_level_locally(self):
        world = rpcc_world()
        agent = promote(world, 1, 3)
        # TTR opens at the first INVALIDATION processed *as a relay*.
        world.run(100.0)
        assert agent.relay.ttr_remaining(3) > 0
        record = agent.local_query(3, ConsistencyLevel.STRONG)
        assert record.answered
        assert record.served_locally

    def test_poll_answered_by_nearby_relay(self):
        world = rpcc_world()
        agent1 = promote(world, 1, 3)
        world.give_copy(2, 3)
        tx_before = world.metrics.traffic.messages("Poll")
        record = world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(10.0)
        assert record.answered
        assert world.metrics.traffic.messages("PollAckA") >= 1

    def test_stale_poller_gets_content_via_ack_b(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.update_item(3)
        world.run(110.0)  # relay refreshed to v1
        world.give_copy(2, 3, version=0)
        record = world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(10.0)
        assert record.answered
        assert record.served_version == 1
        assert world.host(2).store.peek(3).version == 1
        assert world.metrics.traffic.messages("PollAckB") >= 1

    def test_poller_remembers_relay_and_unicasts(self):
        world = rpcc_world()
        promote(world, 1, 3)
        world.run(100.0)  # relay TTR open
        world.give_copy(2, 3)
        world.agent(2).local_query(3, ConsistencyLevel.STRONG)
        world.run(10.0)
        # The relay (node 1), not the source, must be remembered.
        assert world.agent(2).cache_peer._known_relay.get(3) == 1

    def test_no_relay_falls_back_to_source_broadcast(self):
        # Poller 4 hops from the source: the TTL-3 poll flood cannot reach
        # it, so the TTL-8 broadcast stage must.
        world = rpcc_world(count=6)
        world.give_copy(4, 0)
        world.strategy.start()
        record = world.agent(4).local_query(0, ConsistencyLevel.STRONG)
        world.run(30.0)
        assert record.answered
        assert world.metrics.counter("rpcc_poll_fallback_source") >= 1

    def test_everything_unreachable_serves_stale(self):
        world = rpcc_world(count=2, grace_timeout=5.0)
        world.give_copy(1, 0, version=0)
        world.host(0).set_online(False)
        record = world.agent(1).local_query(0, ConsistencyLevel.STRONG)
        world.run(60.0)
        assert record.answered
        assert world.metrics.counter("rpcc_forced_stale") == 1


class TestRelayHold:
    """Geometry: line of 6; source 0, relay 1, poller 4.

    The poller's TTL-3 flood reaches the relay (3 hops) but not the
    source (4 hops), so the relay's dead-window behaviour is isolated.
    """

    def make_held_world(self, **kwargs):
        defaults = dict(ttn=100.0, ttr=10.0, count=6)
        defaults.update(kwargs)
        world = rpcc_world(**defaults)
        agent = promote(world, 1, 0)
        # Past the second INVALIDATION (t=200) and the 10 s TTR window it
        # opened: the relay is now mid dead-window until t=300.
        world.run(150.0)
        assert agent.relay.ttr_remaining(0) == 0.0
        world.give_copy(4, 0)
        return world

    def test_relay_queues_poll_and_sends_hold(self):
        world = self.make_held_world()
        record = world.agent(4).local_query(0, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert world.metrics.counter("rpcc_poll_queued_at_relay") >= 1
        assert world.metrics.counter("rpcc_poll_held") >= 1
        assert not record.answered  # waiting for the next INVALIDATION

    def test_held_poll_answered_after_invalidation(self):
        world = self.make_held_world()
        record = world.agent(4).local_query(0, ConsistencyLevel.STRONG)
        world.run(120.0)  # next INVALIDATION renews TTR and drains queue
        assert record.answered

    def test_hold_notice_disabled_escalates(self):
        world = self.make_held_world(relay_hold_notice=False)
        record = world.agent(4).local_query(0, ConsistencyLevel.STRONG)
        world.run(30.0)
        # Escalated to the TTL-8 broadcast, which reaches the source.
        assert record.answered
        assert world.metrics.counter("rpcc_poll_fallback_source") >= 1

    def test_eager_relay_refresh_answers_quickly(self):
        world = self.make_held_world(eager_relay_refresh=True)
        record = world.agent(4).local_query(0, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered  # GET_NEW/SEND_NEW round trip, no wait
