"""Unit tests for the benchmark baseline tracking and regression gate."""

import json

import pytest

from benchmarks.baseline import (
    Comparison,
    compare,
    format_comparison,
    has_regressions,
    load_baseline,
    main as baseline_main,
    save_baseline,
)
from benchmarks.run_bench import kernel_benchmarks, measure, sweep_speedups


class TestSaveLoadRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        results = {"snapshot_build_1000": 0.004, "route_burst_1000": 0.012}
        save_baseline(path, results, meta={"repeats": 5})
        assert load_baseline(path) == results

    def test_meta_recorded(self, tmp_path):
        path = tmp_path / "bench.json"
        save_baseline(path, {"a": 1.0}, meta={"repeats": 3})
        data = json.loads(path.read_text())
        assert data["meta"]["repeats"] == 3
        assert "python" in data["meta"]

    def test_results_sorted_for_stable_diffs(self, tmp_path):
        path = tmp_path / "bench.json"
        save_baseline(path, {"zeta": 1.0, "alpha": 2.0})
        names = list(json.loads(path.read_text())["results"])
        assert names == ["alpha", "zeta"]


class TestCompare:
    def test_within_threshold_is_ok(self):
        rows = compare({"a": 1.2}, {"a": 1.0}, threshold=0.30)
        assert [row.status for row in rows] == ["ok"]
        assert not has_regressions(rows)

    def test_beyond_threshold_regresses(self):
        rows = compare({"a": 1.31}, {"a": 1.0}, threshold=0.30)
        assert rows[0].status == "regressed"
        assert has_regressions(rows)

    def test_symmetric_speedup_reported_as_improved(self):
        rows = compare({"a": 0.5}, {"a": 1.0}, threshold=0.30)
        assert rows[0].status == "improved"
        assert not has_regressions(rows)

    def test_new_and_missing_benchmarks_never_fail(self):
        rows = compare({"new_bench": 1.0}, {"old_bench": 1.0})
        statuses = {row.name: row.status for row in rows}
        assert statuses == {"new_bench": "new", "old_bench": "missing"}
        assert not has_regressions(rows)

    def test_ratio(self):
        row = compare({"a": 2.0}, {"a": 1.0})[0]
        assert row.ratio == pytest.approx(2.0)
        assert Comparison("b", None, 1.0, "new").ratio is None

    def test_format_mentions_every_row(self):
        rows = compare({"a": 1.5, "b": 1.0}, {"a": 1.0, "b": 1.0})
        text = format_comparison(rows)
        assert "regressed" in text and "ok" in text
        assert "1.50x" in text


class TestBaselineCli:
    def test_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        save_baseline(base, {"a": 1.0})
        save_baseline(good, {"a": 1.1})
        save_baseline(bad, {"a": 2.0})
        assert baseline_main([str(base), str(good)]) == 0
        assert baseline_main([str(base), str(bad)]) == 1
        assert "regressed" in capsys.readouterr().out


class TestRunBench:
    def test_measure_returns_positive_seconds(self):
        assert measure(lambda: sum(range(100)), repeats=2) > 0.0

    def test_kernel_benchmark_names_match_committed_baseline(self):
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_kernel.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in kernel_benchmarks()}
        assert defined == committed

    def test_every_benchmark_callable_runs(self):
        for name, fn in kernel_benchmarks():
            fn()  # one iteration each: smoke, not timing

    def test_sweep_benchmark_names_match_committed_baseline(self, tmp_path):
        import pathlib

        from benchmarks.bench_sweep import sweep_benchmarks

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_sweep.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in sweep_benchmarks(str(tmp_path))}
        assert defined == committed

    def test_sweep_speedups_derived_from_timings(self):
        speedups = sweep_speedups({
            "sweep_serial_6runs": 1.0,
            "sweep_jobs2_6runs": 0.5,
            "sweep_cache_warm_6runs": 0.01,
        })
        assert speedups["parallel_speedup_jobs2"] == pytest.approx(2.0)
        assert speedups["cache_hit_speedup"] == pytest.approx(100.0)
        assert sweep_speedups({}) == {}

    def test_topology_benchmark_names_match_committed_baseline(self, tmp_path):
        import pathlib

        from benchmarks.bench_topology import topology_benchmarks

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_topology.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in topology_benchmarks(str(tmp_path))}
        assert defined == committed

    def test_topology_speedups_derived_from_timings(self):
        from benchmarks.bench_topology import topology_speedups

        ratios = topology_speedups({
            "pause_fresh_200": 0.30,
            "pause_incremental_200": 0.10,
            "pause_fresh_1000": 4.0,
            "pause_incremental_1000": 1.0,
            "churn_fresh_200": 1.0,
            "churn_incremental_200": 1.05,
        })
        assert ratios["pause_speedup_200"] == pytest.approx(3.0)
        assert ratios["pause_speedup_1000"] == pytest.approx(4.0)
        assert ratios["churn_overhead"] == pytest.approx(1.05)
        assert topology_speedups({}) == {}

    def test_scale_benchmark_names_match_committed_baseline(self, tmp_path):
        import pathlib

        from benchmarks.bench_scale import scale_benchmarks
        from repro.net import soa

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_scale.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in scale_benchmarks(str(tmp_path))}
        if soa.HAVE_NUMPY:
            assert defined == committed
        else:
            # Without the perf extra only the scalar arm exists; the gate
            # treats the vectorized entries as missing (never a failure).
            assert defined == {n for n in committed if "scalar" in n}

    def test_scale_speedups_derived_from_timings(self):
        from benchmarks.bench_scale import PR6_VECTORIZED_10000, scale_speedups

        ratios = scale_speedups({
            "scale_run_scalar_1000": 0.30,
            "scale_run_vectorized_1000": 0.10,
            "scale_run_scalar_10000": 14.0,
            "scale_run_vectorized_10000": 2.5,
        })
        assert ratios == {
            "vectorized_speedup_1000": pytest.approx(3.0),
            "vectorized_speedup_10000": pytest.approx(5.6),
            "engine_speedup_vs_pr6": pytest.approx(PR6_VECTORIZED_10000 / 2.5),
        }
        assert scale_speedups({}) == {}

    def test_committed_scale_baseline_records_the_target_speedup(self):
        """The acceptance bar: the committed 10k-node vectorized run is
        at least 5x faster than the committed scalar run."""
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_scale.json"
        )
        data = json.loads(baseline_path.read_text())
        assert data["meta"]["vectorized_speedup_10000"] >= 5.0
        results = data["results"]
        for scale in (1000, 5000, 10000):
            assert results[f"scale_run_scalar_{scale}"] > 0
            assert results[f"scale_run_vectorized_{scale}"] > 0

    def test_committed_scale_baseline_doubles_the_pr6_run_phase(self):
        """The engine PR's acceptance bar: the committed 10k-node
        vectorized run phase is at least 2x faster than the committed
        pre-wheel (PR-6) measurement on the same reference machine."""
        import pathlib

        from benchmarks.bench_scale import PR6_VECTORIZED_10000

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_scale.json"
        )
        data = json.loads(baseline_path.read_text())
        committed = data["results"]["scale_run_vectorized_10000"]
        assert PR6_VECTORIZED_10000 / committed >= 2.0
        assert data["meta"]["engine_speedup_vs_pr6"] >= 2.0

    def test_engine_benchmark_names_match_committed_baseline(self, tmp_path):
        import pathlib

        from benchmarks.bench_engine import engine_benchmarks

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_engine.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in engine_benchmarks(str(tmp_path))}
        assert defined == committed

    def test_engine_speedups_derived_from_timings(self):
        from benchmarks.bench_engine import engine_speedups

        ratios = engine_speedups({
            "engine_timer_churn_wheel_50k": 0.04,
            "engine_timer_churn_heap_50k": 0.10,
        })
        assert ratios["churn_speedup_wheel"] == pytest.approx(2.5)
        assert engine_speedups({}) == {}

    def test_committed_engine_baseline_records_the_churn_floor(self):
        """The timer-churn microbench floor: renewing timers through the
        wheel must stay well ahead of the cancel-plus-push heap idiom."""
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_engine.json"
        )
        data = json.loads(baseline_path.read_text())
        assert data["meta"]["churn_speedup_wheel"] >= 1.5
        for name, seconds in data["results"].items():
            assert seconds > 0, name

    def test_campaign_benchmark_names_match_committed_baseline(self, tmp_path):
        import pathlib

        from benchmarks.bench_campaign import campaign_benchmarks

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_campaign.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in campaign_benchmarks(str(tmp_path))}
        assert defined == committed

    def test_campaign_speedups_derived_from_timings(self):
        from benchmarks.bench_campaign import campaign_speedups

        meta = campaign_speedups({
            "campaign_pickle_write_read_1000": 0.30,
            "campaign_store_write_read_1000": 0.05,
        })
        assert meta["store_speedup"] == pytest.approx(6.0)
        # The write counts are measured, not asserted to exact values —
        # but the pickle side is arithmetic and the reduction follows.
        assert meta["pickle_fs_writes"] == 2000
        assert meta["fs_write_reduction"] == pytest.approx(
            2000 / meta["store_fs_writes"]
        )
        partial = campaign_speedups({})
        assert "store_speedup" not in partial
        assert partial["fs_write_reduction"] > 1.0

    def test_committed_campaign_baseline_records_the_targets(self):
        """The acceptance bar: the committed 1000-point campaign runs at
        least 5x faster and with at least 100x fewer filesystem writes
        through the store than through per-pickle caching."""
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_campaign.json"
        )
        data = json.loads(baseline_path.read_text())
        assert data["meta"]["store_speedup"] >= 5.0
        assert data["meta"]["fs_write_reduction"] >= 100.0
        results = data["results"]
        assert results["campaign_pickle_write_read_1000"] > 0
        assert results["campaign_store_write_read_1000"] > 0

    def test_control_benchmark_names_match_committed_baseline(self, tmp_path):
        import pathlib

        from benchmarks.bench_control import control_benchmarks

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_control.json"
        )
        committed = set(load_baseline(baseline_path))
        defined = {name for name, _ in control_benchmarks(str(tmp_path))}
        assert defined == committed

    def test_control_overheads_derived_from_timings(self):
        from benchmarks.bench_control import control_overheads

        overheads = control_overheads({
            "control_off_run": 0.10,
            "control_static_run": 0.101,
            "control_hysteresis_chaos_run": 0.12,
        })
        assert overheads["static_sampling_overhead"] == pytest.approx(1.01)
        assert overheads["hysteresis_chaos_overhead"] == pytest.approx(1.2)
        assert control_overheads({}) == {}

    def test_committed_control_baseline_records_the_budget(self):
        """The acceptance bar: pure observation (the static policy
        sampling every window on a fault-free run) costs at most 5%
        wall-clock over no controller at all."""
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "BENCH_control.json"
        )
        data = json.loads(baseline_path.read_text())
        assert data["meta"]["static_sampling_overhead"] <= 1.05
        results = data["results"]
        assert results["control_off_run"] > 0
        assert results["control_hysteresis_chaos_run"] > 0

    def test_pause_schedule_movers_stay_under_delta_threshold(self):
        """The pause-heavy scenario only measures the delta path if the
        steady-state mover fraction stays under the service threshold —
        the bench module's docstring promises this holds."""
        from benchmarks.bench_topology import TICKS, pause_heavy_schedule
        from repro.net.topology import TopologyService

        for count in (200, 1000):
            schedule = pause_heavy_schedule(count)
            limit = max(
                TopologyService.delta_floor,
                int(count * TopologyService.delta_fraction),
            )
            over = 0
            for prev, states in zip(schedule, schedule[1:]):
                movers = sum(
                    1 for node, pos in states.items() if pos is not prev[node]
                )
                if movers > limit:
                    over += 1
            # Allow the odd outlier quantum, but the regime must be
            # delta-friendly for the speedup numbers to mean anything.
            assert over <= TICKS // 10, (count, over)
