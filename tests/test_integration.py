"""End-to-end integration tests: full simulations, cross-strategy shape
invariants, and failure injection (disconnections, partitions, loss).
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.pull import PullStrategy
from repro.consistency.push import PushStrategy
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_simulation
from repro.net.link import LinkModel

from tests.conftest import line_positions, make_eligible, make_world


def small_config(**kwargs):
    defaults = dict(
        n_peers=16,
        sim_time=900.0,
        warmup=300.0,
        seed=21,
        terrain_width=900.0,
        terrain_height=900.0,
        switch_interval=150.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestShapeInvariants:
    """The qualitative relations the paper's evaluation rests on."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            spec: run_simulation(small_config(), spec)
            for spec in ("pull", "push", "rpcc-sc", "rpcc-wc")
        }

    def test_pull_traffic_dominates(self, results):
        pull = results["pull"].summary.transmissions
        for spec in ("push", "rpcc-sc", "rpcc-wc"):
            assert pull > results[spec].summary.transmissions

    def test_weak_rpcc_cheapest_rpcc(self, results):
        assert (
            results["rpcc-wc"].summary.transmissions
            < results["rpcc-sc"].summary.transmissions
        )

    def test_push_latency_dominates(self, results):
        push = results["push"].summary.mean_latency
        for spec in ("pull", "rpcc-sc", "rpcc-wc"):
            assert push > 3 * results[spec].summary.mean_latency

    def test_rpcc_latency_same_order_as_pull(self, results):
        # "At the same level as pull": within 1.5 orders of magnitude and
        # far below push.
        rpcc = results["rpcc-sc"].summary.mean_latency
        push = results["push"].summary.mean_latency
        assert rpcc < push / 3

    def test_relays_emerge(self, results):
        assert results["rpcc-sc"].mean_relay_count > 0

    def test_push_serves_fresher_data_than_weak(self, results):
        assert (
            results["push"].summary.stale_ratio
            < results["rpcc-wc"].summary.stale_ratio
        )


class TestVersionMonotonicity:
    """Versions held anywhere never exceed the master's and never go back."""

    def test_cached_versions_bounded_by_master(self):
        result_config = small_config(sim_time=600.0, warmup=0.0)
        from repro.experiments.runner import build_simulation

        simulation = build_simulation(result_config, "rpcc-sc")
        simulation.run()
        for host in simulation.hosts.values():
            for item_id in host.store.item_ids:
                copy = host.store.peek(item_id)
                master = simulation.catalog.master(item_id)
                assert 0 <= copy.version <= master.version


class TestFailureInjection:
    def test_source_crash_rpcc_still_answers(self):
        config = RPCCConfig(
            ttn=60.0, ttr=45.0, ttp=100.0,
            poll_timeout=2.0, source_poll_timeout=2.0, grace_timeout=5.0,
        )
        world = make_world(
            line_positions(5), lambda ctx: RPCCStrategy(ctx, config)
        )
        world.give_copy(1, 0)
        make_eligible(world.host(1))
        world.strategy.start()
        world.run(70.0)  # node 1 becomes a relay for item 0
        world.host(0).set_online(False)  # source crashes
        world.run(10.0)
        world.give_copy(3, 0)
        record = world.agent(3).local_query(0, ConsistencyLevel.STRONG)
        world.run(60.0)
        # Either a relay answered or the forced-stale path served the copy.
        assert record.answered

    def test_mass_disconnection_and_recovery(self):
        result = run_simulation(
            small_config(mean_online=120.0, mean_offline=60.0, stable_fraction=0.25),
            "rpcc-sc",
        )
        # Heavy churn: many queries still answered, and every answer audited.
        answered_ratio = (
            result.summary.queries_answered / result.summary.queries_issued
        )
        assert answered_ratio > 0.5

    def test_push_survives_lossy_links(self):
        world = make_world(
            line_positions(4),
            lambda ctx: PushStrategy(ctx, ttn=50.0, ttl=8, wait_factor=2.0),
        )
        import random as random_module

        world.network.link = LinkModel(
            loss_rate=0.2, rng=random_module.Random(3)
        )
        world.strategy.start()
        world.give_copy(0, 1)
        records = []
        for start in range(0, 200, 40):
            world.run(40.0)
            records.append(world.agent(0).local_query(1, ConsistencyLevel.STRONG))
        world.run(300.0)
        assert any(record.answered for record in records)

    def test_pull_survives_lossy_links(self):
        world = make_world(
            line_positions(4),
            lambda ctx: PullStrategy(ctx, poll_timeout=2.0),
        )
        import random as random_module

        world.network.link = LinkModel(loss_rate=0.2, rng=random_module.Random(3))
        world.give_copy(0, 3)
        answered = 0
        for _ in range(10):
            record = world.agent(0).local_query(3, ConsistencyLevel.STRONG)
            world.run(20.0)
            answered += record.answered
        assert answered >= 8  # retries absorb the losses

    def test_partition_heals_and_queries_resume(self):
        # Two halves joined by a bridge node that goes down and comes back.
        world = make_world(
            line_positions(5), lambda ctx: PullStrategy(ctx, poll_timeout=1.0)
        )
        world.give_copy(0, 4, version=0)
        world.host(2).set_online(False)  # bridge down: 0 cut off from 4
        world.update_item(4)
        record_during = world.agent(0).local_query(4, ConsistencyLevel.STRONG)
        world.run(30.0)
        assert record_during.answered
        assert record_during.served_version == 0  # stale fallback
        world.host(2).set_online(True)  # bridge restored
        world.run(5.0)
        record_after = world.agent(0).local_query(4, ConsistencyLevel.STRONG)
        world.run(30.0)
        assert record_after.answered
        assert record_after.served_version == 1  # fresh again

    def test_relay_churn_consistency_maintained(self):
        result = run_simulation(
            small_config(switch_interval=120.0), "rpcc-dc"
        )
        # Delta guarantees hold for the vast majority of reads despite churn.
        assert result.summary.violation_ratio < 0.5


class TestHybridWorkload:
    def test_levels_all_present(self):
        result = run_simulation(small_config(), "rpcc-hy")
        from repro.experiments.runner import build_simulation

        simulation = build_simulation(small_config(), "rpcc-hy")
        simulation.run()
        levels = {r.level for r in simulation.metrics.latency.records()}
        assert levels == {"strong", "delta", "weak"}

    def test_hybrid_between_extremes(self):
        weak = run_simulation(small_config(), "rpcc-wc").summary.transmissions
        strong = run_simulation(small_config(), "rpcc-sc").summary.transmissions
        hybrid = run_simulation(small_config(), "rpcc-hy").summary.transmissions
        assert weak < hybrid < strong


class TestRandomizedRobustness:
    """Mini-sim smoke property: random small configs never break invariants."""

    def test_random_configs_hold_invariants(self):
        import random as random_module

        rng = random_module.Random(2024)
        for trial in range(6):
            spec = ("pull", "push", "rpcc-sc", "rpcc-dc",
                    "rpcc-wc", "rpcc-hy")[trial]
            config = SimulationConfig(
                n_peers=rng.randint(8, 20),
                cache_num=rng.randint(2, 8),
                sim_time=float(rng.randint(200, 400)),
                warmup=0.0,
                update_interval=float(rng.randint(30, 200)),
                query_interval=float(rng.randint(5, 40)),
                stable_fraction=rng.choice((0.2, 0.4, 0.6)),
                terrain_width=float(rng.randint(600, 1200)),
                terrain_height=float(rng.randint(600, 1200)),
                seed=rng.randint(1, 10_000),
            )
            result = run_simulation(config, spec)
            summary = result.summary
            assert summary.queries_answered <= summary.queries_issued
            assert 0.0 <= summary.stale_ratio <= 1.0
            assert summary.violation_ratio <= summary.stale_ratio + 1e-9
            assert summary.transmissions >= 0
            assert result.energy_consumed >= 0.0
            assert 0.0 <= result.mean_battery_fraction <= 1.0
