"""Unit tests for unicast, flooding and traffic accounting."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.metrics.counters import MessageCounters
from repro.mobility.terrain import Point
from repro.net.link import LinkModel
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.sim.engine import Simulator


class StubNode(NetworkNode):
    """Stationary test node recording deliveries and radio activity."""

    def __init__(self, node_id, point, online=True):
        self._id = node_id
        self._point = point
        self._online = online
        self.inbox = []
        self.transmits = 0
        self.receives = 0

    @property
    def node_id(self):
        return self._id

    @property
    def online(self):
        return self._online

    def set_online(self, flag):
        self._online = flag
        self.notify_state_change()  # what MobileHost.set_online does

    def current_position(self):
        return self._point

    def deliver(self, message):
        self.inbox.append(message)

    def on_transmit(self, message):
        self.transmits += 1

    def on_receive(self, message):
        self.receives += 1


def make_net(coords, radio_range=150.0, latency=0.01):
    sim = Simulator()
    counters = MessageCounters()
    net = Network(
        sim,
        radio_range=radio_range,
        link=LinkModel(latency=latency, bandwidth_bps=8_000_000),
        traffic=counters,
    )
    nodes = [StubNode(i, Point(x, y)) for i, (x, y) in enumerate(coords)]
    for node in nodes:
        net.register(node)
    return sim, net, nodes, counters


LINE4 = [(0, 0), (100, 0), (200, 0), (300, 0)]


class TestRegistry:
    def test_duplicate_id_rejected(self):
        sim, net, nodes, _ = make_net([(0, 0)])
        with pytest.raises(TopologyError):
            net.register(StubNode(0, Point(1, 1)))

    def test_unknown_node_lookup(self):
        sim, net, _, _ = make_net([(0, 0)])
        with pytest.raises(TopologyError):
            net.node(42)

    def test_node_ids(self):
        _, net, _, _ = make_net(LINE4)
        assert net.node_ids == [0, 1, 2, 3]


class TestUnicast:
    def test_delivery_along_path(self):
        sim, net, nodes, _ = make_net(LINE4)
        msg = Message(sender=0, size_bytes=100)
        assert net.unicast(0, 3, msg)
        sim.run()
        assert nodes[3].inbox == [msg]

    def test_delay_proportional_to_hops(self):
        sim, net, nodes, _ = make_net(LINE4, latency=0.01)
        net.unicast(0, 3, Message(sender=0, size_bytes=0))
        sim.run()
        assert sim.now == pytest.approx(3 * 0.01)

    def test_transmissions_equal_hops(self):
        sim, net, nodes, counters = make_net(LINE4)
        net.unicast(0, 3, Message(sender=0))
        assert counters.transmissions() == 3

    def test_partitioned_returns_false(self):
        sim, net, nodes, _ = make_net([(0, 0), (1000, 0)])
        assert not net.unicast(0, 1, Message(sender=0))
        assert net.messages_undeliverable == 1

    def test_offline_sender_fails(self):
        sim, net, nodes, _ = make_net(LINE4)
        nodes[0].set_online(False)
        assert not net.unicast(0, 1, Message(sender=0))

    def test_offline_target_fails(self):
        sim, net, nodes, _ = make_net(LINE4)
        nodes[1].set_online(False)
        net.topology.invalidate()
        assert not net.unicast(0, 1, Message(sender=0))

    def test_offline_intermediate_blocks_route(self):
        sim, net, nodes, _ = make_net(LINE4)
        nodes[1].set_online(False)
        net.topology.invalidate()
        assert not net.unicast(0, 2, Message(sender=0))

    def test_self_delivery_costs_nothing(self):
        sim, net, nodes, counters = make_net(LINE4)
        assert net.unicast(0, 0, Message(sender=0))
        sim.run()
        assert nodes[0].inbox
        assert counters.transmissions() == 0

    def test_target_going_offline_in_flight_drops(self):
        sim, net, nodes, _ = make_net(LINE4, latency=1.0)
        net.unicast(0, 3, Message(sender=0))
        sim.schedule(1.5, nodes[3].set_online, False)
        sim.run()
        assert nodes[3].inbox == []

    def test_energy_hooks_fire_per_hop(self):
        sim, net, nodes, _ = make_net(LINE4)
        net.unicast(0, 2, Message(sender=0))
        assert nodes[0].transmits == 1
        assert nodes[1].transmits == 1  # forwarding hop
        assert nodes[1].receives == 1
        assert nodes[2].receives == 1

    def test_route_hops(self):
        _, net, _, _ = make_net(LINE4)
        assert net.route_hops(0, 3) == 3
        assert net.route_hops(0, 0) == 0

    def test_route_hops_partitioned(self):
        _, net, _, _ = make_net([(0, 0), (1000, 0)])
        assert net.route_hops(0, 1) is None


class TestTopologyInvalidation:
    """Online/offline flips must drop the cached snapshot mid-quantum."""

    def test_offline_flip_invalidates_cached_snapshot(self):
        sim, net, nodes, _ = make_net(LINE4)
        before = net.snapshot()
        nodes[1].set_online(False)
        after = net.snapshot()
        assert after is not before
        assert 1 not in after

    def test_unicast_does_not_route_through_fresh_offline_relay(self):
        # Same quantum, no manual invalidate: the registration hook alone
        # must keep the route off the node that just went offline.
        sim, net, nodes, _ = make_net(LINE4)
        assert net.unicast(0, 2, Message(sender=0))  # caches the snapshot
        nodes[1].set_online(False)
        assert not net.unicast(0, 2, Message(sender=0))
        assert nodes[1].receives == 1  # only the pre-flip unicast touched it

    def test_reconnect_flip_restores_reachability(self):
        sim, net, nodes, _ = make_net(LINE4)
        nodes[1].set_online(False)
        assert not net.unicast(0, 2, Message(sender=0))
        nodes[1].set_online(True)
        assert net.unicast(0, 2, Message(sender=0))

    def test_unregistered_node_flip_is_harmless(self):
        node = StubNode(7, Point(0, 0))
        node.set_online(False)  # no listener bound: must not raise
        assert not node.online

    def test_flip_counts_one_invalidation(self):
        sim, net, nodes, _ = make_net(LINE4)
        invalidations = net.topology.invalidations
        nodes[3].set_online(False)
        assert net.topology.invalidations == invalidations + 1


class TestFlood:
    def test_reaches_nodes_within_ttl(self):
        sim, net, nodes, _ = make_net(LINE4)
        delivered = net.flood(0, Message(sender=0), ttl=2)
        sim.run()
        assert delivered == 2
        assert nodes[1].inbox and nodes[2].inbox
        assert not nodes[3].inbox

    def test_ttl_large_reaches_all(self):
        sim, net, nodes, _ = make_net(LINE4)
        assert net.flood(0, Message(sender=0), ttl=8) == 3

    def test_transmission_count(self):
        sim, net, nodes, counters = make_net(LINE4)
        # Depths: 1,2,3 with ttl=3 -> forwarders are source + depth 1,2.
        net.flood(0, Message(sender=0), ttl=3)
        assert counters.transmissions() == 3

    def test_source_always_transmits_once(self):
        sim, net, nodes, counters = make_net(LINE4)
        net.flood(0, Message(sender=0), ttl=1)
        assert counters.transmissions() == 1
        assert nodes[0].transmits == 1

    def test_ttl_zero_never_leaves_sender(self):
        sim, net, nodes, counters = make_net(LINE4)
        assert net.flood(0, Message(sender=0), ttl=0) == 0
        sim.run()
        assert all(not n.inbox for n in nodes)

    def test_negative_ttl_rejected(self):
        sim, net, _, _ = make_net(LINE4)
        with pytest.raises(RoutingError):
            net.flood(0, Message(sender=0), ttl=-1)

    def test_offline_source_floods_nothing(self):
        sim, net, nodes, _ = make_net(LINE4)
        nodes[0].set_online(False)
        assert net.flood(0, Message(sender=0), ttl=3) == 0

    def test_offline_node_does_not_forward(self):
        sim, net, nodes, _ = make_net(LINE4)
        nodes[1].set_online(False)
        net.topology.invalidate()
        assert net.flood(0, Message(sender=0), ttl=8) == 0

    def test_delivery_delay_by_depth(self):
        sim, net, nodes, _ = make_net(LINE4, latency=0.01)
        net.flood(0, Message(sender=0, size_bytes=0), ttl=3)
        sim.run()
        assert sim.now == pytest.approx(0.03)

    def test_flood_reach_preview(self):
        _, net, _, _ = make_net(LINE4)
        assert sorted(net.flood_reach(0, 2)) == [1, 2]

    def test_branching_topology_counts(self):
        # Star: center 0 with three leaves.
        sim, net, nodes, counters = make_net(
            [(0, 0), (100, 0), (0, 100), (-100, 0)]
        )
        delivered = net.flood(0, Message(sender=0), ttl=1)
        assert delivered == 3
        assert counters.transmissions() == 1  # only the center transmits
