"""Property tests: the vectorized core is bit-identical to the scalar core.

Every test here constructs the same world twice — once with the
struct-of-arrays fast path (``REPRO_SOA=1``, :data:`soa.BUILD_MIN_NODES`
dropped to 0 so tiny graphs vectorize too) and once with it forced off —
and asserts that everything the network layer can observe is equal *and
in the same order*: positions, neighbour lists, BFS levels and discovery
order, depth-bounded floods, edge counts and connected components.

The whole module skips cleanly when numpy (the ``perf`` extra) is not
installed: in that configuration only the scalar core exists and there
is nothing to compare.
"""

from __future__ import annotations

import contextlib
import os
import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.base import MobilityModel
from repro.mobility.stationary import PiecewiseLinear, Stationary
from repro.mobility.terrain import Point, Terrain
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint
from repro.net import soa
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import TopologySnapshot
from repro.sim.engine import Simulator

pytestmark = pytest.mark.skipif(
    not soa.HAVE_NUMPY, reason="numpy (the perf extra) is not installed"
)

RANGE = 250.0


@contextlib.contextmanager
def _core(vectorized: bool):
    """Force one core for the duration of the block.

    The vectorized arm also drops :data:`soa.BUILD_MIN_NODES` to zero so
    the small populations hypothesis generates take the array path
    instead of silently falling back to the scalar build.
    """
    saved_env = os.environ.get("REPRO_SOA")
    saved_floor = soa.BUILD_MIN_NODES
    os.environ["REPRO_SOA"] = "1" if vectorized else "0"
    if vectorized:
        soa.BUILD_MIN_NODES = 0
    try:
        yield
    finally:
        soa.BUILD_MIN_NODES = saved_floor
        if saved_env is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = saved_env


def _assert_snapshots_identical(vec: TopologySnapshot, ref: TopologySnapshot):
    """Bit-level equality of everything routing and flooding observe."""
    assert list(vec.positions) == list(ref.positions)
    assert dict(vec.positions) == dict(ref.positions)
    for node in ref.positions:
        assert vec.neighbors(node) == ref.neighbors(node), node
    assert vec.edge_count() == ref.edge_count()
    for source in ref.positions:
        for depth in (0, 1, 3, None):
            vec_levels = vec.bfs_levels(source, max_depth=depth)
            ref_levels = ref.bfs_levels(source, max_depth=depth)
            assert vec_levels == ref_levels, (source, depth)
            assert list(vec_levels) == list(ref_levels), (source, depth)
    assert vec.connected_components() == ref.connected_components()


# ----------------------------------------------------------------------
# Adjacency builds
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2000.0),
            st.floats(min_value=0.0, max_value=2000.0),
        ),
        max_size=40,
    ),
    st.floats(min_value=10.0, max_value=800.0),
)
def test_vectorized_build_matches_scalar(points, radio_range):
    positions = {i: Point(x, y) for i, (x, y) in enumerate(points)}
    with _core(vectorized=False):
        ref = TopologySnapshot(dict(positions), radio_range)
        assert ref._csr is None
    with _core(vectorized=True):
        vec = TopologySnapshot(dict(positions), radio_range)
        assert vec._csr is not None
        _assert_snapshots_identical(vec, ref)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**20))
def test_vectorized_build_matches_scalar_at_paper_density(seed):
    rng = random.Random(seed)
    count = rng.randrange(1, 120)
    side = 1500.0 * (count / 50.0) ** 0.5
    terrain = Terrain(side, side)
    positions = {i: terrain.random_point(rng) for i in range(count)}
    with _core(vectorized=False):
        ref = TopologySnapshot(dict(positions), 350.0)
    with _core(vectorized=True):
        vec = TopologySnapshot(dict(positions), 350.0)
        assert vec._csr is not None
        _assert_snapshots_identical(vec, ref)


# ----------------------------------------------------------------------
# The full pipeline under movement and churn
# ----------------------------------------------------------------------
class _Node(NetworkNode):
    """Minimal concrete node whose position comes from a mobility model."""

    def __init__(self, node_id: int, sim: Simulator, mobility: MobilityModel):
        self._id = node_id
        self._sim = sim
        self.mobility = mobility
        self._online = True

    @property
    def node_id(self) -> int:
        return self._id

    @property
    def online(self) -> bool:
        return self._online

    def set_online(self, flag: bool) -> None:
        if flag != self._online:
            self._online = flag
            self.notify_state_change()

    def current_position(self) -> Point:
        return self.mobility.position(self._sim.now)

    def position_valid_until(self) -> float:
        return self.mobility.position_valid_until(self._sim.now)

    def deliver(self, message) -> None:
        return None


class _OpaqueModel(MobilityModel):
    """A model the bulk-kernel registry does not recognise.

    Wraps a real trajectory so the FallbackKernel arm exercises genuine
    movement, not just a stationary point.
    """

    def __init__(self, inner: MobilityModel):
        self._inner = inner

    def position(self, time: float) -> Point:
        return self._inner.position(time)

    def position_valid_until(self, time: float) -> float:
        return self._inner.position_valid_until(time)


def _make_model(family: str, terrain: Terrain, seed: int) -> MobilityModel:
    rng = random.Random(seed)
    if family == "stationary":
        return Stationary(terrain.random_point(rng))
    if family == "waypoint":
        return RandomWaypoint(terrain, rng, 10.0, 40.0, pause_time=3.0)
    if family == "walk":
        return RandomWalk(terrain, rng, 10.0, 40.0, epoch=4.0)
    if family == "piecewise":
        times = [0.0, 5.0, 12.0, 30.0]
        return PiecewiseLinear(
            [(t, terrain.random_point(rng)) for t in times]
        )
    if family == "fallback":
        return _OpaqueModel(RandomWalk(terrain, rng, 10.0, 40.0, epoch=4.0))
    raise AssertionError(family)


FAMILIES = ("stationary", "waypoint", "walk", "piecewise", "fallback")


def _build_world(vectorized: bool, seed: int, count: int, families):
    terrain = Terrain(900.0, 900.0)
    with _core(vectorized):
        sim = Simulator()
        net = Network(sim, radio_range=RANGE)
        assert net.core == ("vectorized" if vectorized else "scalar")
        nodes = [
            _Node(
                i, sim,
                _make_model(families[i % len(families)], terrain, seed * 1000 + i),
            )
            for i in range(count)
        ]
        for node in nodes:
            net.register(node)
    return sim, net, nodes


def _run_both(seed: int, count: int, families, toggles):
    """Walk two identically seeded worlds and compare every snapshot."""
    vec_sim, vec_net, vec_nodes = _build_world(True, seed, count, families)
    ref_sim, ref_net, ref_nodes = _build_world(False, seed, count, families)
    for tick, toggle in enumerate(toggles, start=1):
        vec_sim.run_until(float(tick))
        ref_sim.run_until(float(tick))
        if toggle is not None:
            index = toggle % count
            flag = not vec_nodes[index].online
            vec_nodes[index].set_online(flag)
            ref_nodes[index].set_online(flag)
        with _core(True):
            vec_snap = vec_net.snapshot()
        with _core(False):
            ref_snap = ref_net.snapshot()
        _assert_snapshots_identical(vec_snap, ref_snap)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**20),
    st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
        min_size=4,
        max_size=24,
    ),
)
def test_pipeline_identical_under_movement_and_churn(seed, toggles):
    """All mobility families at once, random churn, every quantum compared."""
    _run_both(seed, count=20, families=FAMILIES, toggles=toggles)


@pytest.mark.parametrize("family", FAMILIES)
def test_bulk_mobility_kernels_match_scalar_models(family):
    """Each kernel family alone: bulk sampling equals per-node sampling."""
    _run_both(seed=7, count=16, families=(family,), toggles=[None] * 20)
    _run_both(seed=23, count=16, families=(family,), toggles=[3, None, 9] * 5)
