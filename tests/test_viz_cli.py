"""Unit tests for the ASCII chart renderer and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.viz.ascii import ascii_chart


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart(
            [1.0, 2.0, 3.0],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            width=20,
            height=6,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 1 + 6 + 2 + 1  # title + grid + axis/xticks + legend
        assert "o=a" in lines[-1] and "x=b" in lines[-1]

    def test_markers_placed_at_extremes(self):
        chart = ascii_chart([0.0, 10.0], {"s": [0.0, 100.0]}, width=20, height=5)
        lines = chart.splitlines()
        grid = [line.split("|", 1)[1] for line in lines[:5]]
        assert grid[0].rstrip().endswith("o")  # max at top-right
        assert grid[-1].lstrip().startswith("o")  # min at bottom-left

    def test_log_scale_compresses(self):
        linear = ascii_chart([1, 2, 3], {"s": [1.0, 10.0, 100.0]},
                             width=20, height=9)
        log = ascii_chart([1, 2, 3], {"s": [1.0, 10.0, 100.0]},
                          width=20, height=9, log_y=True)

        def row_of_middle(chart):
            for row, line in enumerate(chart.splitlines()):
                body = line.split("|", 1)[-1]
                middle = len(body) // 2
                if "o" in body[middle - 2: middle + 3]:
                    return row
            return None

        # On a log axis the middle point (10) sits midway; linearly it
        # hugs the bottom.
        assert row_of_middle(log) < row_of_middle(linear)
        assert "(log y)" in log

    def test_flat_series_renders(self):
        chart = ascii_chart([1, 2], {"s": [5.0, 5.0]}, width=20, height=5)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], {"s": []})
        with pytest.raises(ConfigurationError):
            ascii_chart([1.0], {"s": [1.0, 2.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart([1.0], {"s": [1.0]}, width=5)

    def test_figure_plot_integration(self):
        from repro.experiments.figures.base import FigureData

        figure = FigureData(
            figure_id="Fig T",
            title="test",
            x_label="x",
            y_label="y",
            x_values=[1.0, 2.0, 3.0],
            series={"pull": [30.0, 20.0, 10.0], "push": [5.0, 5.0, 5.0]},
        )
        chart = figure.plot(width=30, height=8)
        assert "Fig T" in chart
        assert "o=pull" in chart


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "rpcc-sc"])
        assert args.command == "run"
        assert args.spec == "rpcc-sc"
        assert args.jobs == 1 and not args.no_cache
        args = parser.parse_args(["--sim-time", "100", "fig7a", "--plot"])
        assert args.sim_time == 100.0
        assert args.plot

    def test_parser_executor_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--jobs", "4", "--no-cache", "--cache-dir", "/tmp/c", "compare"]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == "/tmp/c"

    def test_unknown_spec_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "gossip"])

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "N_Peers" in out

    def test_run_command(self, capsys):
        code = main(
            ["--sim-time", "120", "--warmup", "60", "--seed", "2",
             "--no-cache", "run", "rpcc-wc"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rpcc-wc" in out
        assert "transmissions" in out
        assert "relay population" in out

    def test_run_single_source(self, capsys):
        code = main(
            ["--sim-time", "120", "--warmup", "60",
             "--no-cache", "run", "push", "--scenario", "single_source"]
        )
        assert code == 0
        assert "single_source" in capsys.readouterr().out

    def test_fig9_command_with_plot(self, capsys):
        code = main(
            ["--sim-time", "120", "--warmup", "60",
             "--no-cache", "fig9", "--ttls", "1", "3", "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 9(a)" in out
        assert "Fig 9(b)" in out
        assert "o=rpcc-sc" in out  # the ASCII plot rendered


class TestCLIAll:
    def test_all_writes_every_csv(self, tmp_path, capsys):
        code = main(
            ["--sim-time", "60", "--warmup", "30", "--no-cache",
             "all", "--out", str(tmp_path)]
        )
        assert code == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == [
            "fig7a.csv", "fig7b.csv", "fig7c.csv",
            "fig8a.csv", "fig8b.csv", "fig8c.csv",
            "fig9a.csv", "fig9b.csv",
        ]
        header = (tmp_path / "fig7a.csv").read_text().splitlines()[0]
        assert header.startswith("update interval (s),")


class TestCLIExecutor:
    def test_parallel_run_matches_serial(self, tmp_path, capsys):
        base = ["--sim-time", "60", "--warmup", "30"]
        assert main(base + ["--no-cache", "compare"]) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--no-cache", "--jobs", "2", "compare"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path, capsys):
        base = [
            "--sim-time", "60", "--warmup", "30",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(base + ["compare"]) == 0
        cold_out = capsys.readouterr().out
        assert "6 runs simulated" in cold_out
        assert main(base + ["compare"]) == 0
        warm_out = capsys.readouterr().out
        assert "cache: 6 hits, 0 misses" in warm_out
        assert "0 runs simulated" in warm_out
        # The science is identical; only the cache footer differs.
        strip = lambda text: text.split("cache:")[0]
        assert strip(cold_out) == strip(warm_out)

    def test_fig7a_then_fig8a_shares_the_sweep(self, tmp_path, capsys):
        base = [
            "--sim-time", "60", "--warmup", "30",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(base + ["fig7a"]) == 0
        capsys.readouterr()
        assert main(base + ["fig8a"]) == 0
        out = capsys.readouterr().out
        # Fig 8(a) reads the exact sweep Fig 7(a) computed: full cache hit.
        assert "0 runs simulated" in out


class TestCLIFigureCommand:
    def test_fig7a_with_csv(self, tmp_path, capsys):
        target = tmp_path / "fig7a.csv"
        code = main(
            ["--sim-time", "60", "--warmup", "30", "--no-cache",
             "fig7a", "--csv", str(target)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 7(a)" in out
        assert target.exists()
        lines = target.read_text().strip().splitlines()
        assert len(lines) == 6  # header + five sweep points

    def test_compare_command(self, capsys):
        code = main(["--sim-time", "60", "--warmup", "30", "--no-cache", "compare"])
        assert code == 0
        out = capsys.readouterr().out
        for spec in ("pull", "push", "rpcc-sc", "rpcc-hy"):
            assert spec in out
