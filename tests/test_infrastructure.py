"""Tests for the infrastructure baseline: MSS cell + Timestamp IR scheme."""

import pytest

from repro.cache.item import MasterCopy
from repro.errors import ConfigurationError, TopologyError
from repro.infrastructure.mss import CellClient, MSSCell
from repro.infrastructure.timestamp_ir import TimestampScheme
from repro.net.message import Message


def make_cell(sim, clients=3, items=3):
    cell = MSSCell(sim)
    for client_id in range(clients):
        cell.register_client(CellClient(client_id))
    for item_id in range(items):
        cell.install_item(MasterCopy(item_id, source_id=-1))
    return cell


class TestMSSCell:
    def test_duplicate_client_rejected(self, sim):
        cell = make_cell(sim)
        with pytest.raises(TopologyError):
            cell.register_client(CellClient(0))

    def test_unknown_lookups_raise(self, sim):
        cell = make_cell(sim)
        with pytest.raises(TopologyError):
            cell.client(99)
        with pytest.raises(TopologyError):
            cell.item(99)

    def test_broadcast_reaches_connected_only(self, sim):
        cell = make_cell(sim)
        received = {0: [], 1: [], 2: []}
        for client in cell.clients:
            client.inbox = received[client.client_id].append
        cell.set_connected(1, False)
        delivered = cell.broadcast(Message(sender=-1))
        sim.run()
        assert delivered == 2
        assert received[0] and received[2] and not received[1]
        assert cell.downlink_transmissions == 1  # one broadcast = one tx

    def test_uplink_requires_connection(self, sim):
        cell = make_cell(sim)
        got = []
        cell.set_mss_handler(lambda cid, msg: got.append(cid))
        assert cell.uplink(0, Message(sender=0))
        cell.set_connected(1, False)
        assert not cell.uplink(1, Message(sender=1))
        sim.run()
        assert got == [0]

    def test_unicast_down_to_sleeping_client_fails(self, sim):
        cell = make_cell(sim)
        cell.set_connected(0, False)
        assert not cell.unicast_down(0, Message(sender=-1))

    def test_disconnect_records_time(self, sim):
        cell = make_cell(sim)
        sim.run_until(42.0)
        cell.set_connected(0, False)
        assert cell.client(0).disconnected_at == 42.0
        cell.set_connected(0, True)
        assert cell.client(0).disconnected_at is None

    def test_invalid_hop_delay(self, sim):
        with pytest.raises(ConfigurationError):
            MSSCell(sim, hop_delay=-1.0)


class TestTimestampScheme:
    def build(self, sim, report_interval=20.0, history_windows=3):
        cell = make_cell(sim)
        scheme = TimestampScheme(
            sim, cell, report_interval=report_interval,
            history_windows=history_windows,
        )
        clients = {c.client_id: scheme.make_client(c) for c in cell.clients}
        return cell, scheme, clients

    def ask(self, sim, ts_client, item_id):
        answers = []
        ts_client.query(item_id, answers.append)
        return answers

    def test_parameters_validated(self, sim):
        cell = make_cell(sim)
        with pytest.raises(ConfigurationError):
            TimestampScheme(sim, cell, report_interval=0.0)
        with pytest.raises(ConfigurationError):
            TimestampScheme(sim, cell, history_windows=0)

    def test_query_waits_for_report(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        answers = self.ask(sim, clients[0], 0)
        sim.run_until(10.0)
        assert answers == []  # report at t=20 not yet out
        sim.run_until(25.0)
        assert answers == [0]  # fetched fresh version 0 from the MSS

    def test_cache_hit_after_first_fetch(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        first = self.ask(sim, clients[0], 0)
        sim.run_until(25.0)
        second = self.ask(sim, clients[0], 0)
        uplinks_before = cell.uplink_transmissions
        sim.run_until(45.0)
        assert second == [0]
        assert cell.uplink_transmissions == uplinks_before  # served locally

    def test_report_invalidates_updated_item(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        self.ask(sim, clients[0], 0)
        sim.run_until(25.0)  # cached v0
        master = cell.item(0)
        master.update(sim.now)
        scheme.record_update(master)
        answers = self.ask(sim, clients[0], 0)
        sim.run_until(45.0)  # next report lists the update -> refetch
        assert answers == [1]

    def test_short_sleep_keeps_cache(self, sim):
        cell, scheme, clients = self.build(sim, report_interval=20.0,
                                           history_windows=3)
        scheme.start()
        self.ask(sim, clients[0], 0)
        sim.run_until(25.0)
        cell.set_connected(0, False)
        sim.run_until(60.0)  # sleeps ~35 s < k*L = 60 s
        cell.set_connected(0, True)
        answers = self.ask(sim, clients[0], 0)
        sim.run_until(85.0)
        assert answers == [0]
        assert clients[0].cache_drops == 0

    def test_long_disconnection_drops_entire_cache(self, sim):
        """The classical failure the paper's Section 2 describes."""
        cell, scheme, clients = self.build(sim, report_interval=20.0,
                                           history_windows=2)
        scheme.start()
        self.ask(sim, clients[0], 0)
        self.ask(sim, clients[0], 1)
        sim.run_until(25.0)
        assert len(clients[0].cache) == 2
        cell.set_connected(0, False)
        sim.run_until(150.0)  # sleeps far beyond k*L = 40 s
        cell.set_connected(0, True)
        sim.run_until(170.0)  # first report after waking
        assert clients[0].cache_drops == 1
        assert len(clients[0].cache) == 0

    def test_report_window_trims_old_updates(self, sim):
        cell, scheme, clients = self.build(sim, report_interval=10.0,
                                           history_windows=2)
        scheme.start()
        master = cell.item(0)
        master.update(sim.now)
        scheme.record_update(master)
        sim.run_until(100.0)  # many reports later
        assert len(scheme._update_log) == 0  # aged out of the window

    def test_one_broadcast_serves_all_waiting_clients(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        answer_lists = [self.ask(sim, clients[c], 0) for c in range(3)]
        sim.run_until(25.0)
        assert all(answers == [0] for answers in answer_lists)
        assert scheme.reports_sent == 1


class TestAmnesicScheme:
    def build(self, sim, report_interval=20.0):
        from repro.infrastructure.amnesic import AmnesicScheme

        cell = make_cell(sim)
        scheme = AmnesicScheme(sim, cell, report_interval=report_interval)
        clients = {c.client_id: scheme.make_client(c) for c in cell.clients}
        return cell, scheme, clients

    def ask(self, at_client, item_id):
        answers = []
        at_client.query(item_id, answers.append)
        return answers

    def test_parameters_validated(self, sim):
        from repro.infrastructure.amnesic import AmnesicScheme

        with pytest.raises(ConfigurationError):
            AmnesicScheme(sim, make_cell(sim), report_interval=0.0)

    def test_first_contact_then_cache_hit(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        first = self.ask(clients[0], 0)
        sim.run_until(25.0)
        assert first == [0]
        second = self.ask(clients[0], 0)
        uplinks = cell.uplink_transmissions
        sim.run_until(45.0)
        assert second == [0]
        assert cell.uplink_transmissions == uplinks  # served from cache

    def test_report_invalidates_updated_item(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        self.ask(clients[0], 0)
        sim.run_until(25.0)
        master = cell.item(0)
        master.update(sim.now)
        scheme.record_update(master)
        answers = self.ask(clients[0], 0)
        sim.run_until(45.0)
        assert answers == [1]

    def test_any_missed_report_drops_cache(self, sim):
        """The AT property: even ONE missed report wipes everything."""
        cell, scheme, clients = self.build(sim, report_interval=20.0)
        scheme.start()
        self.ask(clients[0], 0)
        self.ask(clients[0], 1)
        sim.run_until(25.0)
        assert len(clients[0].cache) == 2
        cell.set_connected(0, False)
        sim.run_until(50.0)  # sleeps through exactly one report (t=40)
        cell.set_connected(0, True)
        sim.run_until(70.0)  # first report after waking (t=60)
        assert clients[0].cache_drops >= 1
        assert len(clients[0].cache) == 0

    def test_unbroken_stream_keeps_cache(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        self.ask(clients[0], 0)
        sim.run_until(25.0)
        sim.run_until(200.0)  # many reports, never disconnected
        assert clients[0].cache_drops == 0
        assert 0 in clients[0].cache

    def test_report_lists_only_fresh_updates(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        master = cell.item(0)
        master.update(sim.now)
        scheme.record_update(master)
        sim.run_until(25.0)  # the update rode report #1
        # Nothing new since: subsequent reports are empty.
        assert scheme._pending_updates == []

    def test_at_more_fragile_than_ts(self, sim):
        """AT drops on any gap; TS survives gaps shorter than k*L."""
        from repro.sim.engine import Simulator

        def run_scheme(build_fn, sleep):
            local = Simulator()
            cell, scheme, clients = build_fn(local)
            scheme.start()
            answers = []
            clients[0].query(0, answers.append)
            local.run_until(25.0)
            cell.set_connected(0, False)
            local.run_until(25.0 + sleep)
            cell.set_connected(0, True)
            local.run_until(25.0 + sleep + 25.0)
            return clients[0].cache_drops

        ts_drops = run_scheme(
            lambda s: TestTimestampScheme().build(s, 20.0, 3), sleep=30.0
        )
        at_drops = run_scheme(lambda s: self.build(s, 20.0), sleep=30.0)
        assert ts_drops == 0   # 30 s < k*L = 60 s: TS survives
        assert at_drops >= 1   # but AT missed a report and forgot all


class TestSignatureScheme:
    def build(self, sim, items=6, **kwargs):
        from repro.infrastructure.signature import SignatureScheme

        cell = make_cell(sim, clients=2, items=items)
        defaults = dict(report_interval=20.0, group_count=10,
                        group_size=3, suspect_threshold=1, seed=1)
        defaults.update(kwargs)
        scheme = SignatureScheme(sim, cell, **defaults)
        clients = {c.client_id: scheme.make_client(c) for c in cell.clients}
        return cell, scheme, clients

    def ask(self, sig_client, item_id):
        answers = []
        sig_client.query(item_id, answers.append)
        return answers

    def test_parameters_validated(self, sim):
        from repro.infrastructure.signature import SignatureScheme

        with pytest.raises(ConfigurationError):
            SignatureScheme(sim, make_cell(sim), report_interval=0.0)
        with pytest.raises(ConfigurationError):
            SignatureScheme(sim, make_cell(sim), group_count=0)
        with pytest.raises(ConfigurationError):
            SignatureScheme(sim, make_cell(sim), suspect_threshold=0)

    def test_groups_shared_and_fixed(self, sim):
        _, scheme_a, _ = self.build(sim, seed=5)
        from repro.sim.engine import Simulator

        _, scheme_b, _ = self.build(Simulator(), seed=5)
        assert scheme_a.groups == scheme_b.groups

    def test_fetch_then_cache_hit(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        first = self.ask(clients[0], 0)
        sim.run_until(25.0)
        assert first == [0]
        second = self.ask(clients[0], 0)
        uplinks = cell.uplink_transmissions
        sim.run_until(45.0)
        assert second == [0]
        assert cell.uplink_transmissions == uplinks

    def test_update_detected_via_signature_mismatch(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        self.ask(clients[0], 0)
        sim.run_until(25.0)
        cell.item(0).update(sim.now)
        answers = self.ask(clients[0], 0)
        sim.run_until(45.0)
        assert answers == [1]  # invalidated, refetched fresh

    def test_survives_arbitrary_sleep_without_full_drop(self, sim):
        """SIG's selling point vs TS/AT: no report history needed."""
        cell, scheme, clients = self.build(sim)
        scheme.start()
        self.ask(clients[0], 0)
        self.ask(clients[0], 1)
        sim.run_until(25.0)
        assert len(clients[0].cache) == 2
        cell.set_connected(0, False)
        sim.run_until(500.0)  # sleeps through ~24 reports
        cell.set_connected(0, True)
        # Nothing changed while asleep: the next report matches and the
        # cache survives untouched.
        sim.run_until(525.0)
        assert len(clients[0].cache) == 2

    def test_stale_item_after_long_sleep_invalidated(self, sim):
        cell, scheme, clients = self.build(sim)
        scheme.start()
        self.ask(clients[0], 0)
        sim.run_until(25.0)
        cell.set_connected(0, False)
        cell.item(0).update(sim.now)
        sim.run_until(300.0)
        cell.set_connected(0, True)
        answers = self.ask(clients[0], 0)
        sim.run_until(325.0)
        assert answers == [1]

    def test_false_positives_possible(self, sim):
        """A fresh cached item sharing a group with a stale one may die."""
        cell, scheme, clients = self.build(
            sim, items=4, group_count=4, group_size=4
        )
        scheme.start()
        self.ask(clients[0], 0)
        self.ask(clients[0], 1)
        sim.run_until(25.0)
        # Item 2 (not cached by the client) changes: every group contains
        # it, so cached items 0 and 1 become suspects despite being fresh.
        cell.item(2).update(sim.now)
        sim.run_until(45.0)
        assert clients[0].false_positives >= 1
