"""Tests for the append-only columnar result store.

The store replaces per-run pickles as the campaign persistence layer, so
its load-bearing properties are (1) *exact* round trips — a record read
back must rebuild a bit-identical ``SimulationResult`` — and (2) crash
safety: only batches referenced by an atomically committed index sidecar
are ever visible, and merge-on-read dedups by content-address key with
the newest generation winning.
"""

import json
import math
import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import env_jobs, run_key
from repro.experiments.runner import run_simulation
from repro.experiments.store import (
    RECORD_SCHEMA,
    STORE_FORMAT_VERSION,
    ResultStore,
    RunRecord,
    StoreFormatError,
    decode_batch,
    encode_batch,
    shard_of,
)


def tiny_config(**kwargs):
    defaults = dict(
        n_peers=10,
        sim_time=120.0,
        warmup=0.0,
        seed=11,
        terrain_width=800.0,
        terrain_height=800.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def synthetic_record(index: int = 0, key: str = None) -> RunRecord:
    """A fully populated record without paying for a simulation."""
    return RunRecord(
        key=key if key is not None else f"{index:064x}",
        spec="rpcc-sc",
        scenario="standard",
        seed=index,
        sim_time=120.0,
        transmissions=1000 + index,
        messages=500 + index,
        bytes_on_air=2**40 + index,  # exceeds 32 bits: needs real int64
        queries_issued=60,
        queries_answered=59,
        queries_unanswered=1,
        mean_latency=0.1 + index * 1e-9,  # sub-ulp steps must round trip
        mean_hit_latency=0.05,
        p95_latency=math.inf,  # struct-packed scalars carry inf exactly
        local_answer_ratio=1 / 3,
        stale_ratio=0.0123456789012345678,
        violation_ratio=0.0,
        mean_staleness_age=7.5,
        total_queries=60,
        total_updates=12,
        energy_consumed=123.456,
        mean_battery_fraction=0.87,
        wall_clock_seconds=0.25,
        events_processed=4321,
        core="scalar",
        transmissions_by_type={"QueryRequest": 30, "POLL": 12},
        counters={"relay_promotions": 3},
        fault_stats={"availability": 0.991234567890123},
        topology_stats={"snapshots_built": 40},
        relay_samples=[[60.0, 4], [120.0, 5]],
        traffic_series={"name": "transmissions",
                        "times": [60.0, 120.0], "values": [10.0, 12.5]},
    )


def result_fingerprint(result):
    return (
        result.spec,
        result.scenario,
        result.config,
        result.summary,
        result.total_queries,
        result.total_updates,
        result.relay_samples,
        result.traffic_series.times,
        result.traffic_series.values,
        result.energy_consumed,
        result.mean_battery_fraction,
        result.wall_clock_seconds,
        result.events_processed,
        result.topology_stats,
        result.fault_stats,
        result.core,
    )


class TestBatchCodec:
    def test_round_trip_preserves_every_column(self):
        records = [synthetic_record(i) for i in range(5)]
        assert decode_batch(encode_batch(records)) == records

    def test_single_record_batch(self):
        record = synthetic_record(7)
        assert decode_batch(encode_batch([record])) == [record]

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_batch([])

    def test_version_mismatch_detected(self):
        blob = bytearray(encode_batch([synthetic_record()]))
        (header_len,) = __import__("struct").unpack_from("<I", blob, 0)
        header = json.loads(bytes(blob[4:4 + header_len]))
        header["version"] = STORE_FORMAT_VERSION + 1
        raw = json.dumps(header).encode()
        with pytest.raises(StoreFormatError):
            decode_batch(
                __import__("struct").pack("<I", len(raw)) + raw
                + bytes(blob[4 + header_len:])
            )

    def test_truncated_batch_detected(self):
        blob = encode_batch([synthetic_record()])
        with pytest.raises(StoreFormatError):
            decode_batch(blob[: len(blob) - 8])

    def test_schema_and_record_fields_agree(self):
        from dataclasses import fields

        assert [f.name for f in fields(RunRecord)] == [
            name for name, _ in RECORD_SCHEMA
        ]


class TestResultRoundTrip:
    def test_simulation_result_rebuilds_bit_identically(self):
        config = tiny_config()
        result = run_simulation(config, "rpcc-sc")
        key = run_key(config, "rpcc-sc")
        record = RunRecord.from_result(key, result)
        rebuilt = record.to_result(config)
        assert result_fingerprint(rebuilt) == result_fingerprint(result)

    def test_round_trip_survives_the_codec(self):
        config = tiny_config(seed=13)
        result = run_simulation(config, "push")
        record = RunRecord.from_result(run_key(config, "push"), result)
        (decoded,) = decode_batch(encode_batch([record]))
        assert result_fingerprint(decoded.to_result(config)) == (
            result_fingerprint(result)
        )


class TestStoreReadWrite:
    def test_writer_commits_and_reader_merges(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with store.writer(batch_size=2) as writer:
            for i in range(5):
                writer.add(synthetic_record(i))
        assert len(store) == 5
        assert store.keys() == {f"{i:064x}" for i in range(5)}
        assert store.get(f"{3:064x}").seed == 3
        assert store.get("f" * 64) is None
        seeds = sorted(record.seed for record in store.records())
        assert seeds == [0, 1, 2, 3, 4]

    def test_fresh_handle_sees_committed_data(self, tmp_path):
        with ResultStore(tmp_path / "store").writer() as writer:
            writer.add(synthetic_record(1))
        reader = ResultStore(tmp_path / "store")
        assert f"{1:064x}" in reader

    def test_get_many_reads_each_batch_once(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with store.writer(batch_size=10) as writer:
            for i in range(10):
                writer.add(synthetic_record(i))
        reader = ResultStore(tmp_path / "store")
        found = reader.get_many([f"{i:064x}" for i in range(10)])
        assert len(found) == 10
        assert reader.stats["batches_read"] == 1

    def test_last_writer_wins_across_generations(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "a" * 64
        with store.writer(writer_id="w1") as writer:
            writer.add(synthetic_record(1, key=key))
        with store.writer(writer_id="w2") as writer:
            writer.add(synthetic_record(2, key=key))
        assert len(store) == 1
        assert store.get(key).seed == 2
        assert [r.seed for r in store.records()] == [2]

    def test_concurrent_writers_use_distinct_segments(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = store.writer(writer_id="wa")
        second = store.writer(writer_id="wb")
        first.add(synthetic_record(1))
        first.flush()
        second.add(synthetic_record(2))
        second.flush()
        first.close()
        second.close()
        segments = sorted(p.name for p in (tmp_path / "store").glob("*.seg"))
        assert len(segments) == 2
        assert len(store) == 2

    def test_writer_validation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ConfigurationError):
            store.writer(batch_size=0)
        with pytest.raises(ConfigurationError):
            store.writer(writer_id="../evil")
        writer = store.writer()
        writer.close()
        with pytest.raises(ConfigurationError):
            writer.add(synthetic_record())

    def test_empty_store_reads_cleanly(self, tmp_path):
        store = ResultStore(tmp_path / "missing")
        assert len(store) == 0
        assert store.keys() == frozenset()
        assert list(store.records()) == []


class TestCrashSafety:
    def test_uncommitted_tail_bytes_are_invisible(self, tmp_path):
        """A crash after the segment append but before the sidecar rename
        leaves trailing bytes no reader ever sees."""
        store = ResultStore(tmp_path / "store")
        with store.writer() as writer:
            writer.add(synthetic_record(1))
        (segment,) = (tmp_path / "store").glob("*.seg")
        with open(segment, "ab") as handle:
            handle.write(b"\x00garbage-from-a-crashed-append\xff" * 10)
        reader = ResultStore(tmp_path / "store")
        assert len(reader) == 1
        assert reader.get(f"{1:064x}").seed == 1

    def test_segment_without_sidecar_is_invisible(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with store.writer() as writer:
            writer.add(synthetic_record(1))
        (tmp_path / "store" / "seg-000099-w9.seg").write_bytes(b"partial")
        reader = ResultStore(tmp_path / "store")
        assert len(reader) == 1

    def test_torn_sidecar_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with store.writer() as writer:
            writer.add(synthetic_record(1))
        (tmp_path / "store" / "seg-000099-w9.idx").write_text("{not json")
        reader = ResultStore(tmp_path / "store")
        assert len(reader) == 1

    def test_unflushed_records_are_not_committed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        writer = store.writer(batch_size=100)
        writer.add(synthetic_record(1))
        # no flush/close: simulated crash with a dirty buffer
        assert len(ResultStore(tmp_path / "store")) == 0
        writer.close()
        assert len(ResultStore(tmp_path / "store")) == 1

    def test_future_format_sidecar_is_rejected_loudly(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with store.writer() as writer:
            writer.add(synthetic_record(1))
        (sidecar,) = (tmp_path / "store").glob("*.idx")
        data = json.loads(sidecar.read_text())
        data["format"] = STORE_FORMAT_VERSION + 1
        sidecar.write_text(json.dumps(data))
        with pytest.raises(StoreFormatError):
            ResultStore(tmp_path / "store").keys()


class TestSharding:
    def test_stable_and_in_range(self):
        keys = [f"{i:064x}" for i in range(200)]
        for shards in (1, 2, 3, 8):
            assignment = [shard_of(key, shards) for key in keys]
            assert assignment == [shard_of(key, shards) for key in keys]
            assert all(0 <= shard < shards for shard in assignment)

    def test_spreads_real_keys(self):
        keys = [
            run_key(tiny_config(seed=seed), spec)
            for seed in range(10)
            for spec in ("push", "pull")
        ]
        used = {shard_of(key, 4) for key in keys}
        assert len(used) >= 3, "20 content addresses should hit >= 3 of 4 shards"

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard_of("a" * 64, 0)


class TestEnvJobs:
    def test_default_when_unset_or_blank(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_JOBS", raising=False)
        assert env_jobs("REPRO_TEST_JOBS") == 1
        assert env_jobs("REPRO_TEST_JOBS", default=4) == 4
        monkeypatch.setenv("REPRO_TEST_JOBS", "   ")
        assert env_jobs("REPRO_TEST_JOBS") == 1

    def test_parses_positive_integers(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_JOBS", "8")
        assert env_jobs("REPRO_TEST_JOBS") == 8

    @pytest.mark.parametrize("bad", ["0", "-3", "two", "1.5"])
    def test_rejects_invalid_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_TEST_JOBS", bad)
        with pytest.raises(ConfigurationError):
            env_jobs("REPRO_TEST_JOBS")
