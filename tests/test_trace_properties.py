"""Property tests: the invariants hold under packet loss and node churn.

The knowledge-relative formulation of the strong/Δ contracts is what
makes this possible — a lost invalidation means the node never *knew*,
so an honest stale serve is not a violation, while an invalidation that
*was* delivered still binds the node.  These runs hammer the protocols
with per-hop loss and aggressive on/off churn; every trace must still
replay cleanly through the checker.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.obs import InvariantChecker, ListSink, TraceBus

SPECS = ("push", "pull", "rpcc-sc", "rpcc-dc")
SEEDS = (3, 13)
MATRIX = [(spec, seed) for spec in SPECS for seed in SEEDS]


def _harsh_config(seed: int) -> SimulationConfig:
    return SimulationConfig(
        n_peers=20,
        terrain_width=1000.0,
        terrain_height=1000.0,
        sim_time=180.0,
        warmup=60.0,
        seed=seed,
        loss_rate=0.06,      # ~6% per-hop packet loss
        mean_online=220.0,   # aggressive churn: frequent disconnections
        mean_offline=50.0,
    )


def _traced_run(config: SimulationConfig, spec: str):
    bus = TraceBus()
    sink = bus.add_sink(ListSink())
    result = build_simulation(config, spec, "standard", trace=bus).run()
    bus.close()
    return result, sink.events


@pytest.mark.parametrize("spec,seed", MATRIX, ids=[f"{s}-s{d}" for s, d in MATRIX])
def test_invariants_survive_loss_and_churn(spec, seed):
    result, events = _traced_run(_harsh_config(seed), spec)
    report = InvariantChecker(delta=result.config.ttp).feed_all(events).finish()
    assert report.ok, f"{spec} seed={seed}:\n{report.format()}"
    assert report.reads_checked > 0


def test_harsh_runs_actually_exercise_loss_and_churn():
    """Guard against the property test silently testing a calm network."""
    _, events = _traced_run(_harsh_config(3), "rpcc-sc")
    counts = Counter(e.etype for e in events)
    assert counts["node_offline"] > 0, "churn never fired"
    assert counts["node_online"] > 0
    assert counts["invalidation_received"] > 0


def test_loss_rate_zero_is_bit_identical_to_the_lossless_path():
    """loss_rate=0 must not perturb the RNG stream layout of old runs."""
    base = SimulationConfig(
        n_peers=12, terrain_width=800.0, terrain_height=800.0,
        sim_time=120.0, warmup=30.0, seed=5,
    )
    explicit = base.with_overrides(loss_rate=0.0)
    first = build_simulation(base, "rpcc-sc", "standard").run()
    second = build_simulation(explicit, "rpcc-sc", "standard").run()
    assert first.summary == second.summary


def test_loss_rate_validation():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        SimulationConfig(loss_rate=1.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(loss_rate=-0.1)
    assert SimulationConfig(loss_rate=0.5).loss_rate == 0.5
