"""Tests for the UIR push extension (Cao'00-style reports between IRs)."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.errors import ProtocolError
from repro.extensions.uir_push import UIRPushStrategy, UIRReport

from tests.conftest import line_positions, make_world


def uir_world(uir_count=3, ttn=120.0, count=4):
    return make_world(
        line_positions(count),
        lambda ctx: UIRPushStrategy(ctx, uir_count=uir_count, ttn=ttn, ttl=8),
    )


class TestUIRPush:
    def test_uir_count_validated(self):
        world = uir_world()
        with pytest.raises(ProtocolError):
            UIRPushStrategy(world.context, uir_count=0)

    def test_sub_interval(self):
        world = uir_world(uir_count=3, ttn=120.0)
        assert world.strategy.sub_interval == pytest.approx(30.0)

    def test_reports_alternate_uir_and_ir(self):
        world = uir_world(uir_count=3, ttn=120.0, count=2)
        world.strategy.start()
        world.run(250.0)
        uirs = world.metrics.traffic.messages("UIRReport")
        full = world.metrics.traffic.messages("PushInvalidation")
        # Per source over two TTN cycles: 6 UIRs and 2 full IRs.
        assert uirs > full > 0
        assert uirs == pytest.approx(3 * full, abs=2 * 3)

    def test_latency_shrinks_with_uirs(self):
        world = uir_world(uir_count=3, ttn=120.0)
        world.strategy.start()
        world.give_copy(0, 1)
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(40.0)
        # Answered by the first sub-report (<= 30 s) instead of a full TTN.
        assert record.answered
        assert record.latency <= 31.0

    def test_uir_validates_stale_copy(self):
        world = uir_world(uir_count=3, ttn=120.0)
        world.strategy.start()
        world.give_copy(0, 1, version=0)
        world.update_item(1)
        record = world.agent(0).local_query(1, ConsistencyLevel.STRONG)
        world.run(60.0)
        assert record.answered
        assert record.served_version == 1

    def test_uir_is_push_invalidation_subtype(self):
        report = UIRReport(sender=1, item_id=2, version=3)
        from repro.consistency.messages import PushInvalidation

        assert isinstance(report, PushInvalidation)
        assert report.type_name == "UIRReport"

    def test_traffic_scales_with_uir_count(self):
        light = uir_world(uir_count=1, ttn=120.0, count=2)
        light.strategy.start()
        light.run(500.0)
        heavy = uir_world(uir_count=5, ttn=120.0, count=2)
        heavy.strategy.start()
        heavy.run(500.0)
        light_tx = light.metrics.traffic.transmissions(
            "PushInvalidation", "UIRReport"
        )
        heavy_tx = heavy.metrics.traffic.transmissions(
            "PushInvalidation", "UIRReport"
        )
        assert heavy_tx > 2 * light_tx
