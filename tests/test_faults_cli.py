"""CLI surface for fault injection: --faults / --loss-rate on run and
trace, plus the --delta / --slack checker knobs on trace."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import _config, build_parser, main

EXAMPLES = Path(__file__).parent.parent / "examples" / "faults"
BASE = ["--sim-time", "120", "--warmup", "30", "--seed", "3"]


@pytest.fixture(autouse=True)
def _isolate_cache(tmp_path, monkeypatch):
    """Keep CLI result caches out of the repo during tests."""
    monkeypatch.chdir(tmp_path)


def test_parser_accepts_fault_flags_on_run_and_trace():
    parser = build_parser()
    for command in ("run", "trace"):
        args = parser.parse_args([
            command, "rpcc-sc",
            "--loss-rate", "0.05",
            "--faults", "plan.json",
        ])
        assert args.loss_rate == 0.05
        assert args.faults == "plan.json"


def test_parser_accepts_checker_knobs_on_trace():
    parser = build_parser()
    args = parser.parse_args(["trace", "pull", "--delta", "90", "--slack", "2.5"])
    assert args.delta == 90.0
    assert args.slack == 2.5
    # run has no checker, so the knobs must not leak onto it.
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "pull", "--delta", "90"])


def test_loss_rate_and_faults_reach_the_config():
    parser = build_parser()
    args = parser.parse_args(BASE + [
        "run", "push",
        "--loss-rate", "0.1",
        "--faults", str(EXAMPLES / "partition.json"),
    ])
    config = _config(args)
    assert config.loss_rate == 0.1
    assert config.faults is not None
    assert config.faults.name == "east-west" or config.faults.partitions


def test_flags_default_to_a_fault_free_config():
    parser = build_parser()
    config = _config(parser.parse_args(BASE + ["run", "push"]))
    assert config.loss_rate == 0.0
    assert config.faults is None


def test_trace_with_fault_plan_prints_degradation_and_passes(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main(BASE + [
        "trace", "rpcc-sc",
        "--faults", str(EXAMPLES / "partition.json"),
        "--out", str(out),
    ])
    captured = capsys.readouterr().out
    assert code == 0, captured
    assert "degradation:" in captured
    assert "invariants: OK" in captured


def test_trace_checker_knobs_are_applied(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main(BASE + [
        "trace", "pull",
        "--delta", "500", "--slack", "3.0",
        "--out", str(out),
    ])
    assert code == 0
    assert "invariants: OK" in capsys.readouterr().out


def test_run_with_fault_plan_prints_degradation(capsys):
    code = main(BASE + [
        "--no-cache", "run", "rpcc-dc",
        "--faults", str(EXAMPLES / "bursty_loss.json"),
    ])
    captured = capsys.readouterr().out
    assert code in (0, None)
    assert "degradation:" in captured


def test_run_without_faults_has_no_degradation_footer(capsys):
    code = main(BASE + ["--no-cache", "run", "push"])
    assert code in (0, None)
    assert "degradation:" not in capsys.readouterr().out
