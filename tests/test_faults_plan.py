"""FaultPlan serialization, validation, and result-cache integration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import run_key
from repro.faults import (
    BurstyLoss,
    Crash,
    DelayJitter,
    FaultPlan,
    Partition,
    RelayKill,
)

FULL_PLAN = FaultPlan(
    name="everything",
    description="one of each kind",
    faults=(
        BurstyLoss(start=10.0, end=50.0, p_good_bad=0.1, loss_bad=0.6),
        Partition(start=20.0, duration=30.0, mode="spatial", axis="y", frac=0.4),
        Partition(start=60.0, duration=10.0, mode="nodes", nodes=(1, 2), name="island"),
        Crash(node=3, at=25.0, down_for=15.0, wipe_cache=True),
        RelayKill(at=40.0, count=2, down_for=20.0, item=5),
        DelayJitter(start=0.0, max_delay=0.02, duplicate_rate=0.05),
    ),
)


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        assert FaultPlan.from_json(FULL_PLAN.to_json()) == FULL_PLAN

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        FULL_PLAN.save(path)
        assert FaultPlan.load(path) == FULL_PLAN

    def test_kind_tags_are_stable(self):
        kinds = [entry["kind"] for entry in FULL_PLAN.to_dict()["faults"]]
        assert kinds == [
            "bursty_loss", "partition", "partition",
            "crash", "relay_kill", "delay_jitter",
        ]

    def test_node_lists_become_tuples(self):
        plan = FaultPlan.from_dict({
            "faults": [
                {"kind": "partition", "mode": "nodes", "nodes": [4, 5]},
            ]
        })
        assert plan.partitions[0].nodes == (4, 5)

    def test_shipped_example_plans_load(self):
        import pathlib

        examples = pathlib.Path(__file__).parent.parent / "examples" / "faults"
        plans = sorted(examples.glob("*.json"))
        assert len(plans) >= 4
        for path in plans:
            plan = FaultPlan.load(path)
            assert not plan.is_empty
            assert plan.name


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kind"):
            FaultPlan.from_dict({"faults": [{"kind": "meteor_strike"}]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="crash"):
            FaultPlan.from_dict({"faults": [{"kind": "crash", "nodez": 1}]})

    def test_faults_must_be_a_list(self):
        with pytest.raises(ConfigurationError, match="must be a list"):
            FaultPlan.from_dict({"faults": "oops"})

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            FaultPlan.load(tmp_path / "nope.json")

    @pytest.mark.parametrize("bad", [
        lambda: BurstyLoss(start=-1.0),
        lambda: BurstyLoss(start=10.0, end=5.0),
        lambda: BurstyLoss(p_bad_good=1.5),
        lambda: Partition(duration=0.0),
        lambda: Partition(mode="diagonal"),
        lambda: Partition(mode="spatial", frac=1.0),
        lambda: Partition(mode="spatial", axis="z"),
        lambda: Partition(mode="nodes", nodes=()),
        lambda: Crash(node=-1),
        lambda: Crash(down_for=0.0),
        lambda: RelayKill(count=0),
        lambda: DelayJitter(max_delay=-0.1),
        lambda: DelayJitter(duplicate_rate=1.0),
    ])
    def test_spec_validation(self, bad):
        with pytest.raises(ConfigurationError):
            bad()

    def test_config_rejects_non_plan_faults(self):
        with pytest.raises(ConfigurationError, match="FaultPlan"):
            SimulationConfig(faults={"kind": "crash"})

    @pytest.mark.parametrize("field,value", [
        ("backoff_factor", 0.5),
        ("backoff_cap", 0.0),
        ("backoff_jitter", 1.0),
    ])
    def test_config_rejects_bad_backoff(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            SimulationConfig(**{field: value})


class TestTypedViews:
    def test_of_kind_partitions(self):
        assert len(FULL_PLAN.partitions) == 2
        assert len(FULL_PLAN.crashes) == 1
        assert len(FULL_PLAN.relay_kills) == 1
        assert len(FULL_PLAN.bursty_loss) == 1
        assert len(FULL_PLAN.jitters) == 1

    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FULL_PLAN.is_empty

    def test_partition_end(self):
        assert Partition(start=20.0, duration=30.0).end == 50.0


class TestCacheKey:
    def test_plan_changes_the_run_key(self):
        base = SimulationConfig(seed=1)
        faulted = SimulationConfig(seed=1, faults=FULL_PLAN)
        assert run_key(base, "push", "standard") != run_key(faulted, "push", "standard")

    def test_different_plans_differ(self):
        a = SimulationConfig(faults=FaultPlan(faults=(Crash(node=1, at=5.0),)))
        b = SimulationConfig(faults=FaultPlan(faults=(Crash(node=2, at=5.0),)))
        assert run_key(a, "push", "standard") != run_key(b, "push", "standard")

    def test_equal_plans_share_the_key(self):
        a = SimulationConfig(faults=FaultPlan.from_json(FULL_PLAN.to_json()))
        b = SimulationConfig(faults=FULL_PLAN)
        assert run_key(a, "push", "standard") == run_key(b, "push", "standard")

    def test_configs_with_plans_are_picklable(self):
        import pickle

        config = SimulationConfig(faults=FULL_PLAN)
        clone = pickle.loads(pickle.dumps(config))
        assert clone.faults == FULL_PLAN
