"""Property tests: the timer-wheel engine is bit-identical to the heap.

Every example drives two :class:`~repro.sim.engine.Simulator` instances —
one on the hybrid wheel engine (``wheel=True``), one on the pure binary
heap (``wheel=False``) — through the *same* randomized interleaving of
``schedule`` / ``post`` / ``cancel`` / ``reschedule`` / ``run_until``
operations and asserts the observable outcomes are equal and in the same
order: the full ``(time, tag)`` fire log, the live pending counter after
every operation, and the final clock.

Delays are drawn from a mixture that deliberately straddles every filing
boundary of the wheel: zero delays (the current near-heap slot), the
fine wheel (sub-64 s), exact 0.25 s slot-width multiples (bucket-edge
arithmetic), the coarse wheel (64 s .. ~4.5 h) and the far heap beyond
the 16384 s wheel horizon.  Ties in time are frequent by construction,
so the ``(time, seq)`` tie-break is exercised constantly.

A second suite drives the real timer helpers (:class:`CountdownTimer`,
:class:`PeriodicTimer`) through randomized renew/stop/restart churn and
asserts the wheel absorbs all of it in place: the far-heap tombstone and
compaction counters stay **zero**, which is the structural claim behind
the zero-allocation renew fast path.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.timers import CountdownTimer, PeriodicTimer

# Delays straddling every filing region of the hybrid engine.  The wheel
# horizon sits at ~16384 s ahead of the cursor, so the last band forces
# far-heap filing and the mid bands exercise both wheel levels.
_DELAYS = st.one_of(
    st.just(0.0),
    st.integers(min_value=0, max_value=16).map(lambda k: k * 0.25),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=60.0, max_value=70.0, allow_nan=False),
    st.floats(min_value=5_000.0, max_value=20_000.0, allow_nan=False),
    st.floats(min_value=16_000.0, max_value=40_000.0, allow_nan=False),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("post"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(
            st.just("reschedule"),
            st.integers(min_value=0, max_value=10_000),
            _DELAYS,
        ),
        st.tuples(
            st.just("run_until"),
            st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        ),
    ),
    min_size=1,
    max_size=60,
)


class _Arm:
    """One engine under test: a simulator, its handles and its fire log."""

    def __init__(self, wheel: bool) -> None:
        self.sim = Simulator(wheel=wheel)
        self.handles = []
        self.log = []

    def fire(self, tag: int) -> None:
        self.log.append((self.sim.now, tag))


def _apply(arm: _Arm, op, tag: int) -> None:
    sim = arm.sim
    kind = op[0]
    if kind == "schedule":
        arm.handles.append(sim.schedule(op[1], arm.fire, tag))
    elif kind == "post":
        # Pooled fire-and-forget: the handle must not be retained.
        sim.post(op[1], arm.fire, tag)
    elif kind == "cancel":
        if arm.handles:
            arm.handles[op[1] % len(arm.handles)].cancel()
    elif kind == "reschedule":
        if arm.handles:
            index = op[1] % len(arm.handles)
            arm.handles[index] = sim.reschedule(arm.handles[index], op[2])
    elif kind == "run_until":
        sim.run_until(sim.now + op[1])
    else:  # pragma: no cover - strategy and dispatch are in lockstep
        raise AssertionError(f"unknown op {kind!r}")


@settings(max_examples=80, deadline=None)
@given(ops=_OPS)
def test_wheel_and_heap_fire_identically(ops):
    wheel, heap = _Arm(wheel=True), _Arm(wheel=False)
    tag = 0
    for op in ops:
        if op[0] in ("schedule", "post", "reschedule"):
            tag += 1
        _apply(wheel, op, tag)
        _apply(heap, op, tag)
        assert wheel.sim.pending_events == heap.sim.pending_events
        assert wheel.sim.now == heap.sim.now
    assert wheel.sim.run() == heap.sim.run()
    assert wheel.log == heap.log
    assert wheel.sim.now == heap.sim.now
    assert wheel.sim.pending_events == heap.sim.pending_events == 0


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("renew"),
                st.floats(min_value=0.0, max_value=900.0, allow_nan=False),
            ),
            st.tuples(st.just("expire_now")),
            st.tuples(st.just("stop")),
            st.tuples(st.just("start")),
            st.tuples(
                st.just("run_until"),
                st.floats(min_value=0.0, max_value=240.0, allow_nan=False),
            ),
        ),
        min_size=1,
        max_size=50,
    ),
    duration=st.floats(min_value=0.5, max_value=600.0, allow_nan=False),
    interval=st.floats(min_value=0.5, max_value=120.0, allow_nan=False),
)
def test_wheel_timers_never_tombstone(ops, duration, interval):
    # CountdownTimer renew churn and PeriodicTimer stop/start churn both
    # stay entirely inside the wheel: no far-heap tombstones, no heap
    # compactions, however the operations interleave.
    sim = Simulator(wheel=True)
    expirations = []
    countdown = CountdownTimer(sim, duration, on_expire=lambda: expirations.append(sim.now))
    periodic = PeriodicTimer(sim, interval, lambda: None)
    periodic.start()
    for op in ops:
        if op[0] == "renew":
            countdown.renew(op[1])
        elif op[0] == "expire_now":
            countdown.expire_now()
        elif op[0] == "stop":
            periodic.stop()
        elif op[0] == "start":
            periodic.start()
        else:
            sim.run_until(sim.now + op[1])
        assert sim.tombstones == 0
        assert sim.heap_compactions == 0
    periodic.stop()
    countdown.expire_now()
    sim.run()
    assert sim.tombstones == 0
    assert sim.heap_compactions == 0
    # The countdown fires in time order and nothing is left armed.
    assert expirations == sorted(expirations)
    assert sim.pending_events == 0
