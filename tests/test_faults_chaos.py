"""The checker-gated chaos suite plus targeted RPCC hardening tests.

Every shipped example fault plan runs against every strategy spec and two
seeds at golden scale; the invariant checker must hold on each trace.
``switch_interval`` is shortened so relay promotion happens inside the
window — otherwise relay kills would be vacuous no-ops.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.faults import FaultPlan
from repro.obs import InvariantChecker, ListSink, TraceBus

from tests.conftest import line_positions, make_eligible, make_world

EXAMPLES = Path(__file__).parent.parent / "examples" / "faults"
PLANS = ("partition", "bursty_loss", "relay_kill", "crash_reboot")
SPECS = ("push", "pull", "rpcc-sc", "rpcc-dc", "rpcc-wc")
SEEDS = (7, 11)
MATRIX = [
    (plan, spec, seed) for plan in PLANS for spec in SPECS for seed in SEEDS
]


def _chaos_config(seed: int, plan: FaultPlan) -> SimulationConfig:
    return SimulationConfig(
        n_peers=20,
        terrain_width=1000.0,
        terrain_height=1000.0,
        sim_time=180.0,
        warmup=60.0,
        seed=seed,
        switch_interval=60.0,  # lets relays form inside the short window
        faults=plan,
    )


def _run_traced(config: SimulationConfig, spec: str):
    bus = TraceBus()
    sink = bus.add_sink(ListSink())
    result = build_simulation(config, spec, "standard", trace=bus).run()
    bus.close()
    return result, sink.events


@pytest.mark.parametrize(
    "plan_name,spec,seed", MATRIX,
    ids=[f"{p}-{s}-s{d}" for p, s, d in MATRIX],
)
def test_chaos_suite_holds_the_invariants(plan_name, spec, seed):
    plan = FaultPlan.load(EXAMPLES / f"{plan_name}.json")
    config = _chaos_config(seed, plan)
    result, events = _run_traced(config, spec)
    report = InvariantChecker(delta=config.ttp).feed_all(events).finish()
    assert report.ok, f"{plan_name}/{spec}/seed{seed}:\n{report.format()}"
    assert report.reads_checked > 0
    assert result.summary.queries_answered > 0  # degraded, not dead


def test_relay_kill_plan_actually_kills_relays():
    plan = FaultPlan.load(EXAMPLES / "relay_kill.json")
    result, events = _run_traced(_chaos_config(7, plan), "rpcc-sc")
    counters = result.summary.counters
    assert counters.get("fault_relay_kills", 0) > 0
    assert any(e.etype == "fault_relay_kill" for e in events)
    # Reconnect hardening fired: rebooted relays refreshed before vouching.
    assert counters.get("rpcc_relay_resync", 0) > 0


def test_partition_plan_reports_degradation():
    plan = FaultPlan.load(EXAMPLES / "partition.json")
    result, _ = _run_traced(_chaos_config(7, plan), "rpcc-sc")
    stats = result.fault_stats
    assert stats["partition_seconds"] == pytest.approx(60.0)
    assert 0.0 < stats["availability"] <= 1.0
    assert stats["heals_observed"] == 1


def test_disabled_faults_are_bit_identical():
    """faults=None and an empty plan both keep the pre-fault event stream."""
    def digest(config):
        result, events = _run_traced(config, "rpcc-sc")
        stripped = [
            {k: v for k, v in e.to_dict().items() if not k.endswith("_id")}
            for e in events
        ]
        return result.summary.transmissions, stripped

    base = SimulationConfig(
        n_peers=12, terrain_width=800.0, terrain_height=800.0,
        sim_time=90.0, warmup=30.0, seed=5,
    )
    assert digest(base) == digest(base.with_overrides(faults=FaultPlan()))


# ----------------------------------------------------------------------
# Targeted RPCC hardening: relay crash mid-TTR (the satellite scenario)
# ----------------------------------------------------------------------

def _hardened_world(count=5):
    config = RPCCConfig(
        ttn=100.0, ttr=75.0, ttp=200.0, poll_timeout=2.0,
        source_poll_timeout=2.0, grace_timeout=6.0,
        resync_on_reconnect=True, fast_relay_failover=True,
    )
    return make_world(line_positions(count), lambda ctx: RPCCStrategy(ctx, config))


def _promote(world, node_id, item_id):
    world.give_copy(node_id, item_id)
    make_eligible(world.host(node_id))


class TestRelayCrashMidTTR:
    def test_cache_peer_reregisters_with_a_surviving_relay(self):
        world = _hardened_world()
        _promote(world, 1, 0)
        _promote(world, 2, 0)
        world.give_copy(3, 0)
        world.strategy.start()
        world.update_item(0)
        world.run(110.0)  # both candidates promoted via the TTN cycle
        assert world.agent(1).roles.is_relay(0)
        assert world.agent(2).roles.is_relay(0)
        # A fresh relay opens its TTR window at the *next* INVALIDATION
        # (promotion alone vouches for nothing): run one more TTN cycle.
        world.run(100.0)

        # First poll: node 3 remembers whichever relay answered.
        record = world.agent(3).local_query(0, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered
        remembered = world.agent(3).cache_peer._known_relay[0]
        assert remembered in (1, 2)
        survivor = 2 if remembered == 1 else 1

        # Crash the remembered relay mid-TTR (its window is still open).
        assert world.agent(remembered).relay.ttr_remaining(0) > 0
        world.host(remembered).crash()

        record = world.agent(3).local_query(0, ConsistencyLevel.STRONG)
        world.run(10.0)
        assert record.answered
        assert world.metrics.counter("rpcc_forced_stale") == 0  # validated
        # The discovery flood found the survivor and re-registered it.
        assert world.agent(3).cache_peer._known_relay[0] == survivor

    def test_all_relays_dead_falls_back_to_source_poll(self):
        # poll_ttl=1 keeps the discovery flood away from the source, so
        # losing the only relay forces the wide-broadcast fallback stage.
        # The relay sits at the far end of the line (node 3) so crashing
        # it does not also sever the route back to the source (node 0).
        config = RPCCConfig(
            ttn=100.0, ttr=75.0, ttp=200.0, poll_timeout=2.0,
            source_poll_timeout=2.0, grace_timeout=6.0, poll_ttl=1,
            resync_on_reconnect=True, fast_relay_failover=True,
        )
        world = make_world(
            line_positions(5), lambda ctx: RPCCStrategy(ctx, config)
        )
        _promote(world, 3, 0)
        world.give_copy(2, 0)
        world.strategy.start()
        world.update_item(0)
        world.run(110.0)
        assert world.agent(3).roles.is_relay(0)
        world.run(100.0)  # open the relay's TTR window

        record = world.agent(2).local_query(0, ConsistencyLevel.STRONG)
        world.run(5.0)
        assert record.answered
        assert world.agent(2).cache_peer._known_relay[0] == 3
        world.host(3).crash()

        # The only relay is dead: the broadcast stage reaches the source,
        # which answers the poll directly — RPCC degenerates into pull.
        record = world.agent(2).local_query(0, ConsistencyLevel.STRONG)
        world.run(15.0)
        assert record.answered
        assert world.metrics.counter("rpcc_forced_stale") == 0  # validated
        assert world.metrics.counter("rpcc_poll_fallback_source") > 0

    def test_fast_failover_drops_an_unroutable_relay(self, monkeypatch):
        world = _hardened_world()
        _promote(world, 1, 0)
        world.give_copy(3, 0)
        world.strategy.start()
        world.update_item(0)
        world.run(110.0)

        cache_peer = world.agent(3).cache_peer
        cache_peer._known_relay[0] = 1
        world.host(1).crash()
        # Simulate the stale-snapshot race: the reachability pre-check
        # still believes in the dead relay, so the unicast itself fails.
        monkeypatch.setattr(
            type(cache_peer), "_relay_in_reach", lambda self, relay_id: True
        )
        record = world.agent(3).local_query(0, ConsistencyLevel.STRONG)
        world.run(1.0)  # far less than the 2 s poll_timeout
        assert world.metrics.counter("rpcc_relay_failover_fast") == 1
        assert 0 not in cache_peer._known_relay
        world.run(15.0)
        assert record.answered

    def test_rebooted_relay_resyncs_instead_of_vouching_stale(self):
        world = _hardened_world()
        _promote(world, 1, 0)
        world.give_copy(2, 0)
        world.strategy.start()
        world.update_item(0)
        world.run(110.0)
        assert world.agent(1).roles.is_relay(0)
        world.run(95.0)  # let the next TTN renew the relay's TTR window

        # Crash the relay with its TTR open; the source updates meanwhile,
        # so the copy the relay holds is now stale.
        assert world.agent(1).relay.ttr_remaining(0) > 0
        world.host(1).crash()
        world.update_item(0)
        stale_version = world.host(1).store.peek(0).version
        world.host(1).reboot()
        world.run(1.0)
        # Resync closed the pre-outage TTR window and refreshed.
        assert world.metrics.counter("rpcc_relay_resync") == 1
        world.run(5.0)
        assert world.host(1).store.peek(0).version > stale_version

    def test_resync_disabled_keeps_the_stale_window_open(self):
        config = RPCCConfig(
            ttn=100.0, ttr=75.0, ttp=200.0, resync_on_reconnect=False,
        )
        world = make_world(
            line_positions(5), lambda ctx: RPCCStrategy(ctx, config)
        )
        _promote(world, 1, 0)
        world.strategy.start()
        world.update_item(0)
        world.run(110.0)
        world.run(95.0)
        assert world.agent(1).relay.ttr_remaining(0) > 0
        world.host(1).crash()
        world.update_item(0)
        world.host(1).reboot()
        world.run(1.0)
        # Paper-faithful behaviour: nothing expires until INVALIDATION.
        assert world.metrics.counter("rpcc_relay_resync") == 0
        assert world.agent(1).relay.ttr_remaining(0) > 0
