"""Campaign resume semantics against the columnar result store.

The contract: kill a campaign mid-flight and restart it against the same
store, and (1) only the incomplete points re-run, (2) the merged results
— and any aggregate/figure data built from them — are bit-identical to a
single-shot campaign that never failed.  Sharded execution must likewise
be invisible to the science.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import (
    CampaignExecutor,
    CampaignRunError,
    ResultCache,
    run_key,
)
from repro.experiments.figures.base import run_axis_sweep
from repro.experiments.stats import aggregate
from repro.experiments.store import ResultStore
from repro.experiments.transport import ShardedTransport


def tiny_config(**kwargs):
    defaults = dict(
        n_peers=10,
        sim_time=120.0,
        warmup=0.0,
        seed=11,
        terrain_width=800.0,
        terrain_height=800.0,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


GOOD_TASKS = [
    (tiny_config(seed=seed), spec, "standard")
    for seed in (11, 12)
    for spec in ("push", "rpcc-sc")
]


def result_fingerprint(result):
    return (
        result.spec,
        result.scenario,
        result.config,
        result.summary,
        result.total_queries,
        result.total_updates,
        result.relay_samples,
        result.traffic_series.times,
        result.traffic_series.values,
        result.energy_consumed,
        result.mean_battery_fraction,
        result.topology_stats,
        result.fault_stats,
        result.core,
    )


class TestResume:
    def test_killed_campaign_resumes_from_completed_points(self, tmp_path):
        single_shot = CampaignExecutor().run_many(GOOD_TASKS)

        # Mid-flight failure: the third point is unrunnable, so the serial
        # transport completes exactly two points before the campaign dies.
        store = ResultStore(tmp_path / "store")
        broken = GOOD_TASKS[:2] + [
            (tiny_config(), "gossip", "standard")
        ] + GOOD_TASKS[2:]
        crashed = CampaignExecutor(store=store)
        with pytest.raises(CampaignRunError) as excinfo:
            crashed.run_many(broken)
        assert excinfo.value.spec == "gossip"
        assert crashed.runs_executed == 2
        completed = {
            run_key(config, spec, scenario)
            for config, spec, scenario in GOOD_TASKS[:2]
        }
        assert ResultStore(tmp_path / "store").keys() == completed

        # Restart against the same store with the corrected point list:
        # only the two incomplete points simulate.
        resumed_executor = CampaignExecutor(store=ResultStore(tmp_path / "store"))
        resumed = resumed_executor.run_many(GOOD_TASKS)
        assert resumed_executor.runs_executed == 2
        assert resumed_executor.store_hits == 2

        for reference, result in zip(single_shot, resumed):
            assert result_fingerprint(result) == result_fingerprint(reference)

        # Aggregates built from the merged store view are bit-identical
        # to the single-shot campaign's.
        assert aggregate(resumed) == aggregate(single_shot)

    def test_full_resume_simulates_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        CampaignExecutor(store=store).run_many(GOOD_TASKS)
        again = CampaignExecutor(store=ResultStore(tmp_path / "store"))
        again.run_many(GOOD_TASKS)
        assert again.runs_executed == 0
        assert again.store_hits == len(GOOD_TASKS)

    def test_resume_false_reruns_and_appends(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        CampaignExecutor(store=store).run_many(GOOD_TASKS[:2])
        rerun = CampaignExecutor(
            store=ResultStore(tmp_path / "store"), resume=False
        )
        rerun.run_many(GOOD_TASKS[:2])
        assert rerun.runs_executed == 2
        merged = ResultStore(tmp_path / "store")
        # Append-only: both campaigns' rows exist, merge-on-read dedups.
        assert merged.stats["records_appended"] == 0  # fresh handle
        assert len(list(merged.records())) == 2
        assert len(merged) == 2

    def test_store_replaces_pickle_writes_but_reads_legacy_cache(self, tmp_path):
        """With a store attached the pickle cache becomes read-only compat."""
        cache = ResultCache(tmp_path / "cache")
        CampaignExecutor(cache=cache).run_many(GOOD_TASKS[:2])
        assert len(cache) == 2

        store = ResultStore(tmp_path / "store")
        migrating = CampaignExecutor(
            cache=ResultCache(tmp_path / "cache"), store=store
        )
        migrating.run_many(GOOD_TASKS)
        # Two points served from the legacy cache, two simulated; no new
        # pickles were written — the store is the only write path now.
        assert migrating.runs_executed == 2
        assert migrating.cache.hits == 2
        assert len(migrating.cache) == 2
        assert len(ResultStore(tmp_path / "store")) == 2


class TestShardedCampaign:
    def test_sharded_matches_serial_bit_for_bit(self, tmp_path):
        serial = CampaignExecutor().run_many(GOOD_TASKS)
        sharded = CampaignExecutor(
            transport=ShardedTransport(2), store=ResultStore(tmp_path / "st")
        ).run_many(GOOD_TASKS)
        for left, right in zip(serial, sharded):
            assert result_fingerprint(left) == result_fingerprint(right)

    def test_sharded_sweep_figure_data_identical(self, tmp_path):
        config = tiny_config()
        serial = run_axis_sweep(
            config, "cache_num", (2, 4), ("push", "rpcc-sc"),
            executor=CampaignExecutor(),
        )
        sharded_executor = CampaignExecutor(
            transport=ShardedTransport(3), store=ResultStore(tmp_path / "st")
        )
        sharded = run_axis_sweep(
            config, "cache_num", (2, 4), ("push", "rpcc-sc"),
            executor=sharded_executor,
        )
        assert set(serial) == set(sharded)
        for point in serial:
            assert serial[point].summary == sharded[point].summary

        # And a resumed rerun of the same sweep re-reads, not re-runs.
        resumed_executor = CampaignExecutor(store=ResultStore(tmp_path / "st"))
        resumed = run_axis_sweep(
            config, "cache_num", (2, 4), ("push", "rpcc-sc"),
            executor=resumed_executor,
        )
        assert resumed_executor.runs_executed == 0
        for point in serial:
            assert serial[point].summary == resumed[point].summary

    def test_sharded_failure_commits_completed_shard_work(self, tmp_path):
        """A failing point inside one shard still leaves that shard's
        earlier completions (and the other shards') in the store."""
        store = ResultStore(tmp_path / "store")
        broken = GOOD_TASKS + [(tiny_config(), "gossip", "standard")]
        executor = CampaignExecutor(
            transport=ShardedTransport(2), store=store
        )
        with pytest.raises(CampaignRunError):
            executor.run_many(broken)
        survivors = ResultStore(tmp_path / "store").keys()
        good_keys = {
            run_key(config, spec, scenario)
            for config, spec, scenario in GOOD_TASKS
        }
        assert survivors <= good_keys
        # Resume finishes whatever was lost, bit-identically.
        resumed = CampaignExecutor(store=ResultStore(tmp_path / "store"))
        results = resumed.run_many(GOOD_TASKS)
        assert resumed.runs_executed == len(GOOD_TASKS) - len(survivors)
        reference = CampaignExecutor().run_many(GOOD_TASKS)
        for left, right in zip(reference, results):
            assert result_fingerprint(left) == result_fingerprint(right)
