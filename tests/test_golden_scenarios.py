"""Golden conformance matrix for the scenario catalog.

Every preset of :mod:`repro.scenarios.catalog` x {push, pull, rpcc-sc}
x two seeds runs short and traced, is replayed through the invariant
checker (no violations allowed), and is reduced to the same digest shape
as ``tests/test_golden_e2e.py``.  Digests live in
``tests/golden/scenarios.json``; any drift in a preset's expansion — a
changed override, a different fault plan, a reshuffled RNG stream — is
caught here before it can silently invalidate a published sweep.

Regenerate after an intentional behaviour change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_scenarios.py

and commit the refreshed ``scenarios.json`` alongside the change.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import build_simulation
from repro.obs import InvariantChecker, ListSink, TraceBus
from repro.scenarios.registry import SCENARIOS

GOLDEN_PATH = Path(__file__).parent / "golden" / "scenarios.json"
UPDATE = bool(os.environ.get("REPRO_UPDATE_GOLDEN"))

#: The conformance strategies: both baselines plus RPCC's strong level.
SPECS = ("push", "pull", "rpcc-sc")
SEEDS = (7, 11)

#: Golden cells run short; presets deliberately leave sim_time/warmup/seed
#: to the caller.  The warmup covers the relay bootstrap, and the 120 s
#: window straddles every preset's scripted faults and popularity shift.
BASE = dict(sim_time=120.0, warmup=60.0)

_INT_METRICS = (
    "transmissions", "messages", "bytes_on_air",
    "queries_issued", "queries_answered", "queries_unanswered",
)
_FLOAT_METRICS = (
    "mean_latency", "mean_hit_latency", "p95_latency",
    "local_answer_ratio", "stale_ratio", "violation_ratio",
    "mean_staleness_age",
)


def _matrix():
    return [
        (scenario, spec, seed)
        for scenario in SCENARIOS.names()
        for spec in SPECS
        for seed in SEEDS
    ]


def _run_cell(scenario: str, spec: str, seed: int):
    preset = SCENARIOS.get(scenario)
    config, placement = preset.expand(SimulationConfig(seed=seed, **BASE))
    bus = TraceBus()
    sink = bus.add_sink(ListSink())
    result = build_simulation(config, spec, placement, trace=bus).run()
    bus.close()
    return result, sink.events


def _digest(result, events) -> dict:
    summary = result.summary
    digest = {name: getattr(summary, name) for name in _INT_METRICS}
    digest.update({
        name: round(getattr(summary, name), 6) for name in _FLOAT_METRICS
    })
    digest["counters"] = dict(sorted(summary.counters.items()))
    digest["transmissions_by_type"] = dict(
        sorted(summary.transmissions_by_type.items())
    )
    digest["total_queries"] = result.total_queries
    digest["total_updates"] = result.total_updates
    digest["events"] = dict(sorted(Counter(e.etype for e in events).items()))
    return digest


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def _store_golden(key: str, digest: dict) -> None:
    golden = _load_golden()
    golden[key] = digest
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize(
    "scenario,spec,seed",
    _matrix(),
    ids=[f"{sc}-{sp}-s{sd}" for sc, sp, sd in _matrix()],
)
def test_golden_scenario_digest(scenario, spec, seed):
    result, events = _run_cell(scenario, spec, seed)
    digest = _digest(result, events)

    # Conformance gate: every catalog cell must replay violation-free
    # through the invariant checker, and not vacuously so.
    report = InvariantChecker(delta=result.config.ttp).feed_all(events).finish()
    assert report.ok, f"{scenario}/{spec} seed={seed}:\n{report.format()}"
    assert report.reads_checked > 0

    key = f"{scenario}-{spec}-seed{seed}"
    if UPDATE:
        _store_golden(key, digest)
        pytest.skip(f"updated golden digest for {key}")
    golden = _load_golden()
    assert key in golden, (
        f"no golden digest for {key}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert digest == golden[key], (
        f"behaviour drift in {key}: digest no longer matches "
        f"tests/golden/scenarios.json (regenerate only if the change is intended)"
    )


def test_scenario_expansion_is_pure():
    """Expanding a preset twice yields equal configs (no hidden state)."""
    base = SimulationConfig(seed=3, **BASE)
    for name in SCENARIOS.names():
        preset = SCENARIOS.get(name)
        first, first_placement = preset.expand(base)
        second, second_placement = preset.expand(base)
        assert (first, first_placement) == (second, second_placement), name


def test_golden_file_covers_the_whole_matrix():
    if UPDATE:
        pytest.skip("regenerating")
    golden = _load_golden()
    expected = {f"{sc}-{sp}-seed{sd}" for sc, sp, sd in _matrix()}
    assert set(golden) == expected
