"""Unit tests for the mobile host composition and the switching process."""

import math
import random

import pytest

from repro.cache.catalog import Catalog
from repro.cache.directory import CacheDirectory
from repro.errors import ConfigurationError
from repro.mobility.stationary import Stationary
from repro.mobility.terrain import Point
from repro.peers.host import MobileHost
from repro.peers.switching import SwitchingProcess
from repro.sim.engine import Simulator


class RecordingAgent:
    """Agent stub recording lifecycle hook invocations."""

    def __init__(self):
        self.events = []

    def handle_message(self, message):
        self.events.append(("message", message))

    def on_reconnect(self):
        self.events.append(("reconnect",))

    def on_disconnect(self):
        self.events.append(("disconnect",))

    def on_local_update(self, master):
        self.events.append(("update", master.version))

    def on_period_closed(self):
        self.events.append(("period",))


def make_host(sim, host_id=0, directory=None):
    return MobileHost(
        host_id,
        sim,
        Stationary(Point(0, 0)),
        cache_capacity=4,
        directory=directory,
    )


class TestMobileHost:
    def test_network_node_interface(self, sim):
        host = make_host(sim)
        assert host.node_id == 0
        assert host.online
        assert host.current_position() == Point(0, 0)

    def test_deliver_routes_to_agent(self, sim):
        host = make_host(sim)
        agent = RecordingAgent()
        host.agent = agent
        from repro.net.message import Message

        host.deliver(Message(sender=1))
        assert agent.events[0][0] == "message"
        assert host.messages_handled == 1

    def test_deliver_without_agent_is_safe(self, sim):
        from repro.net.message import Message

        make_host(sim).deliver(Message(sender=1))

    def test_radio_hooks_drain_battery(self, sim):
        host = make_host(sim)
        from repro.net.message import Message

        start = host.battery.level
        host.on_transmit(Message(sender=0, size_bytes=100))
        host.on_receive(Message(sender=0, size_bytes=100))
        assert host.battery.level < start

    def test_attach_source_validates_owner(self, sim):
        host = make_host(sim, host_id=1)
        catalog = Catalog.one_item_per_host(range(3))
        with pytest.raises(ConfigurationError):
            host.attach_source(catalog.master(2))

    def test_update_master(self, sim):
        host = make_host(sim, host_id=1)
        catalog = Catalog.one_item_per_host(range(3))
        host.attach_source(catalog.master(1))
        agent = RecordingAgent()
        host.agent = agent
        assert host.update_master() == 1
        assert ("update", 1) in agent.events

    def test_update_master_without_source_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            make_host(sim).update_master()

    def test_set_online_toggles_and_notifies(self, sim):
        host = make_host(sim)
        agent = RecordingAgent()
        host.agent = agent
        host.set_online(False)
        assert not host.online
        host.set_online(True)
        assert host.online
        assert ("disconnect",) in agent.events
        assert ("reconnect",) in agent.events
        assert host.tracker.psr == 0.0  # switches counted but period open

    def test_set_online_idempotent(self, sim):
        host = make_host(sim)
        host.set_online(True)  # already online
        host.set_online(False)
        host.set_online(False)
        host.tracker.close_period()
        # only one real flip happened
        assert host.tracker.psr == pytest.approx(1 * 0.8)

    def test_set_online_invalidates_registered_network(self, sim):
        from repro.net.network import Network

        network = Network(sim, radio_range=150.0)
        host = make_host(sim)
        network.register(host)
        cached = network.snapshot()
        host.set_online(False)
        fresh = network.snapshot()
        assert fresh is not cached
        assert host.node_id not in fresh

    def test_set_online_notifies_before_agent_reacts(self, sim):
        # A reconnect handler that sends immediately must see a topology
        # that already includes this host.
        from repro.net.network import Network

        network = Network(sim, radio_range=150.0)
        host = make_host(sim)
        network.register(host)
        seen = []

        class ProbeAgent(RecordingAgent):
            def on_reconnect(self):
                seen.append(host.node_id in network.snapshot())

        host.agent = ProbeAgent()
        host.set_online(False)
        host.set_online(True)
        assert seen == [True]

    def test_offline_time_accounted(self, sim):
        host = make_host(sim)
        sim.run_until(10.0)
        host.set_online(False)
        sim.run_until(25.0)
        host.set_online(True)
        assert host.offline_time == pytest.approx(15.0)

    def test_period_timer_closes_periods(self, sim):
        host = make_host(sim)
        agent = RecordingAgent()
        host.agent = agent
        host.start_period_timer()
        sim.run_until(host.tracker.phi * 2)
        assert host.tracker.periods_closed == 2
        assert agent.events.count(("period",)) == 2
        host.stop_period_timer()
        sim.run_until(host.tracker.phi * 5)
        assert host.tracker.periods_closed == 2

    def test_period_timer_updates_energy_fraction(self, sim):
        host = make_host(sim)
        host.battery.consume(host.battery.capacity / 2)
        host.start_period_timer()
        sim.run_until(host.tracker.phi)
        assert host.tracker.ce == pytest.approx(0.5, abs=0.01)

    def test_store_bound_to_directory(self, sim):
        directory = CacheDirectory()
        host = make_host(sim, host_id=3, directory=directory)
        from repro.cache.item import CachedCopy

        host.store.put(CachedCopy(9, 0, 100, 0.0))
        assert directory.holders(9) == {3}


class TestSwitchingProcess:
    def test_parameters_validated(self, sim, rng):
        with pytest.raises(ConfigurationError):
            SwitchingProcess(sim, rng, lambda f: None, mean_online=0.0)
        with pytest.raises(ConfigurationError):
            SwitchingProcess(sim, rng, lambda f: None, mean_offline=0.0)

    def test_alternates_states(self, sim, rng):
        flips = []
        process = SwitchingProcess(
            sim, rng, flips.append, mean_online=10.0, mean_offline=10.0
        )
        process.start()
        sim.run_until(200.0)
        assert len(flips) >= 2
        # strict alternation starting with a disconnect
        assert flips[0] is False
        assert all(a != b for a, b in zip(flips, flips[1:]))

    def test_infinite_mean_disables(self, sim, rng):
        flips = []
        process = SwitchingProcess(
            sim, rng, flips.append, mean_online=math.inf, mean_offline=10.0
        )
        assert not process.enabled
        process.start()
        sim.run_until(1000.0)
        assert flips == []

    def test_stop_cancels(self, sim, rng):
        flips = []
        process = SwitchingProcess(
            sim, rng, flips.append, mean_online=10.0, mean_offline=10.0
        )
        process.start()
        process.stop()
        sim.run_until(500.0)
        assert flips == []

    def test_flip_counter(self, sim, rng):
        process = SwitchingProcess(
            sim, rng, lambda f: None, mean_online=5.0, mean_offline=5.0
        )
        process.start()
        sim.run_until(100.0)
        assert process.flips > 0

    def test_deterministic_given_rng(self, sim):
        def run_once():
            local_sim = Simulator()
            flips = []
            process = SwitchingProcess(
                local_sim,
                random.Random(42),
                lambda f: flips.append(local_sim.now),
                mean_online=10.0,
                mean_offline=5.0,
            )
            process.start()
            local_sim.run_until(300.0)
            return flips

        assert run_once() == run_once()
