"""Terminal visualisation helpers."""

from repro.viz.ascii import ascii_chart

__all__ = ["ascii_chart"]
