"""ASCII charts for terminal-friendly figure reproduction.

The paper's figures are line charts (Fig 8 on a log scale).  For a
reproduction that lives in a terminal, an ASCII chart beside the numeric
table makes the *shape* — who wins, where curves cross — visible at a
glance without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

__all__ = ["ascii_chart"]

_MARKERS = "ox*+#@%&"


def _transform(value: float, log_scale: bool) -> float:
    if not log_scale:
        return value
    return math.log10(max(value, 1e-9))


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, List[float]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y series over shared x values as ASCII art.

    Each series gets a one-character marker (``o``, ``x``, ``*``, ...);
    a legend maps markers back to names.  ``log_y`` plots log10(y), the
    right mode for the paper's Fig 8.
    """
    if not x_values or not series:
        raise ConfigurationError("ascii_chart needs x values and at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("chart must be at least 16x4 characters")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points for {len(x_values)} xs"
            )

    ys = [
        _transform(value, log_y)
        for values in series.values()
        for value in values
    ]
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            col = round((x - x_min) / x_span * (width - 1))
            fraction = (_transform(y, log_y) - y_min) / (y_max - y_min)
            row = (height - 1) - round(fraction * (height - 1))
            grid[row][col] = marker

    def format_tick(transformed: float) -> str:
        value = 10 ** transformed if log_y else transformed
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"

    top_tick = format_tick(y_max)
    bottom_tick = format_tick(y_min)
    margin = max(len(top_tick), len(bottom_tick)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick.rjust(margin - 1)
        elif row_index == height - 1:
            label = bottom_tick.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row)}")
    axis = " " * (margin - 1) + "+" + "-" * width
    lines.append(axis)
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(" " * margin + x_left + " " * max(1, padding) + x_right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    scale = " (log y)" if log_y else ""
    lines.append(f"{' ' * margin}{legend}{scale}"
                 + (f"   y: {y_label}" if y_label else ""))
    return "\n".join(lines)
