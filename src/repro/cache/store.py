"""Per-host cache store with bounded capacity and pluggable replacement.

Each mobile host can cache ``C_Num`` data items (Table 1 default: 10).
The store tracks hits/misses/evictions and notifies an optional listener on
membership changes so the global cache directory stays current.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.item import CachedCopy
from repro.cache.replacement import CachePolicy, LRUPolicy, ReplacementPolicy
from repro.errors import CacheCapacityError

__all__ = ["CacheStore"]


class CacheStore:
    """Bounded collection of :class:`~repro.cache.item.CachedCopy` objects.

    Parameters
    ----------
    capacity:
        Maximum number of cached items (``C_Num``).
    policy:
        Replacement policy; LRU by default.  The store drives the
        policy's :class:`~repro.cache.replacement.CachePolicy` lifecycle
        hooks on every insert, hit and removal, so stateful policies
        (LRU-K and friends) stay consistent with the store's contents —
        which also means a policy instance must not be shared between
        stores.
    on_insert / on_evict:
        Optional callbacks ``(item_id) -> None`` fired on membership change
        (used to maintain the global cache directory).
    """

    def __init__(
        self,
        capacity: int,
        policy: Optional[ReplacementPolicy] = None,
        on_insert: Optional[Callable[[int], None]] = None,
        on_evict: Optional[Callable[[int], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise CacheCapacityError(f"cache capacity must be positive, got {capacity!r}")
        self.capacity = int(capacity)
        self.policy = policy if policy is not None else LRUPolicy()
        self._copies: Dict[int, CachedCopy] = {}
        self._on_insert = on_insert
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._copies)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._copies

    @property
    def item_ids(self) -> List[int]:
        """Ids of all currently cached items."""
        return list(self._copies)

    @property
    def full(self) -> bool:
        """``True`` when the store holds ``capacity`` items."""
        return len(self._copies) >= self.capacity

    def peek(self, item_id: int) -> Optional[CachedCopy]:
        """Return the copy without recording an access (or ``None``)."""
        return self._copies.get(item_id)

    def get(self, item_id: int, now: float) -> Optional[CachedCopy]:
        """Return the copy and record a cache access; counts hit/miss."""
        copy = self._copies.get(item_id)
        if copy is None:
            self.misses += 1
            return None
        self.hits += 1
        copy.touch(now)
        self.policy.on_access(copy, now)
        return copy

    @property
    def hit_ratio(self) -> float:
        """Fraction of :meth:`get` calls that hit; 0 before any access."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def put(self, copy: CachedCopy) -> Optional[int]:
        """Insert ``copy``, evicting a victim when full.

        Returns the evicted item id, or ``None`` when nothing was evicted.
        Re-inserting an already-cached item replaces it in place.
        """
        evicted: Optional[int] = None
        if copy.item_id not in self._copies and self.full:
            victim_id = self.policy.victim(self._copies)
            self._remove(victim_id)
            self.evictions += 1
            evicted = victim_id
        is_new = copy.item_id not in self._copies
        self._copies[copy.item_id] = copy
        self.policy.on_insert(copy)
        if is_new and self._on_insert is not None:
            self._on_insert(copy.item_id)
        return evicted

    def discard(self, item_id: int) -> bool:
        """Remove ``item_id`` if present; returns whether it was cached."""
        if item_id not in self._copies:
            return False
        self._remove(item_id)
        return True

    def clear(self) -> None:
        """Drop every cached copy (fires the evict callback for each)."""
        for item_id in list(self._copies):
            self._remove(item_id)

    def _remove(self, item_id: int) -> None:
        del self._copies[item_id]
        self.policy.on_remove(item_id)
        if self._on_evict is not None:
            self._on_evict(item_id)
