"""Cache directory: who currently caches which data item.

The paper assumes "the system has an independent mechanism for replica
placement and for locating the nearest cache node" (end of Section 3).
This directory *is* that mechanism: an oracle kept current by the cache
stores' insert/evict callbacks.  Keeping it an oracle (rather than a
discovery protocol) is faithful to the paper and keeps the traffic figures
about *consistency* messages only — exactly what Fig 7 measures.
"""

from __future__ import annotations

from typing import Dict, List, Set

__all__ = ["CacheDirectory"]


class CacheDirectory:
    """Mapping from item id to the set of nodes holding a cached copy."""

    def __init__(self) -> None:
        self._holders: Dict[int, Set[int]] = {}

    def add(self, item_id: int, node_id: int) -> None:
        """Record that ``node_id`` now caches ``item_id``."""
        self._holders.setdefault(item_id, set()).add(node_id)

    def remove(self, item_id: int, node_id: int) -> None:
        """Record that ``node_id`` no longer caches ``item_id``."""
        holders = self._holders.get(item_id)
        if holders is None:
            return
        holders.discard(node_id)
        if not holders:
            del self._holders[item_id]

    def holders(self, item_id: int) -> Set[int]:
        """Nodes currently caching ``item_id`` (possibly empty)."""
        return set(self._holders.get(item_id, ()))

    def holder_count(self, item_id: int) -> int:
        """Number of nodes caching ``item_id``."""
        return len(self._holders.get(item_id, ()))

    def items_cached_anywhere(self) -> List[int]:
        """Item ids with at least one cached copy."""
        return list(self._holders)

    def bind_store(self, node_id: int) -> tuple:
        """Build ``(on_insert, on_evict)`` callbacks for one node's store."""

        def on_insert(item_id: int) -> None:
            self.add(item_id, node_id)

        def on_evict(item_id: int) -> None:
            self.remove(item_id, node_id)

        return on_insert, on_evict
