"""Cache replacement policies.

The paper assumes "an independent mechanism for replica placement"; the
store still needs a victim-selection rule when a fetch lands in a full
cache.  LRU is the default; LFU and FIFO exist for the placement
ablation, and the value/utility-based family the Joy & Jacob MANET
survey catalogs (PAPERS.md) is represented by a TTL-aware value policy,
a size-utility policy with admission grace, and LRU-K.

Every policy implements the uniform :class:`CachePolicy` interface:
``victim`` picks the eviction candidate, and the optional
``on_insert``/``on_access``/``on_remove`` lifecycle hooks (no-ops by
default) let stateful policies such as LRU-K maintain per-item history
the :class:`~repro.cache.item.CachedCopy` itself does not carry.  The
:class:`~repro.cache.store.CacheStore` drives the hooks on every
membership change and hit.

Policies are discoverable by name through the
:data:`~repro.scenarios.registry.POLICIES` registry
(``@register_policy``); :func:`make_policy` instantiates one, passing
through whichever context parameters (``ttl``, ``clock``) the policy's
constructor accepts.  The chosen name rides on
``SimulationConfig.replacement_policy`` and therefore hashes into the
result-cache key.
"""

from __future__ import annotations

import abc
import inspect
from typing import Callable, Dict, List, Optional

from repro.cache.item import CachedCopy
from repro.errors import CacheError
from repro.scenarios.registry import POLICIES, register_policy

__all__ = [
    "CachePolicy",
    "ReplacementPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "TTLValuePolicy",
    "SizeUtilityPolicy",
    "LRUKPolicy",
    "POLICIES",
    "make_policy",
]


class CachePolicy(abc.ABC):
    """Chooses which cached copy to evict from a full cache.

    Stateful policies (LRU-K, admission-grace utility) rely on the
    lifecycle hooks below, so one policy instance must serve exactly one
    :class:`~repro.cache.store.CacheStore`.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        """Return the item id to evict.  ``copies`` is non-empty."""

    # -- lifecycle hooks (no-ops for stateless policies) ----------------
    def on_insert(self, copy: CachedCopy) -> None:
        """A copy entered the store (or was replaced in place)."""

    def on_access(self, copy: CachedCopy, now: float) -> None:
        """A cached copy served a hit at time ``now``."""

    def on_remove(self, item_id: int) -> None:
        """A copy left the store (eviction, discard, or clear)."""


#: Historical name for the same interface, kept for existing callers.
ReplacementPolicy = CachePolicy


@register_policy("lru")
class LRUPolicy(CachePolicy):
    """Evict the least-recently accessed copy."""

    name = "lru"

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        return min(copies.values(), key=lambda c: (c.last_access, c.item_id)).item_id


@register_policy("lfu")
class LFUPolicy(CachePolicy):
    """Evict the least-frequently accessed copy (ties: oldest access)."""

    name = "lfu"

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        return min(
            copies.values(),
            key=lambda c: (c.access_count, c.last_access, c.item_id),
        ).item_id


@register_policy("fifo")
class FIFOPolicy(CachePolicy):
    """Evict the copy fetched earliest."""

    name = "fifo"

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        return min(copies.values(), key=lambda c: (c.fetched_at, c.item_id)).item_id


@register_policy("ttl-value")
class TTLValuePolicy(CachePolicy):
    """TTL-aware value-based eviction (survey: value/utility family).

    A copy's value is its remaining freshness window times its observed
    popularity: ``max(0, fetched_at + ttl - now) * (1 + access_count)``.
    Copies whose freshness window has lapsed are worth zero — they would
    need a validation round-trip anyway — so they go first; among equals
    the least recently used oldest id goes.

    ``clock`` supplies "now" (the simulation clock when wired by the
    runner); without one the policy falls back to the newest access
    timestamp among the resident copies, which keeps standalone stores
    deterministic.
    """

    name = "ttl-value"

    def __init__(
        self, ttl: float = 240.0, clock: Optional[Callable[[], float]] = None
    ) -> None:
        if ttl <= 0:
            raise CacheError(f"ttl must be positive, got {ttl!r}")
        self.ttl = float(ttl)
        self.clock = clock

    def _now(self, copies: Dict[int, CachedCopy]) -> float:
        if self.clock is not None:
            return self.clock()
        return max(max(c.last_access, c.fetched_at) for c in copies.values())

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        now = self._now(copies)

        def value(c: CachedCopy):
            remaining = max(0.0, c.fetched_at + self.ttl - now)
            return (remaining * (1 + c.access_count), c.last_access, c.item_id)

        return min(copies.values(), key=value).item_id


@register_policy("size-utility")
class SizeUtilityPolicy(CachePolicy):
    """Cost/size utility eviction with one-round admission grace.

    Utility is popularity per byte, ``(1 + access_count) /
    content_size`` — the greedy-dual intuition that a rarely used large
    copy wastes the most cache.  The most recently *admitted* copy is
    exempt from the next victim selection (unless it is the only
    resident), so a burst of inserts cannot thrash a copy straight back
    out before it has had any chance to earn hits.
    """

    name = "size-utility"

    def __init__(self) -> None:
        self._last_admitted: Optional[int] = None

    def on_insert(self, copy: CachedCopy) -> None:
        self._last_admitted = copy.item_id

    def on_remove(self, item_id: int) -> None:
        if self._last_admitted == item_id:
            self._last_admitted = None

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        candidates = [
            c for c in copies.values() if c.item_id != self._last_admitted
        ] or list(copies.values())
        return min(
            candidates,
            key=lambda c: (
                (1 + c.access_count) / c.content_size,
                c.last_access,
                c.item_id,
            ),
        ).item_id


@register_policy("lru-k")
class LRUKPolicy(CachePolicy):
    """Classic LRU-K: evict by the K-th most recent access time.

    The policy keeps the last ``k`` access instants per resident item
    (admission counts as the first access).  The victim is the copy
    whose K-th most recent access lies furthest in the past; copies with
    fewer than K recorded accesses sort before all fully-historied ones
    (their K-th access is "minus infinity"), oldest last-access first.
    At ``k=1`` the backward-K distance *is* the last access, so the
    policy degenerates exactly to LRU — a property test pins that.
    """

    name = "lru-k"

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise CacheError(f"lru-k needs k >= 1, got {k!r}")
        self.k = int(k)
        self._history: Dict[int, List[float]] = {}

    def _record(self, item_id: int, when: float) -> None:
        history = self._history.setdefault(item_id, [])
        history.append(when)
        if len(history) > self.k:
            del history[0]

    def on_insert(self, copy: CachedCopy) -> None:
        self._record(copy.item_id, copy.last_access)

    def on_access(self, copy: CachedCopy, now: float) -> None:
        self._record(copy.item_id, now)

    def on_remove(self, item_id: int) -> None:
        self._history.pop(item_id, None)

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        def backward_k(c: CachedCopy):
            history = self._history.get(c.item_id, ())
            kth = history[0] if len(history) >= self.k else float("-inf")
            return (kth, c.last_access, c.item_id)

        return min(copies.values(), key=backward_k).item_id


def make_policy(name: str, **context) -> CachePolicy:
    """Instantiate a registered replacement policy by name.

    ``context`` may carry wiring the caller has on hand (``ttl=``,
    ``clock=``, ``k=``); only the parameters the policy's constructor
    declares are passed through, so stateless policies ignore all of it.
    Unknown names raise :class:`~repro.errors.CacheError` (the cache
    layer's historical contract).
    """
    from repro.errors import ConfigurationError

    try:
        factory = POLICIES.get(name)
    except ConfigurationError:
        raise CacheError(
            f"unknown replacement policy {name!r}; choose from {POLICIES.names()}"
        ) from None
    accepted = inspect.signature(factory).parameters
    kwargs = {key: value for key, value in context.items() if key in accepted}
    return factory(**kwargs)
