"""Cache replacement policies.

The paper assumes "an independent mechanism for replica placement"; the
store still needs a victim-selection rule when a fetch lands in a full
cache.  LRU is the default; LFU and FIFO exist for the placement ablation.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.cache.item import CachedCopy
from repro.errors import CacheError

__all__ = ["ReplacementPolicy", "LRUPolicy", "LFUPolicy", "FIFOPolicy", "make_policy"]


class ReplacementPolicy(abc.ABC):
    """Chooses which cached copy to evict from a full cache."""

    name: str = "abstract"

    @abc.abstractmethod
    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        """Return the item id to evict.  ``copies`` is non-empty."""


class LRUPolicy(ReplacementPolicy):
    """Evict the least-recently accessed copy."""

    name = "lru"

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        return min(copies.values(), key=lambda c: (c.last_access, c.item_id)).item_id


class LFUPolicy(ReplacementPolicy):
    """Evict the least-frequently accessed copy (ties: oldest access)."""

    name = "lfu"

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        return min(
            copies.values(),
            key=lambda c: (c.access_count, c.last_access, c.item_id),
        ).item_id


class FIFOPolicy(ReplacementPolicy):
    """Evict the copy fetched earliest."""

    name = "fifo"

    def victim(self, copies: Dict[int, CachedCopy]) -> int:
        return min(copies.values(), key=lambda c: (c.fetched_at, c.item_id)).item_id


_POLICIES = {
    LRUPolicy.name: LRUPolicy,
    LFUPolicy.name: LFUPolicy,
    FIFOPolicy.name: FIFOPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``lfu``/``fifo``)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise CacheError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
