"""Global catalog of data items and their source hosts.

Section 3 of the paper: the set of items is ``D = {D_1 .. D_n}``, each with
a unique source host, and "for simplicity" ``m = n`` with ``source(D_i) =
M_i``.  The catalog is global ground truth — protocols read versions from
it only via the source host's own master copy; metrics read it directly to
judge staleness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.cache.item import MasterCopy
from repro.errors import UnknownItemError

__all__ = ["Catalog"]


class Catalog:
    """Registry of every master copy in the system."""

    def __init__(self) -> None:
        self._items: Dict[int, MasterCopy] = {}

    @classmethod
    def one_item_per_host(
        cls, host_ids: Iterable[int], content_size: int = 1024
    ) -> "Catalog":
        """Build the paper's default mapping: host ``i`` sources item ``i``."""
        catalog = cls()
        for host_id in host_ids:
            catalog.add(MasterCopy(host_id, host_id, content_size))
        return catalog

    def add(self, master: MasterCopy) -> None:
        """Register a master copy; item ids must be unique."""
        if master.item_id in self._items:
            raise UnknownItemError(f"item {master.item_id!r} already registered")
        self._items[master.item_id] = master

    def master(self, item_id: int) -> MasterCopy:
        """Look up the master copy of ``item_id``."""
        try:
            return self._items[item_id]
        except KeyError:
            raise UnknownItemError(f"unknown data item {item_id!r}") from None

    def source_of(self, item_id: int) -> int:
        """Identifier of the source host of ``item_id``."""
        return self.master(item_id).source_id

    def current_version(self, item_id: int) -> int:
        """Ground-truth version of ``item_id`` right now."""
        return self.master(item_id).version

    def items_sourced_by(self, host_id: int) -> List[int]:
        """Item ids whose source host is ``host_id``."""
        return [
            item_id
            for item_id, master in self._items.items()
            if master.source_id == host_id
        ]

    @property
    def item_ids(self) -> List[int]:
        """All registered item ids."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._items
