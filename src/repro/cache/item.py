"""Data items: master copies and cached copies.

Following Section 3 of the paper: every data item has a unique identifier
and a unique *source host*; the copy held by the source host is the
*master copy* and is the only copy that may be modified.  Version numbers
start at zero and increase by one on each update, so ``version`` ordering
is the ground truth for all consistency reasoning.
"""

from __future__ import annotations

from repro.errors import UnknownItemError

__all__ = ["MasterCopy", "CachedCopy"]


class MasterCopy:
    """The authoritative copy of a data item at its source host.

    Parameters
    ----------
    item_id:
        Unique data-item identifier (``D_i``).
    source_id:
        Identifier of the source host (``M_i``); the paper assumes
        ``source(D_i) = M_i``.
    content_size:
        Payload size in bytes, used for data-transfer messages.
    """

    def __init__(self, item_id: int, source_id: int, content_size: int = 1024) -> None:
        if content_size <= 0:
            raise UnknownItemError(f"content_size must be positive, got {content_size!r}")
        self.item_id = item_id
        self.source_id = source_id
        self.content_size = int(content_size)
        self.version = 0
        self.created_at = 0.0
        self.updated_at = 0.0
        self.update_count = 0

    def update(self, now: float) -> int:
        """Apply one modification at time ``now``; returns the new version."""
        self.version += 1
        self.update_count += 1
        self.updated_at = now
        return self.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MasterCopy(item={self.item_id}, src={self.source_id}, v{self.version})"


class CachedCopy:
    """A replica of a data item held at a cache node.

    Mirrors the paper's cache-data tuple ``<ID, CT, CL, VER, TTP>`` —
    content is modelled by its size, and the freshness window (TTP or TTR,
    depending on the holder's role) is managed by the consistency protocol,
    not by the copy itself.
    """

    __slots__ = (
        "item_id",
        "version",
        "content_size",
        "fetched_at",
        "last_access",
        "access_count",
    )

    def __init__(
        self,
        item_id: int,
        version: int,
        content_size: int,
        now: float,
    ) -> None:
        self.item_id = item_id
        self.version = version
        self.content_size = int(content_size)
        self.fetched_at = now
        self.last_access = now
        self.access_count = 0

    def refresh(self, version: int, now: float) -> None:
        """Replace the replica's payload with version ``version``."""
        if version < self.version:
            raise UnknownItemError(
                f"refusing to downgrade item {self.item_id} from "
                f"v{self.version} to v{version}"
            )
        self.version = version
        self.fetched_at = now

    def touch(self, now: float) -> None:
        """Record a local access (drives LRU/LFU replacement and PAR)."""
        self.last_access = now
        self.access_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachedCopy(item={self.item_id}, v{self.version})"
