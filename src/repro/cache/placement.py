"""Initial replica placement.

The paper's evaluation assumes each host caches ``C_Num`` data items from
the start (Fig 7(c) sweeps that number), plus the Fig 9 scenario where one
item is cached by *every* other peer.  Placement only decides the initial
cache contents; the consistency protocols keep them fresh afterwards.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.cache.catalog import Catalog
from repro.cache.item import CachedCopy
from repro.cache.store import CacheStore
from repro.errors import ConfigurationError

__all__ = ["hot_set_placement", "random_placement", "single_item_placement"]


def random_placement(
    catalog: Catalog,
    stores: Dict[int, CacheStore],
    cache_num: int,
    rng: random.Random,
    now: float = 0.0,
) -> Dict[int, List[int]]:
    """Give every host ``cache_num`` random foreign items.

    Each host caches ``cache_num`` distinct items drawn uniformly from the
    catalog, excluding the item it sources itself (a host never needs to
    cache its own master copy).  Returns the chosen item ids per host.
    """
    if cache_num <= 0:
        raise ConfigurationError(f"cache_num must be positive, got {cache_num!r}")
    assignment: Dict[int, List[int]] = {}
    item_ids = sorted(catalog.item_ids)
    for host_id in sorted(stores):
        foreign = [item for item in item_ids if catalog.source_of(item) != host_id]
        count = min(cache_num, len(foreign))
        chosen = rng.sample(foreign, count)
        store = stores[host_id]
        for item_id in chosen:
            master = catalog.master(item_id)
            store.put(CachedCopy(item_id, master.version, master.content_size, now))
        assignment[host_id] = chosen
    return assignment


def single_item_placement(
    catalog: Catalog,
    stores: Dict[int, CacheStore],
    item_id: int,
    now: float = 0.0,
) -> List[int]:
    """Fig 9 scenario: one item "cached by all other peers".

    Every host except the item's source receives a copy.  Returns the list
    of cache-holder host ids.
    """
    master = catalog.master(item_id)
    holders: List[int] = []
    for host_id, store in sorted(stores.items()):
        if host_id == master.source_id:
            continue
        store.put(CachedCopy(item_id, master.version, master.content_size, now))
        holders.append(host_id)
    return holders


def hot_set_placement(
    catalog: Catalog,
    stores: Dict[int, CacheStore],
    item_ids: Sequence[int],
    now: float = 0.0,
) -> Dict[int, List[int]]:
    """Multi-source generalisation of the Fig 9 setup.

    Every item of the hot set is cached by every peer except its own
    source, so several update-origins compete for the same cache slots
    from the first tick.  Returns the placed item ids per host (sorted),
    for symmetry with :func:`random_placement`.
    """
    if not item_ids:
        raise ConfigurationError("hot_set_placement needs at least one item")
    hot = sorted(set(item_ids))
    assignment: Dict[int, List[int]] = {}
    for host_id, store in sorted(stores.items()):
        placed: List[int] = []
        for item_id in hot:
            master = catalog.master(item_id)
            if master.source_id == host_id:
                continue
            store.put(CachedCopy(item_id, master.version, master.content_size, now))
            placed.append(item_id)
        assignment[host_id] = placed
    return assignment
