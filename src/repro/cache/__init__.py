"""Cooperative-caching substrate: items, stores, directory, discovery."""

from repro.cache.catalog import Catalog
from repro.cache.directory import CacheDirectory
from repro.cache.discovery import Discovery
from repro.cache.item import CachedCopy, MasterCopy
from repro.cache.placement import random_placement, single_item_placement
from repro.cache.replacement import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.store import CacheStore

__all__ = [
    "MasterCopy",
    "CachedCopy",
    "CacheStore",
    "Catalog",
    "CacheDirectory",
    "Discovery",
    "ReplacementPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "make_policy",
    "random_placement",
    "single_item_placement",
]
