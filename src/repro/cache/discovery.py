"""Locate the nearest node holding a copy of a data item.

Implements the "locating the nearest cache node" mechanism the paper
assumes exists: given the current topology snapshot, pick the online holder
with the smallest hop distance from the requester (ties broken by node id
for determinism).  The source host itself always counts as a holder of its
own item.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.catalog import Catalog
from repro.cache.directory import CacheDirectory
from repro.net.topology import TopologySnapshot

__all__ = ["Discovery"]


class Discovery:
    """Nearest-copy lookup over the cache directory."""

    def __init__(self, catalog: Catalog, directory: CacheDirectory) -> None:
        self.catalog = catalog
        self.directory = directory

    def candidate_holders(self, item_id: int) -> set:
        """All nodes that could answer for ``item_id`` (caches + source)."""
        holders = self.directory.holders(item_id)
        holders.add(self.catalog.source_of(item_id))
        return holders

    def nearest_holder(
        self,
        snapshot: TopologySnapshot,
        requester: int,
        item_id: int,
        exclude: Iterable[int] = (),
    ) -> Optional[int]:
        """Nearest reachable online holder of ``item_id``.

        Returns the requester itself when it holds a copy.  Returns ``None``
        when no holder is reachable (network partition or all offline).
        """
        if requester not in snapshot:
            return None
        excluded = set(exclude)
        holders = {
            holder
            for holder in self.candidate_holders(item_id)
            if holder in snapshot and holder not in excluded
        }
        if not holders:
            return None
        if requester in holders:
            return requester
        levels = snapshot.bfs_levels(requester)
        reachable = [
            (depth, holder)
            for holder, depth in (
                (holder, levels.get(holder)) for holder in holders
            )
            if depth is not None
        ]
        if not reachable:
            return None
        return min(reachable)[1]

    def nearest_among(
        self,
        snapshot: TopologySnapshot,
        requester: int,
        nodes: Iterable[int],
        max_hops: Optional[int] = None,
    ) -> Optional[int]:
        """Nearest reachable node among ``nodes`` (used for relay lookup)."""
        if requester not in snapshot:
            return None
        candidates = {node for node in nodes if node in snapshot}
        if not candidates:
            return None
        if requester in candidates:
            return requester
        levels = snapshot.bfs_levels(requester, max_depth=max_hops)
        reachable = [
            (depth, node)
            for node, depth in ((node, levels.get(node)) for node in candidates)
            if depth is not None
        ]
        if not reachable:
            return None
        return min(reachable)[1]
