"""Random-waypoint mobility [Joh96], the model used in the paper's evaluation.

Each node repeats: pick a uniformly random destination in the terrain, move
towards it in a straight line at a speed drawn uniformly from
``[speed_min, speed_max]``, then pause for ``pause_time`` seconds.

The trajectory is generated *lazily*: legs are appended only as far as the
latest queried time, and every leg is derived deterministically from the
node's private RNG stream, so ``position(t)`` is a pure, reproducible
function of ``t``.
"""

from __future__ import annotations

import bisect
import random
from typing import List, NamedTuple, Optional

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.terrain import Point, Terrain

__all__ = ["Leg", "RandomWaypoint"]


class Leg(NamedTuple):
    """One straight-line movement segment followed by a pause.

    ``start_time .. arrive_time`` is the moving phase;
    ``arrive_time .. end_time`` is the pause at ``destination``.
    """

    start_time: float
    arrive_time: float
    end_time: float
    origin: Point
    destination: Point

    def position(self, time: float) -> Point:
        """Position within this leg; assumes ``start_time <= time``."""
        if time >= self.arrive_time:
            return self.destination
        duration = self.arrive_time - self.start_time
        if duration <= 0:
            return self.destination
        fraction = (time - self.start_time) / duration
        return self.origin.interpolate(self.destination, fraction)

    @property
    def speed(self) -> float:
        """Speed during the moving phase in m/s (0 for a degenerate leg)."""
        duration = self.arrive_time - self.start_time
        if duration <= 0:
            return 0.0
        return self.origin.distance_to(self.destination) / duration


class RandomWaypoint(MobilityModel):
    """Random-waypoint trajectory of a single node.

    Parameters
    ----------
    terrain:
        The flatland the node roams in.
    rng:
        Private random stream of this node (see :class:`repro.sim.RandomStreams`).
    speed_min, speed_max:
        Uniform speed range in m/s.  The common MANET evaluation default of
        1-19 m/s is used when not overridden.
    pause_time:
        Pause at each waypoint in seconds.
    start:
        Optional fixed starting point; drawn uniformly when omitted.
    """

    def __init__(
        self,
        terrain: Terrain,
        rng: random.Random,
        speed_min: float = 1.0,
        speed_max: float = 19.0,
        pause_time: float = 10.0,
        start: Optional[Point] = None,
    ) -> None:
        if speed_min <= 0 or speed_max < speed_min:
            raise ConfigurationError(
                f"need 0 < speed_min <= speed_max, got [{speed_min!r}, {speed_max!r}]"
            )
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time!r}")
        self.terrain = terrain
        self._rng = rng
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause_time = float(pause_time)
        origin = start if start is not None else terrain.random_point(rng)
        if not terrain.contains(origin):
            raise ConfigurationError(f"start point {origin} is outside the terrain")
        self._legs: List[Leg] = [self._make_leg(0.0, origin)]
        self._leg_starts: List[float] = [0.0]

    def _make_leg(self, start_time: float, origin: Point) -> Leg:
        destination = self.terrain.random_point(self._rng)
        speed = self._rng.uniform(self.speed_min, self.speed_max)
        travel_time = origin.distance_to(destination) / speed
        arrive_time = start_time + travel_time
        return Leg(start_time, arrive_time, arrive_time + self.pause_time, origin, destination)

    def _extend_to(self, time: float) -> None:
        last = self._legs[-1]
        while last.end_time <= time:
            last = self._make_leg(last.end_time, last.destination)
            self._legs.append(last)
            self._leg_starts.append(last.start_time)

    def position(self, time: float) -> Point:
        """Node position at simulation time ``time`` (clamped at t=0)."""
        if time <= 0.0:
            return self._legs[0].origin
        self._extend_to(time)
        index = bisect.bisect_right(self._leg_starts, time) - 1
        return self._legs[index].position(time)

    def position_valid_until(self, time: float) -> float:
        """Pause segments pin the position until the leg's ``end_time``.

        While moving the position changes every instant, so the window
        collapses to ``time`` itself.  The pause window includes the next
        leg's departure instant: at ``end_time`` the node is still at the
        waypoint (the new leg starts there with fraction 0).
        """
        if time <= 0.0:
            time = 0.0  # parked at the origin until legs start at t=0
        self._extend_to(time)
        index = bisect.bisect_right(self._leg_starts, time) - 1
        leg = self._legs[index]
        if time >= leg.arrive_time or leg.arrive_time <= leg.start_time:
            return leg.end_time
        return time

    def speed_at(self, time: float, epsilon: float = 0.5) -> float:
        """Exact instantaneous speed: the leg speed while moving, 0 while paused."""
        if time <= 0.0:
            time = 0.0
        self._extend_to(time)
        index = bisect.bisect_right(self._leg_starts, time) - 1
        leg = self._legs[index]
        if time < leg.arrive_time:
            return leg.speed
        return 0.0

    @property
    def generated_legs(self) -> int:
        """Number of legs materialised so far (testing/diagnostics)."""
        return len(self._legs)
