"""Mobility traces: record a model's trajectory at a fixed sampling rate.

Traces serve three purposes in this reproduction:

* regression tests pin trajectories to catch accidental RNG reordering;
* examples dump traces for visual inspection;
* a recorded trace can be *replayed* as a mobility model of its own, which
  lets experiments re-run different protocols over identical movement.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.stationary import PiecewiseLinear
from repro.mobility.terrain import Point

__all__ = ["MobilityTrace", "record_trace"]


class MobilityTrace:
    """A sampled trajectory: positions at ``start + k * interval``."""

    def __init__(self, start: float, interval: float, points: Sequence[Point]) -> None:
        if interval <= 0:
            raise ConfigurationError(f"trace interval must be positive, got {interval!r}")
        if not points:
            raise ConfigurationError("a trace needs at least one sample")
        self.start = float(start)
        self.interval = float(interval)
        self.points: List[Point] = list(points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def duration(self) -> float:
        """Time span covered by the trace in seconds."""
        return (len(self.points) - 1) * self.interval

    def timestamps(self) -> List[float]:
        """Sampling instants of the trace."""
        return [self.start + k * self.interval for k in range(len(self.points))]

    def total_distance(self) -> float:
        """Path length of the sampled trajectory in metres."""
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))

    def as_model(self) -> PiecewiseLinear:
        """Replay the trace as a :class:`PiecewiseLinear` mobility model.

        Runs of equal consecutive samples (a paused node) replay with full
        ``position_valid_until`` windows spanning the whole run, so replays
        benefit from the incremental topology pipeline exactly like the
        original trajectory did.
        """
        waypoints: List[Tuple[float, Point]] = [
            (self.start + k * self.interval, point)
            for k, point in enumerate(self.points)
        ]
        return PiecewiseLinear(waypoints)


def record_trace(
    model: MobilityModel,
    duration: float,
    interval: float = 1.0,
    start: float = 0.0,
) -> MobilityTrace:
    """Sample ``model`` every ``interval`` seconds over ``[start, start+duration]``."""
    if duration < 0:
        raise ConfigurationError(f"duration must be >= 0, got {duration!r}")
    samples = int(duration / interval) + 1
    points = [model.position(start + k * interval) for k in range(samples)]
    return MobilityTrace(start, interval, points)
