"""Subnet grid: the spatial neighbourhoods behind the paper's PMR metric.

Eq. 4.2.5 of the paper defines the *peer moving rate* from ``N_m``, "the
number of times a node has moved (from one subnet to another)" during a
coefficient period.  The paper never defines its subnets, so we partition
the terrain into a regular grid of square cells; a "move" is a cell
crossing.  This preserves the signal PMR integrates — how often a node
changes neighbourhood — which is all the relay-selection criterion uses.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.terrain import Point, Terrain

__all__ = ["SubnetGrid", "SubnetTracker"]


class SubnetGrid:
    """Regular grid of square subnet cells over a terrain.

    Parameters
    ----------
    terrain:
        The terrain to partition.
    cell_size:
        Side length of each cell in metres.  A sensible default is the radio
        range, so crossing a cell roughly means a new radio neighbourhood.
    """

    def __init__(self, terrain: Terrain, cell_size: float) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size!r}")
        self.terrain = terrain
        self.cell_size = float(cell_size)
        self.cols = max(1, math.ceil(terrain.width / cell_size))
        self.rows = max(1, math.ceil(terrain.height / cell_size))

    @property
    def cell_count(self) -> int:
        """Total number of cells in the grid."""
        return self.rows * self.cols

    def cell_of(self, point: Point) -> Tuple[int, int]:
        """Return the ``(col, row)`` cell containing ``point``.

        Points outside the terrain are clamped to the border cells.
        """
        col = min(self.cols - 1, max(0, int(point.x // self.cell_size)))
        row = min(self.rows - 1, max(0, int(point.y // self.cell_size)))
        return (col, row)


class SubnetTracker:
    """Counts subnet crossings of one node by sampling its trajectory.

    The coefficient tracker calls :meth:`crossings_between` once per
    coefficient period; the trajectory is sampled every ``sample_interval``
    seconds inside the window and cell changes are counted.
    """

    def __init__(
        self,
        grid: SubnetGrid,
        mobility: MobilityModel,
        sample_interval: float = 5.0,
    ) -> None:
        if sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be positive, got {sample_interval!r}"
            )
        self.grid = grid
        self.mobility = mobility
        self.sample_interval = float(sample_interval)

    def crossings_between(self, start: float, end: float) -> int:
        """Number of cell crossings observed in ``[start, end]``."""
        if end <= start:
            return 0
        crossings = 0
        previous = self.grid.cell_of(self.mobility.position(start))
        time = start + self.sample_interval
        while time < end:
            cell = self.grid.cell_of(self.mobility.position(time))
            if cell != previous:
                crossings += 1
                previous = cell
            time += self.sample_interval
        final_cell = self.grid.cell_of(self.mobility.position(end))
        if final_cell != previous:
            crossings += 1
        return crossings
