"""Bulk (struct-of-arrays) mobility kernels for the vectorized core.

Each kernel evaluates one mobility model *family* for a whole population
in a few array operations per topology refresh, instead of a Python call
per node.  The kernels are exact: every float operation is applied in the
same order as the scalar model methods, so the produced positions and
validity deadlines are bit-identical to ``model.position(t)`` /
``model.position_valid_until(t)``.

Trajectory state that the scalar models generate lazily (waypoint legs,
walk epochs) is still generated through the models themselves
(``_extend_to``), so the per-node RNG streams advance exactly as in a
scalar run and the two cores can be flipped mid-project without any drift.
Per-node segment pointers only move forward — refresh times are the
simulation clock, which is monotonic.

Models outside the four shipped families (e.g. RPGM group members, test
stand-ins) fall back to scalar sampling through the owning node, keeping
the ledger correct for arbitrary :class:`~repro.net.node.NetworkNode`
implementations.

This module requires numpy and is only imported by :mod:`repro.net.soa`
when the ``perf`` extra is installed.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.mobility.stationary import PiecewiseLinear, Stationary
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "StationaryKernel",
    "WaypointKernel",
    "WalkKernel",
    "PiecewiseKernel",
    "FallbackKernel",
    "kernel_class_for",
]


class _Kernel:
    """Base: owns the ledger slots of its members."""

    def __init__(self) -> None:
        self.slots: List[int] = []
        self._slot_arr = np.empty(0, dtype=np.int64)

    def add(self, slot: int, member) -> None:
        self.slots.append(slot)
        self._members_add(member)

    def finalize(self) -> None:
        """Rebuild member arrays after new registrations."""
        self._slot_arr = np.asarray(self.slots, dtype=np.int64)

    def local_needs(self, need_mask: "np.ndarray") -> "np.ndarray":
        """Member-local indices whose validity window lapsed."""
        if not self.slots:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(need_mask[self._slot_arr])[0]

    def sample(self, now, local, x, y, valid_until) -> None:
        raise NotImplementedError


class StationaryKernel(_Kernel):
    """A node that never moves: sampled once, valid forever."""

    def __init__(self) -> None:
        super().__init__()
        self._px: List[float] = []
        self._py: List[float] = []
        self._ax = np.empty(0)
        self._ay = np.empty(0)

    def _members_add(self, model: Stationary) -> None:
        self._px.append(model.point.x)
        self._py.append(model.point.y)

    def finalize(self) -> None:
        super().finalize()
        self._ax = np.asarray(self._px, dtype=np.float64)
        self._ay = np.asarray(self._py, dtype=np.float64)

    def sample(self, now, local, x, y, valid_until) -> None:
        slots = self._slot_arr[local]
        x[slots] = self._ax[local]
        y[slots] = self._ay[local]
        valid_until[slots] = math.inf


class WaypointKernel(_Kernel):
    """Random waypoint: interpolate along the current leg, pause windows."""

    def __init__(self) -> None:
        super().__init__()
        self.models: List[RandomWaypoint] = []
        self._leg_idx: List[int] = []
        # Current-leg parameter arrays, kept in sync with _leg_idx.
        self._start = np.empty(0)
        self._arrive = np.empty(0)
        self._end = np.empty(0)
        self._ox = np.empty(0)
        self._oy = np.empty(0)
        self._dx = np.empty(0)
        self._dy = np.empty(0)

    def _members_add(self, model: RandomWaypoint) -> None:
        self.models.append(model)
        self._leg_idx.append(0)

    def finalize(self) -> None:
        super().finalize()
        count = len(self.models)
        for name in ("_start", "_arrive", "_end", "_ox", "_oy", "_dx", "_dy"):
            setattr(self, name, np.empty(count, dtype=np.float64))
        for index in range(count):
            self._load_leg(index)

    def _load_leg(self, index: int) -> None:
        leg = self.models[index]._legs[self._leg_idx[index]]
        self._start[index] = leg.start_time
        self._arrive[index] = leg.arrive_time
        self._end[index] = leg.end_time
        self._ox[index] = leg.origin.x
        self._oy[index] = leg.origin.y
        self._dx[index] = leg.destination.x
        self._dy[index] = leg.destination.y

    def sample(self, now, local, x, y, valid_until) -> None:
        # Advance the few members whose current leg ended.  Contiguous legs
        # (start of leg k+1 == end of leg k) make the forward walk land on
        # the same leg as the scalar bisect over leg start times.
        stale = local[self._end[local] <= now]
        for index in stale.tolist():
            model = self.models[index]
            model._extend_to(now)
            legs = model._legs
            leg_index = self._leg_idx[index]
            while legs[leg_index].end_time <= now:
                leg_index += 1
            self._leg_idx[index] = leg_index
            self._load_leg(index)

        start = self._start[local]
        arrive = self._arrive[local]
        ox = self._ox[local]
        oy = self._oy[local]
        dx = self._dx[local]
        dy = self._dy[local]
        arrived = (now >= arrive) | (arrive <= start)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = (now - start) / (arrive - start)
            px = np.where(arrived, dx, ox + (dx - ox) * fraction)
            py = np.where(arrived, dy, oy + (dy - oy) * fraction)
        slots = self._slot_arr[local]
        x[slots] = px
        y[slots] = py
        valid_until[slots] = np.where(arrived, self._end[local], now)


class WalkKernel(_Kernel):
    """Random walk: straight epochs folded back by billiard reflection."""

    def __init__(self) -> None:
        super().__init__()
        self.models: List[RandomWalk] = []
        self._epoch_idx: List[int] = []
        self._start = np.empty(0)
        self._end = np.empty(0)
        self._ox = np.empty(0)
        self._oy = np.empty(0)
        self._vx = np.empty(0)
        self._vy = np.empty(0)
        self._width = np.empty(0)
        self._height = np.empty(0)

    def _members_add(self, model: RandomWalk) -> None:
        self.models.append(model)
        self._epoch_idx.append(0)

    def finalize(self) -> None:
        super().finalize()
        count = len(self.models)
        for name in ("_start", "_end", "_ox", "_oy", "_vx", "_vy", "_width", "_height"):
            setattr(self, name, np.empty(count, dtype=np.float64))
        for index, model in enumerate(self.models):
            self._width[index] = model.terrain.width
            self._height[index] = model.terrain.height
            self._load_epoch(index)

    def _load_epoch(self, index: int) -> None:
        epoch = self.models[index]._epochs[self._epoch_idx[index]]
        self._start[index] = epoch.start_time
        self._end[index] = epoch.end_time
        self._ox[index] = epoch.origin.x
        self._oy[index] = epoch.origin.y
        self._vx[index] = epoch.velocity_x
        self._vy[index] = epoch.velocity_y

    @staticmethod
    def _reflect(raw: "np.ndarray", limit: "np.ndarray") -> "np.ndarray":
        # Mirrors walk._reflect op for op (np.fmod == math.fmod == C fmod).
        period = 2.0 * limit
        value = np.fmod(raw, period)
        value = np.where(value < 0, value + period, value)
        value = np.where(value > limit, period - value, value)
        return np.where(limit <= 0, 0.0, value)

    def sample(self, now, local, x, y, valid_until) -> None:
        stale = local[self._end[local] <= now]
        for index in stale.tolist():
            model = self.models[index]
            model._extend_to(now)
            epochs = model._epochs
            epoch_index = self._epoch_idx[index]
            while epochs[epoch_index].end_time <= now:
                epoch_index += 1
            self._epoch_idx[index] = epoch_index
            self._load_epoch(index)

        elapsed = now - self._start[local]
        raw_x = self._ox[local] + self._vx[local] * elapsed
        raw_y = self._oy[local] + self._vy[local] * elapsed
        slots = self._slot_arr[local]
        x[slots] = self._reflect(raw_x, self._width[local])
        y[slots] = self._reflect(raw_y, self._height[local])
        # A walker never pauses: the window collapses to the sample time.
        valid_until[slots] = now


class PiecewiseKernel(_Kernel):
    """Scripted trajectories (trace replay): per-node segment pointers.

    Segment selection replicates the scalar quirks exactly: at an exact
    interior waypoint time the *earlier* segment is sampled (fraction 1.0
    interpolation, which is not necessarily the endpoint in IEEE floats),
    while at/after the final waypoint the node sits at the last point
    exactly.  Runs of equal waypoints pin the position — the per-segment
    pin deadline is precomputed at registration.
    """

    def __init__(self) -> None:
        super().__init__()
        self.models: List[PiecewiseLinear] = []
        self._seg_idx: List[int] = []  # -1 == parked before the first waypoint
        self._pins: List[List[float]] = []  # per member: pin deadline per segment
        self._pre: List[float] = []  # pin deadline of the parked-before state
        self._t0 = np.empty(0)
        self._t1 = np.empty(0)
        self._p0x = np.empty(0)
        self._p0y = np.empty(0)
        self._p1x = np.empty(0)
        self._p1y = np.empty(0)
        self._pin = np.empty(0)  # nan == moving segment (window collapses)
        self._tlast = np.empty(0)
        self._plastx = np.empty(0)
        self._plasty = np.empty(0)

    def _members_add(self, model: PiecewiseLinear) -> None:
        self.models.append(model)
        self._seg_idx.append(-1)
        times, points = model._times, model._points
        segments = len(times) - 1
        pins = [math.nan] * segments
        for segment in range(segments):
            if points[segment + 1] != points[segment]:
                continue
            run = segment
            end = times[run + 1]
            while run + 1 < len(points) and points[run + 1] == points[run]:
                end = times[run + 1]
                run += 1
            pins[segment] = math.inf if run == len(points) - 1 else end
        self._pins.append(pins)
        # Parked before the trajectory starts: scalar walks the equal-point
        # run from segment 0 with end initialised to times[0].
        pre = times[0]
        run = 0
        while run + 1 < len(points) and points[run + 1] == points[run]:
            pre = times[run + 1]
            run += 1
        self._pre.append(math.inf if run == len(points) - 1 else pre)

    def finalize(self) -> None:
        super().finalize()
        count = len(self.models)
        names = (
            "_t0", "_t1", "_p0x", "_p0y", "_p1x", "_p1y",
            "_pin", "_tlast", "_plastx", "_plasty",
        )
        for name in names:
            setattr(self, name, np.empty(count, dtype=np.float64))
        for index, model in enumerate(self.models):
            self._tlast[index] = model._times[-1]
            self._plastx[index] = model._points[-1].x
            self._plasty[index] = model._points[-1].y
            self._load_segment(index)

    def _load_segment(self, index: int) -> None:
        model = self.models[index]
        segment = self._seg_idx[index]
        times, points = model._times, model._points
        if segment < 0:
            first = points[0]
            self._t0[index] = times[0]
            self._t1[index] = times[0]
            self._p0x[index] = self._p1x[index] = first.x
            self._p0y[index] = self._p1y[index] = first.y
            self._pin[index] = self._pre[index]
            return
        self._t0[index] = times[segment]
        self._t1[index] = times[segment + 1]
        self._p0x[index] = points[segment].x
        self._p0y[index] = points[segment].y
        self._p1x[index] = points[segment + 1].x
        self._p1y[index] = points[segment + 1].y
        self._pin[index] = self._pins[index][segment]

    def sample(self, now, local, x, y, valid_until) -> None:
        stale = local[self._t1[local] < now]
        for index in stale.tolist():
            times = self.models[index]._times
            segments = len(times) - 1
            segment = self._seg_idx[index]
            # Stay on segment s while now <= times[s+1]: an exact interior
            # waypoint time samples the earlier segment at fraction 1.0,
            # exactly like the scalar selection.
            while segment < segments - 1 and now > times[segment + 1]:
                segment += 1
            self._seg_idx[index] = segment
            self._load_segment(index)

        t0 = self._t0[local]
        t1 = self._t1[local]
        p0x = self._p0x[local]
        p0y = self._p0y[local]
        after = now >= self._tlast[local]
        parked = t1 <= t0
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = (now - t0) / (t1 - t0)
            px = p0x + (self._p1x[local] - p0x) * fraction
            py = p0y + (self._p1y[local] - p0y) * fraction
        px = np.where(parked, p0x, px)
        py = np.where(parked, p0y, py)
        px = np.where(after, self._plastx[local], px)
        py = np.where(after, self._plasty[local], py)
        pin = self._pin[local]
        window = np.where(np.isnan(pin), now, pin)
        window = np.where(after, math.inf, window)
        slots = self._slot_arr[local]
        x[slots] = px
        y[slots] = py
        valid_until[slots] = window


class FallbackKernel(_Kernel):
    """Scalar sampling through the node, for unrecognised models.

    Costs exactly what the scalar ledger costs for these nodes — one
    ``current_position`` / ``position_valid_until`` call per lapsed window
    — so mixing one exotic model into a population never slows the rest.
    """

    def __init__(self) -> None:
        super().__init__()
        self.nodes: List = []

    def _members_add(self, node) -> None:
        self.nodes.append(node)

    def sample(self, now, local, x, y, valid_until) -> None:
        nodes = self.nodes
        slot_arr = self._slot_arr
        for index in local.tolist():
            node = nodes[index]
            position = node.current_position()
            slot = slot_arr[index]
            x[slot] = position.x
            y[slot] = position.y
            valid_until[slot] = node.position_valid_until()


#: Exact model classes with a bulk kernel.  Subclasses deliberately do not
#: match — an overridden position() must win, so they take the fallback.
_KERNEL_FOR_MODEL = {
    Stationary: StationaryKernel,
    RandomWaypoint: WaypointKernel,
    RandomWalk: WalkKernel,
    PiecewiseLinear: PiecewiseKernel,
}


def kernel_class_for(model) -> type:
    """Bulk kernel class for ``model`` (``FallbackKernel`` when none fits)."""
    return _KERNEL_FOR_MODEL.get(type(model), FallbackKernel)
