"""Terrain geometry: points and the rectangular flatland of the evaluation.

The paper simulates 50 peers on a 1500 m x 1500 m flat terrain.  This module
provides the small amount of 2-D geometry the mobility models and the disc
connectivity model need.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, NamedTuple

from repro.errors import ConfigurationError

__all__ = ["Point", "Terrain"]


class Point(NamedTuple):
    """An immutable 2-D point in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def interpolate(self, other: "Point", fraction: float) -> "Point":
        """Point at ``fraction`` of the way from ``self`` to ``other``.

        ``fraction`` 0 returns ``self``; 1 returns ``other``.  Values outside
        [0, 1] extrapolate along the same line.
        """
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )


class Terrain:
    """Axis-aligned rectangular terrain with the origin at (0, 0).

    Parameters
    ----------
    width, height:
        Dimensions in metres; both must be positive.
    """

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise ConfigurationError(
                f"terrain dimensions must be positive, got {width!r} x {height!r}"
            )
        self.width = float(width)
        self.height = float(height)

    @property
    def area(self) -> float:
        """Terrain area in square metres."""
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Length of the terrain diagonal in metres."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        """Geometric centre of the terrain."""
        return Point(self.width / 2.0, self.height / 2.0)

    def contains(self, point: Point) -> bool:
        """``True`` if ``point`` lies inside the terrain (borders included)."""
        return 0.0 <= point.x <= self.width and 0.0 <= point.y <= self.height

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the nearest location inside the terrain."""
        return Point(
            min(max(point.x, 0.0), self.width),
            min(max(point.y, 0.0), self.height),
        )

    def random_point(self, rng: random.Random) -> Point:
        """Draw a uniformly random point inside the terrain."""
        return Point(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    def grid_points(self, rows: int, cols: int) -> Iterator[Point]:
        """Yield ``rows * cols`` points on a regular grid (cell centres).

        Useful for deterministic initial placements in tests and examples.
        """
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"grid must be positive, got {rows}x{cols}")
        cell_w = self.width / cols
        cell_h = self.height / rows
        for row in range(rows):
            for col in range(cols):
                yield Point((col + 0.5) * cell_w, (row + 0.5) * cell_h)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Terrain({self.width:.0f}m x {self.height:.0f}m)"
