"""Mobility model interface.

A mobility model is a pure function of time: ``position(t)`` returns where
the node is at simulation time ``t``.  Models are *analytic* — they do not
depend on the event loop — which keeps the network layer free to sample
positions at arbitrary instants (e.g. exactly when a flood is forwarded).
"""

from __future__ import annotations

import abc

from repro.mobility.terrain import Point

__all__ = ["MobilityModel"]


class MobilityModel(abc.ABC):
    """Abstract trajectory of one node."""

    @abc.abstractmethod
    def position(self, time: float) -> Point:
        """Return the node position at simulation time ``time`` (seconds)."""

    def speed_at(self, time: float, epsilon: float = 0.5) -> float:
        """Approximate instantaneous speed (m/s) by central differencing.

        Subclasses with an analytic speed may override this.
        """
        earlier = self.position(max(0.0, time - epsilon))
        later = self.position(time + epsilon)
        span = (time + epsilon) - max(0.0, time - epsilon)
        if span <= 0:
            return 0.0
        return earlier.distance_to(later) / span
