"""Mobility model interface.

A mobility model is a pure function of time: ``position(t)`` returns where
the node is at simulation time ``t``.  Models are *analytic* — they do not
depend on the event loop — which keeps the network layer free to sample
positions at arbitrary instants (e.g. exactly when a flood is forwarded).

Because trajectories are analytic, most models can also report *how long*
their current position stays put: a waypoint node mid-pause is pinned
until the pause ends, a stationary node forever, a trace replay until the
next distinct sample.  :meth:`MobilityModel.position_valid_until` exposes
that validity window; the network layer uses it to skip re-sampling (and
the topology layer to skip rebuilding connectivity) for nodes that
provably have not moved since the last snapshot.
"""

from __future__ import annotations

import abc

from repro.mobility.terrain import Point

__all__ = ["MobilityModel"]


class MobilityModel(abc.ABC):
    """Abstract trajectory of one node."""

    @abc.abstractmethod
    def position(self, time: float) -> Point:
        """Return the node position at simulation time ``time`` (seconds)."""

    def position_valid_until(self, time: float) -> float:
        """Latest ``t' >= time`` with ``position(s) == position(time)`` for all
        ``s`` in ``[time, t']``.

        The returned window is a *guarantee*: every sample inside it
        compares equal (bit-identically) to ``position(time)``, so callers
        may cache the position and skip re-sampling until the window ends.
        It need not be maximal — the conservative default returns ``time``
        itself ("no guarantee beyond this instant"), which is always
        correct.  Models with analytic pause/stationary phases override
        this with the true segment boundary; see ``docs/API.md`` for the
        contract mobility authors must honour.
        """
        return time

    def speed_at(self, time: float, epsilon: float = 0.5) -> float:
        """Approximate instantaneous speed (m/s) by central differencing.

        Subclasses with an analytic speed may override this.
        """
        earlier = self.position(max(0.0, time - epsilon))
        later = self.position(time + epsilon)
        span = (time + epsilon) - max(0.0, time - epsilon)
        if span <= 0:
            return 0.0
        return earlier.distance_to(later) / span
