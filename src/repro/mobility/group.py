"""Reference-point group mobility (RPGM).

Squads, convoys and tour groups do not move independently: members orbit
a shared *reference point* that itself follows some group trajectory.
This is the natural mobility for the paper's battlefield scenario —
soldiers move with their squad, squads roam the terrain.

Implementation: the group leader is any :class:`MobilityModel` (usually a
:class:`~repro.mobility.waypoint.RandomWaypoint`); each member holds a
fixed random offset plus a small independent jitter walk around the
reference point, clamped to the terrain.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.terrain import Point, Terrain

__all__ = ["GroupMember", "make_group"]


class GroupMember(MobilityModel):
    """One member of a mobility group.

    Parameters
    ----------
    terrain:
        The terrain (member positions are clamped to it).
    reference:
        The group's shared reference trajectory.
    rng:
        Private random stream of this member.
    spread:
        Maximum distance of the member's home offset from the reference
        point, metres.
    jitter:
        Amplitude of the member's slow oscillation around its home
        offset, metres (0 disables it).
    jitter_period:
        Period of the oscillation, seconds.
    """

    def __init__(
        self,
        terrain: Terrain,
        reference: MobilityModel,
        rng: random.Random,
        spread: float = 100.0,
        jitter: float = 20.0,
        jitter_period: float = 120.0,
    ) -> None:
        if spread < 0 or jitter < 0:
            raise ConfigurationError("spread and jitter must be >= 0")
        if jitter_period <= 0:
            raise ConfigurationError(
                f"jitter_period must be positive, got {jitter_period!r}"
            )
        self.terrain = terrain
        self.reference = reference
        self.spread = float(spread)
        self.jitter = float(jitter)
        self.jitter_period = float(jitter_period)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        distance = spread * math.sqrt(rng.random())  # uniform over the disc
        self._offset_x = distance * math.cos(angle)
        self._offset_y = distance * math.sin(angle)
        self._phase_x = rng.uniform(0.0, 2.0 * math.pi)
        self._phase_y = rng.uniform(0.0, 2.0 * math.pi)

    def position(self, time: float) -> Point:
        """Reference point + home offset + slow sinusoidal jitter."""
        anchor = self.reference.position(time)
        omega = 2.0 * math.pi / self.jitter_period
        wobble_x = self.jitter * math.sin(omega * time + self._phase_x)
        wobble_y = self.jitter * math.sin(omega * time + self._phase_y)
        return self.terrain.clamp(
            Point(
                anchor.x + self._offset_x + wobble_x,
                anchor.y + self._offset_y + wobble_y,
            )
        )

    def position_valid_until(self, time: float) -> float:
        """With jitter the member wobbles every instant; without it the
        member is pinned exactly while the reference point is (the offset
        arithmetic is deterministic, so equal anchors give equal positions).
        """
        if self.jitter > 0.0:
            return time
        return self.reference.position_valid_until(time)


def make_group(
    terrain: Terrain,
    reference: MobilityModel,
    rng: random.Random,
    size: int,
    spread: float = 100.0,
    jitter: float = 20.0,
    jitter_period: float = 120.0,
) -> List[GroupMember]:
    """Create ``size`` members sharing one reference trajectory."""
    if size < 1:
        raise ConfigurationError(f"group size must be >= 1, got {size!r}")
    return [
        GroupMember(terrain, reference, rng, spread, jitter, jitter_period)
        for _ in range(size)
    ]
