"""Stationary and scripted mobility models.

These are used by tests, examples and the Fig 9 single-source scenario
where deterministic geometry makes results easy to reason about.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.terrain import Point

__all__ = ["Stationary", "PiecewiseLinear"]


class Stationary(MobilityModel):
    """A node that never moves."""

    def __init__(self, point: Point) -> None:
        self.point = point

    def position(self, time: float) -> Point:
        return self.point

    def position_valid_until(self, time: float) -> float:
        return math.inf

    def speed_at(self, time: float, epsilon: float = 0.5) -> float:
        return 0.0


class PiecewiseLinear(MobilityModel):
    """Scripted trajectory through timestamped waypoints.

    Parameters
    ----------
    waypoints:
        Sequence of ``(time, point)`` pairs with strictly increasing times.
        Before the first waypoint the node sits at the first point; after
        the last it sits at the last point; in between it moves linearly.
    """

    def __init__(self, waypoints: Sequence[Tuple[float, Point]]) -> None:
        if not waypoints:
            raise ConfigurationError("PiecewiseLinear needs at least one waypoint")
        times = [t for t, _ in waypoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("waypoint times must be strictly increasing")
        self._times: List[float] = list(times)
        self._points: List[Point] = [p for _, p in waypoints]

    def position(self, time: float) -> Point:
        times, points = self._times, self._points
        if time <= times[0]:
            return points[0]
        if time >= times[-1]:
            return points[-1]
        # Walk to the surrounding pair (few waypoints; linear scan is fine).
        for index in range(len(times) - 1):
            if times[index] <= time <= times[index + 1]:
                span = times[index + 1] - times[index]
                fraction = (time - times[index]) / span
                return points[index].interpolate(points[index + 1], fraction)
        return points[-1]  # unreachable, kept for safety

    def position_valid_until(self, time: float) -> float:
        times, points = self._times, self._points
        if time >= times[-1]:
            return math.inf
        if time < times[0]:
            # Parked at the first point until the trajectory starts.
            end, segment = times[0], 0
        else:
            # Segment selection mirrors position(): at an exact waypoint
            # time the *earlier* segment (fraction 1.0) is the one sampled.
            segment = bisect.bisect_right(times, time) - 1
            if segment > 0 and times[segment] == time:
                segment -= 1
            end = time
        # Runs of equal waypoints (e.g. a replayed trace of a paused node)
        # pin the position through every segment of the run.
        while segment + 1 < len(points) and points[segment + 1] == points[segment]:
            end = times[segment + 1]
            segment += 1
        if segment == len(points) - 1:
            return math.inf  # constant through the final waypoint: parked forever
        return end
