"""Mobility substrate: terrain geometry and node movement models."""

from repro.mobility.base import MobilityModel
from repro.mobility.group import GroupMember, make_group
from repro.mobility.stationary import PiecewiseLinear, Stationary
from repro.mobility.subnets import SubnetGrid, SubnetTracker
from repro.mobility.terrain import Point, Terrain
from repro.mobility.trace import MobilityTrace, record_trace
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import Leg, RandomWaypoint

__all__ = [
    "MobilityModel",
    "Point",
    "Terrain",
    "RandomWaypoint",
    "RandomWalk",
    "Leg",
    "Stationary",
    "PiecewiseLinear",
    "GroupMember",
    "make_group",
    "SubnetGrid",
    "SubnetTracker",
    "MobilityTrace",
    "record_trace",
]
