"""Random-walk (Brownian-style) mobility.

The classic alternative to random waypoint: the node picks a random
direction and speed, walks for a fixed epoch, then turns.  Unlike random
waypoint it has no central-density bias, which makes it the right
sensitivity check for results that might secretly depend on waypoint's
centre-crowding (see the mobility ablation).

Boundary handling is reflective: a node hitting the terrain edge bounces
like a billiard ball, the standard choice for this model.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import List, NamedTuple, Optional

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.terrain import Point, Terrain

__all__ = ["RandomWalk"]


class _Epoch(NamedTuple):
    """One straight (possibly reflected) walking epoch."""

    start_time: float
    end_time: float
    origin: Point
    velocity_x: float
    velocity_y: float


def _reflect(value: float, limit: float) -> float:
    """Fold an unbounded coordinate back into [0, limit] (billiard)."""
    if limit <= 0:
        return 0.0
    period = 2.0 * limit
    value = math.fmod(value, period)
    if value < 0:
        value += period
    if value > limit:
        value = period - value
    return value


class RandomWalk(MobilityModel):
    """Random-walk trajectory with reflective terrain boundaries.

    Parameters
    ----------
    terrain:
        The flatland the node roams in.
    rng:
        Private random stream of this node.
    speed_min, speed_max:
        Uniform speed range in m/s for each epoch.
    epoch:
        Seconds between direction changes.
    start:
        Optional fixed starting point; drawn uniformly when omitted.
    """

    def __init__(
        self,
        terrain: Terrain,
        rng: random.Random,
        speed_min: float = 1.0,
        speed_max: float = 5.0,
        epoch: float = 60.0,
        start: Optional[Point] = None,
    ) -> None:
        if speed_min <= 0 or speed_max < speed_min:
            raise ConfigurationError(
                f"need 0 < speed_min <= speed_max, got [{speed_min!r}, {speed_max!r}]"
            )
        if epoch <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch!r}")
        self.terrain = terrain
        self._rng = rng
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.epoch = float(epoch)
        origin = start if start is not None else terrain.random_point(rng)
        if not terrain.contains(origin):
            raise ConfigurationError(f"start point {origin} is outside the terrain")
        self._epochs: List[_Epoch] = [self._make_epoch(0.0, origin)]
        self._epoch_starts: List[float] = [0.0]

    def _make_epoch(self, start_time: float, origin: Point) -> _Epoch:
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        speed = self._rng.uniform(self.speed_min, self.speed_max)
        return _Epoch(
            start_time,
            start_time + self.epoch,
            origin,
            speed * math.cos(angle),
            speed * math.sin(angle),
        )

    def _extend_to(self, time: float) -> None:
        last = self._epochs[-1]
        while last.end_time <= time:
            end_position = self._position_in_epoch(last, last.end_time)
            last = self._make_epoch(last.end_time, end_position)
            self._epochs.append(last)
            self._epoch_starts.append(last.start_time)

    def _position_in_epoch(self, epoch: _Epoch, time: float) -> Point:
        elapsed = time - epoch.start_time
        raw_x = epoch.origin.x + epoch.velocity_x * elapsed
        raw_y = epoch.origin.y + epoch.velocity_y * elapsed
        return Point(
            _reflect(raw_x, self.terrain.width),
            _reflect(raw_y, self.terrain.height),
        )

    def position(self, time: float) -> Point:
        """Node position at simulation time ``time`` (clamped at t=0)."""
        if time <= 0.0:
            return self._epochs[0].origin
        self._extend_to(time)
        index = bisect.bisect_right(self._epoch_starts, time) - 1
        return self._position_in_epoch(self._epochs[index], time)

    def position_valid_until(self, time: float) -> float:
        """A walker never pauses (``speed_min > 0``): no window beyond ``time``."""
        return 0.0 if time <= 0.0 else time

    def speed_at(self, time: float, epsilon: float = 0.5) -> float:
        """Exact instantaneous speed (constant within an epoch)."""
        if time <= 0.0:
            time = 0.0
        self._extend_to(time)
        index = bisect.bisect_right(self._epoch_starts, time) - 1
        epoch = self._epochs[index]
        return math.hypot(epoch.velocity_x, epoch.velocity_y)
