"""Windowed time series: how a quantity evolved over the run.

Scalar end-of-run summaries hide transients — the relay-overlay bootstrap,
a partition healing, a bursty update phase.  A :class:`TimeSeries`
collects timestamped samples and buckets them into fixed windows for
convergence plots and steady-state checks (used by the warm-up
calibration in DESIGN.md and the ``repro.viz`` charts).
"""

from __future__ import annotations

import bisect
import statistics
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["TimeSeries"]


class TimeSeries:
    """Timestamped scalar samples with windowed aggregation."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ConfigurationError(
                f"samples must be time-ordered: {time} after {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> List[float]:
        """Sample timestamps (copy)."""
        return list(self._times)

    @property
    def values(self) -> List[float]:
        """Sample values (copy)."""
        return list(self._values)

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent ``(time, value)`` sample, or ``None`` when empty."""
        if not self._times:
            return None
        return self._times[-1], self._values[-1]

    def between(self, start: float, end: float) -> List[float]:
        """Values of samples with ``start <= time < end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._values[lo:hi]

    def bucketed(
        self, width: float, reducer: str = "mean"
    ) -> List[Tuple[float, float]]:
        """Aggregate samples into windows of ``width`` seconds.

        Returns ``(bucket_start, aggregate)`` pairs for every non-empty
        bucket.  ``reducer``: ``"mean"``, ``"sum"``, ``"max"``, ``"min"``
        or ``"count"``.
        """
        if width <= 0:
            raise ConfigurationError(f"bucket width must be positive, got {width!r}")
        reducers = {
            "mean": statistics.fmean,
            "sum": sum,
            "max": max,
            "min": min,
            "count": len,
        }
        try:
            fold = reducers[reducer]
        except KeyError:
            raise ConfigurationError(
                f"unknown reducer {reducer!r}; choose from {sorted(reducers)}"
            ) from None
        if not self._times:
            return []
        buckets: List[Tuple[float, float]] = []
        start = (self._times[0] // width) * width
        end = self._times[-1]
        while start <= end:
            values = self.between(start, start + width)
            if values:
                buckets.append((start, float(fold(values))))
            start += width
        return buckets

    def rate_per_second(self, width: float) -> List[Tuple[float, float]]:
        """Event rate per window: ``count / width`` for each bucket."""
        return [
            (start, count / width)
            for start, count in self.bucketed(width, reducer="count")
        ]
