"""Degradation metrics for fault-injected runs.

Quantifies how gracefully a strategy degrades while the fault plan is
active and how fast it recovers afterwards:

* **partition exposure** — total seconds during which at least one
  fault-plan partition was in force (nested/overlapping partitions count
  once: the meter tracks a refcount, not a sum of windows);
* **stale-serve rate during partition** — of the reads answered while
  partitioned, the fraction served stale (``staleness_age > 0`` on the
  read audit), the paper's availability-vs-consistency trade-off made
  measurable;
* **time-to-reconverge** — after a partition heals, how long stale
  answers keep appearing: the timestamp of the *last* stale read after
  the heal, minus the heal time (0 when the first post-heal read is
  already fresh).

Availability itself (answered / issued queries) comes from the latency
aggregator and is merged into the same ``fault_stats`` mapping by
:meth:`repro.metrics.collector.MetricsCollector.summary`.

The meter is only attached when a fault plan is active; fault-free runs
carry a ``None`` and skip every call site, preserving bit-identical
behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List

__all__ = ["DegradationMeter"]


class DegradationMeter:
    """Accumulates partition-exposure and reconvergence observations.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time
        (used by :meth:`reset` and :meth:`snapshot`; the event-driven
        feeds all pass their own timestamps).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._active = 0  # refcount of partitions currently in force
        self._since: float = 0.0  # when _active last became nonzero
        self._partition_seconds = 0.0
        self._reads_in_partition = 0
        self._stale_in_partition = 0
        # Reconvergence tracking: while _heal_at is set we are watching
        # for stale stragglers after the most recent full heal.
        self._heal_at: float = -1.0
        self._last_stale_after_heal: float = 0.0
        self._reconverge: List[float] = []

    # ------------------------------------------------------------------
    # Feeds (injector + read path)
    # ------------------------------------------------------------------
    def on_partition_start(self, now: float) -> None:
        """A fault-plan partition came into force at ``now``."""
        self._settle_heal()
        if self._active == 0:
            self._since = now
        self._active += 1

    def on_partition_end(self, now: float) -> None:
        """One partition healed; exposure closes when the last one does."""
        if self._active == 0:
            return
        self._active -= 1
        if self._active == 0:
            self._partition_seconds += now - self._since
            self._heal_at = now
            self._last_stale_after_heal = now

    def on_read(self, now: float, stale: bool) -> None:
        """Audit one answered read (``stale`` per the staleness tracker)."""
        if self._active > 0:
            self._reads_in_partition += 1
            if stale:
                self._stale_in_partition += 1
        elif stale and self._heal_at >= 0:
            self._last_stale_after_heal = now

    def _settle_heal(self) -> None:
        """Close out a pending reconvergence observation."""
        if self._heal_at >= 0:
            self._reconverge.append(self._last_stale_after_heal - self._heal_at)
            self._heal_at = -1.0

    # ------------------------------------------------------------------
    # Collector integration
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Warm-up reset: drop accumulated numbers, keep live fault state."""
        now = self._clock()
        if self._active > 0:
            self._since = now
        self._partition_seconds = 0.0
        self._reads_in_partition = 0
        self._stale_in_partition = 0
        self._heal_at = -1.0
        self._last_stale_after_heal = 0.0
        self._reconverge = []

    def snapshot(self) -> Dict[str, float]:
        """Current degradation numbers; never mutates the meter."""
        now = self._clock()
        partition_seconds = self._partition_seconds
        if self._active > 0:
            partition_seconds += now - self._since
        reconverge = list(self._reconverge)
        if self._heal_at >= 0:
            reconverge.append(self._last_stale_after_heal - self._heal_at)
        reads = self._reads_in_partition
        stale = self._stale_in_partition
        return {
            "partition_seconds": partition_seconds,
            "reads_in_partition": float(reads),
            "stale_reads_in_partition": float(stale),
            "stale_serve_rate_in_partition": (stale / reads) if reads else 0.0,
            "heals_observed": float(len(reconverge)),
            "mean_time_to_reconverge": (
                sum(reconverge) / len(reconverge) if reconverge else 0.0
            ),
        }
