"""Plain-text report formatting for metrics summaries and sweep tables."""

from __future__ import annotations

from typing import List, Sequence

from repro.metrics.collector import MetricsSummary

__all__ = ["format_summary", "format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table with right-aligned numeric-ish columns."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_summary(summary: MetricsSummary, title: str = "run summary") -> str:
    """Render one run's summary as a readable block."""
    rows = [
        ("transmissions (hop count)", summary.transmissions),
        ("logical messages", summary.messages),
        ("bytes on air", summary.bytes_on_air),
        ("queries issued", summary.queries_issued),
        ("queries answered", summary.queries_answered),
        ("queries unanswered", summary.queries_unanswered),
        ("mean latency (s)", summary.mean_latency),
        ("mean hit latency (s)", summary.mean_hit_latency),
        ("p95 latency (s)", summary.p95_latency),
        ("local answer ratio", summary.local_answer_ratio),
        ("stale read ratio", summary.stale_ratio),
        ("consistency violations", summary.violation_ratio),
        ("mean staleness age (s)", summary.mean_staleness_age),
    ]
    body = format_table(("metric", "value"), rows, title=title)
    if summary.transmissions_by_type:
        type_rows = sorted(
            summary.transmissions_by_type.items(), key=lambda kv: -kv[1]
        )
        body += "\n\n" + format_table(
            ("message type", "transmissions"), type_rows, title="traffic by type"
        )
    return body
