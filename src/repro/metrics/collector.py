"""One-stop metrics bundle handed to the network and the protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.metrics.counters import MessageCounters
from repro.metrics.latency import LatencyRecorder
from repro.metrics.staleness import StalenessTracker
from repro.net.message import Message
from repro.obs.events import MetricsReset

__all__ = ["MetricsCollector", "MetricsSummary"]


@dataclass(frozen=True)
class MetricsSummary:
    """Flat snapshot of a finished run, ready for table formatting."""

    transmissions: int
    messages: int
    bytes_on_air: int
    queries_issued: int
    queries_answered: int
    queries_unanswered: int
    mean_latency: float
    mean_hit_latency: float
    p95_latency: float
    local_answer_ratio: float
    stale_ratio: float
    violation_ratio: float
    mean_staleness_age: float
    transmissions_by_type: Dict[str, int]
    counters: Dict[str, int]
    # Degradation numbers of fault-injected runs (availability, stale
    # serves during partition, time-to-reconverge); empty without faults.
    fault_stats: Dict[str, float] = field(default_factory=dict)


class MetricsCollector:
    """Aggregates traffic, latency and staleness for one simulation run.

    Also exposes free-form named counters (``bump``) so protocols can count
    protocol-specific events (relay promotions, poll fallbacks, ...).
    """

    def __init__(self, delta: float = 240.0) -> None:
        self.traffic = MessageCounters()
        self.latency = LatencyRecorder()
        self.staleness = StalenessTracker(delta=delta)
        self._counters: Dict[str, int] = {}
        self._trace = None
        self._clock: Optional[Callable[[], float]] = None
        # Attached by the runner only for fault-injected runs; None keeps
        # the read path free of degradation accounting.
        self.degradation = None

    # TrafficObserver protocol -----------------------------------------
    def record_transmissions(self, message: Message, transmissions: int) -> None:
        """Forward network-layer accounting into the traffic counters."""
        self.traffic.record_transmissions(message, transmissions)

    def attach_trace(self, trace, clock: Callable[[], float]) -> None:
        """Emit bookkeeping events (currently ``metrics_reset``) to ``trace``.

        ``clock`` supplies the simulation time, since the collector itself
        is clock-free.
        """
        self._trace = trace
        self._clock = clock

    def reset(self) -> None:
        """Forget everything measured so far (end-of-warm-up hook).

        The staleness tracker's ground-truth version history is preserved
        — only its read audits are dropped — so post-warm-up reads are
        still judged against the true update timeline.
        """
        self.traffic = MessageCounters()
        self.latency = LatencyRecorder()
        self.staleness._audits.clear()
        self._counters = {}
        if self.degradation is not None:
            self.degradation.reset()
        if self._trace is not None and self._trace.enabled and self._clock is not None:
            self._trace.emit(MetricsReset(time=self._clock()))

    # Free-form counters -------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        """Increment the named counter by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Read a named counter (0 if never bumped)."""
        return self._counters.get(name, 0)

    @property
    def counters(self) -> Dict[str, int]:
        """Copy of all named counters."""
        return dict(self._counters)

    # Snapshot -----------------------------------------------------------
    def summary(self) -> MetricsSummary:
        """Freeze the current state into a :class:`MetricsSummary`."""
        fault_stats: Dict[str, float] = {}
        if self.degradation is not None:
            fault_stats = self.degradation.snapshot()
            issued = self.latency.issued
            fault_stats["availability"] = (
                self.latency.answered / issued if issued else 1.0
            )
        return MetricsSummary(
            transmissions=self.traffic.transmissions(),
            messages=self.traffic.messages(),
            bytes_on_air=self.traffic.total_bytes(),
            queries_issued=self.latency.issued,
            queries_answered=self.latency.answered,
            queries_unanswered=self.latency.unanswered,
            mean_latency=self.latency.mean_latency(),
            mean_hit_latency=self.latency.mean_hit_latency(),
            p95_latency=self.latency.percentile_latency(0.95),
            local_answer_ratio=self.latency.local_answer_ratio(),
            stale_ratio=self.staleness.stale_ratio(),
            violation_ratio=self.staleness.violation_ratio(),
            mean_staleness_age=self.staleness.mean_staleness_age(),
            transmissions_by_type={
                name: count.transmissions
                for name, count in self.traffic.by_type().items()
            },
            counters=dict(self._counters),
            fault_stats=fault_stats,
        )
