"""Consistency auditing: how stale was each served read?

Section 3 defines the three consistency levels in terms of the *time* by
which a read may lag the master copy (eqs 3.2.1-3.2.3).  To audit reads we
keep, per item, the instant each version was *superseded*; the staleness
age of serving version ``v`` at time ``t`` is then::

    age = t - superseded_at(v)     (0 if v is still current)

* a **strong** read is violated when ``age > 0`` (any stale version);
* a **delta** read is violated when ``age > delta``;
* a **weak** read is never violated in the single-writer model — versions
  are monotone, so every cached value was correct at some past instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["ReadAudit", "StalenessTracker"]


@dataclass
class ReadAudit:
    """Outcome of auditing one served read."""

    item_id: int
    level: str
    served_version: int
    current_version: int
    staleness_age: float
    violated: bool

    @property
    def version_lag(self) -> int:
        """How many versions behind the master the read was."""
        return self.current_version - self.served_version


class StalenessTracker:
    """Audits served reads against the ground-truth update history."""

    def __init__(self, delta: float = 240.0) -> None:
        self.delta = float(delta)
        # item -> {version: time at which it was superseded}
        self._superseded: Dict[int, Dict[int, float]] = {}
        self._current: Dict[int, int] = {}
        self._audits: List[ReadAudit] = []
        #: Cumulative count of master-copy updates seen (never reset —
        #: the online controller derives per-window update rates from it).
        self.updates_recorded = 0

    # ------------------------------------------------------------------
    # Ground truth feed
    # ------------------------------------------------------------------
    def record_update(self, item_id: int, new_version: int, now: float) -> None:
        """Master copy of ``item_id`` advanced to ``new_version`` at ``now``."""
        previous = self._current.get(item_id, new_version - 1)
        self._superseded.setdefault(item_id, {})[previous] = now
        self._current[item_id] = new_version
        self.updates_recorded += 1

    def current_version(self, item_id: int) -> int:
        """Latest version this tracker has seen for ``item_id``."""
        return self._current.get(item_id, 0)

    # ------------------------------------------------------------------
    # Read auditing
    # ------------------------------------------------------------------
    def record_read(
        self,
        item_id: int,
        served_version: int,
        now: float,
        level: str,
        delta: Optional[float] = None,
    ) -> ReadAudit:
        """Audit one served read and accumulate it."""
        current = self._current.get(item_id, 0)
        if served_version >= current:
            age = 0.0
        else:
            superseded_at = self._superseded.get(item_id, {}).get(served_version)
            if superseded_at is None:
                # Version predates tracking; treat as stale since t=0.
                age = now
            else:
                age = max(0.0, now - superseded_at)
        bound = self.delta if delta is None else float(delta)
        if level == "strong":
            violated = age > 0.0
        elif level == "delta":
            violated = age > bound
        else:  # weak — any previous correct value is acceptable
            violated = False
        audit = ReadAudit(item_id, level, served_version, current, age, violated)
        self._audits.append(audit)
        return audit

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        """Number of audited reads."""
        return len(self._audits)

    def stale_reads(self, level: Optional[str] = None) -> int:
        """Reads that returned a non-current version."""
        return sum(1 for audit in self._filtered(level) if audit.staleness_age > 0)

    def violations(self, level: Optional[str] = None) -> int:
        """Reads that violated their requested consistency level."""
        return sum(1 for audit in self._filtered(level) if audit.violated)

    def stale_ratio(self, level: Optional[str] = None) -> float:
        """Fraction of reads returning stale data."""
        audits = self._filtered(level)
        if not audits:
            return 0.0
        return sum(1 for audit in audits if audit.staleness_age > 0) / len(audits)

    def violation_ratio(self, level: Optional[str] = None) -> float:
        """Fraction of reads violating their consistency level."""
        audits = self._filtered(level)
        if not audits:
            return 0.0
        return sum(1 for audit in audits if audit.violated) / len(audits)

    def mean_staleness_age(self, level: Optional[str] = None) -> float:
        """Mean staleness age over all audited reads (seconds)."""
        audits = self._filtered(level)
        if not audits:
            return 0.0
        return sum(audit.staleness_age for audit in audits) / len(audits)

    def _filtered(self, level: Optional[str]) -> List[ReadAudit]:
        if level is None:
            return self._audits
        return [audit for audit in self._audits if audit.level == level]
