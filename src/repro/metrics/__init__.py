"""Metrics: traffic counters, query latency, staleness auditing."""

from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.metrics.counters import MessageCounters, TypeCount
from repro.metrics.degradation import DegradationMeter
from repro.metrics.latency import LatencyRecorder, QueryRecord
from repro.metrics.report import format_summary, format_table
from repro.metrics.staleness import ReadAudit, StalenessTracker
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "DegradationMeter",
    "MetricsCollector",
    "MetricsSummary",
    "MessageCounters",
    "TypeCount",
    "LatencyRecorder",
    "QueryRecord",
    "StalenessTracker",
    "ReadAudit",
    "TimeSeries",
    "format_summary",
    "format_table",
]
