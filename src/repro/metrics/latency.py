"""Query latency recording.

A query is *opened* when the workload issues it at a peer and *closed*
when the consistency strategy answers it.  Queries still open at the end
of a run count as unanswered (the disconnection/partition cases Section
4.5 worries about) and are reported separately rather than polluting the
latency distribution.
"""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ProtocolError

__all__ = ["QueryRecord", "LatencyRecorder"]

_QUERY_IDS = itertools.count(1)


@dataclass
class QueryRecord:
    """Lifecycle of one query request."""

    query_id: int
    node_id: int
    item_id: int
    level: str
    issued_at: float
    served_at: Optional[float] = None
    served_version: Optional[int] = None
    served_locally: bool = False
    cache_hit: bool = False

    @property
    def answered(self) -> bool:
        """``True`` once the query has been served."""
        return self.served_at is not None

    @property
    def latency(self) -> float:
        """Seconds from issue to answer; raises if unanswered."""
        if self.served_at is None:
            raise ProtocolError(f"query {self.query_id} was never answered")
        return self.served_at - self.issued_at


class LatencyRecorder:
    """Collects query lifecycles and summarises their latency."""

    def __init__(self) -> None:
        self._records: Dict[int, QueryRecord] = {}

    def open(self, node_id: int, item_id: int, level: str, now: float) -> QueryRecord:
        """Register a freshly issued query; returns its record."""
        record = QueryRecord(
            query_id=next(_QUERY_IDS),
            node_id=node_id,
            item_id=item_id,
            level=level,
            issued_at=now,
        )
        self._records[record.query_id] = record
        return record

    def close(
        self,
        query_id: int,
        now: float,
        served_version: int,
        served_locally: bool = False,
    ) -> Optional[QueryRecord]:
        """Mark a query answered at time ``now`` with ``served_version``.

        Unknown query ids are tolerated silently: they belong to queries
        opened before a metrics reset (warm-up) and must not crash the
        answer path.  Double-answering a *known* query is still an error.
        """
        record = self._records.get(query_id)
        if record is None:
            return None
        if record.answered:
            raise ProtocolError(f"query {query_id} answered twice")
        record.served_at = now
        record.served_version = served_version
        record.served_locally = served_locally
        return record

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def issued(self) -> int:
        """Total queries issued."""
        return len(self._records)

    @property
    def answered(self) -> int:
        """Queries answered so far."""
        return sum(1 for record in self._records.values() if record.answered)

    @property
    def unanswered(self) -> int:
        """Queries never answered (partition/disconnection casualties)."""
        return self.issued - self.answered

    def latencies(self, level: Optional[str] = None) -> List[float]:
        """All answered latencies, optionally filtered by consistency level."""
        return [
            record.latency
            for record in self._records.values()
            if record.answered and (level is None or record.level == level)
        ]

    def mean_latency(self, level: Optional[str] = None) -> float:
        """Mean answered latency in seconds (0 when nothing answered)."""
        values = self.latencies(level)
        if not values:
            return 0.0
        return statistics.fmean(values)

    def hit_latencies(self) -> List[float]:
        """Latencies of answered queries that hit the local cache.

        This is the population the paper's latency figures are about: a
        query served by a cache node under a consistency check.  Miss
        queries measure the (strategy-independent) fetch path instead.
        """
        return [
            record.latency
            for record in self._records.values()
            if record.answered and record.cache_hit
        ]

    def mean_hit_latency(self) -> float:
        """Mean latency over cache-hit queries (0 when there are none)."""
        values = self.hit_latencies()
        if not values:
            return 0.0
        return statistics.fmean(values)

    def percentile_latency(self, fraction: float, level: Optional[str] = None) -> float:
        """Latency at ``fraction`` (e.g. 0.95) of the answered distribution."""
        values = sorted(self.latencies(level))
        if not values:
            return 0.0
        index = min(len(values) - 1, int(fraction * len(values)))
        return values[index]

    def local_answer_ratio(self) -> float:
        """Fraction of answered queries served without leaving the node."""
        answered = [record for record in self._records.values() if record.answered]
        if not answered:
            return 0.0
        return sum(1 for record in answered if record.served_locally) / len(answered)

    def records(self) -> List[QueryRecord]:
        """All records (answered and not), in issue order."""
        return [self._records[qid] for qid in sorted(self._records)]
