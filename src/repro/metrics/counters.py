"""Traffic accounting: per-message-type counters.

The paper's "network traffic" figures count messages; because every hop of
a multi-hop unicast and every rebroadcast of a flood occupies the channel,
we count *per-hop transmissions* (and also keep logical message counts and
bytes).  The network layer reports into this module through the
:class:`~repro.net.network.TrafficObserver` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net.message import Message

__all__ = ["TypeCount", "MessageCounters"]


@dataclass
class TypeCount:
    """Accumulated traffic for one message type."""

    messages: int = 0
    transmissions: int = 0
    bytes: int = 0

    def add(self, transmissions: int, size_bytes: int) -> None:
        """Fold one logical send into the counters."""
        self.messages += 1
        self.transmissions += transmissions
        self.bytes += transmissions * size_bytes


class MessageCounters:
    """Per-type traffic accumulator (implements ``TrafficObserver``)."""

    def __init__(self) -> None:
        self._by_type: Dict[str, TypeCount] = {}

    def record_transmissions(self, message: Message, transmissions: int) -> None:
        """Network-layer hook: one logical send caused ``transmissions`` hops."""
        entry = self._by_type.get(message.type_name)
        if entry is None:
            entry = TypeCount()
            self._by_type[message.type_name] = entry
        entry.add(transmissions, message.size_bytes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_type(self) -> Dict[str, TypeCount]:
        """Copy of the per-type counters."""
        return dict(self._by_type)

    def types(self) -> List[str]:
        """Message type names seen so far."""
        return sorted(self._by_type)

    def messages(self, *type_names: str) -> int:
        """Logical message count, optionally restricted to ``type_names``."""
        return self._sum("messages", type_names)

    def transmissions(self, *type_names: str) -> int:
        """Per-hop transmission count, optionally restricted to types."""
        return self._sum("transmissions", type_names)

    def total_bytes(self, *type_names: str) -> int:
        """Bytes on air, optionally restricted to types."""
        return self._sum("bytes", type_names)

    def _sum(self, attribute: str, type_names: tuple) -> int:
        if type_names:
            entries = [
                self._by_type[name] for name in type_names if name in self._by_type
            ]
        else:
            entries = list(self._by_type.values())
        return sum(getattr(entry, attribute) for entry in entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageCounters(tx={self.transmissions()}, types={len(self._by_type)})"
