"""Item-access patterns: which data item does a query ask for?

The paper does not specify an access distribution; uniform access over all
foreign items is the neutral default.  A Zipf pattern is provided because
skewed popularity is the regime where cooperative caching shines (and it
powers one of the example scenarios).
"""

from __future__ import annotations

import abc
import bisect
import itertools
import random
from typing import Callable, List, Optional, Sequence

from repro.errors import WorkloadError

__all__ = ["AccessPattern", "UniformAccess", "ZipfAccess", "FlashCrowdAccess"]


class AccessPattern(abc.ABC):
    """Chooses the target item of a query."""

    @abc.abstractmethod
    def choose(self, rng: random.Random, requester: int) -> int:
        """Pick an item id for a query issued at host ``requester``."""


class UniformAccess(AccessPattern):
    """Uniform choice over all items except the requester's own."""

    def __init__(self, item_ids: Sequence[int]) -> None:
        if not item_ids:
            raise WorkloadError("UniformAccess needs at least one item")
        self._items: List[int] = sorted(item_ids)

    def choose(self, rng: random.Random, requester: int) -> int:
        while True:
            item = self._items[rng.randrange(len(self._items))]
            if item != requester or len(self._items) == 1:
                return item


class ZipfAccess(AccessPattern):
    """Zipf-distributed popularity with exponent ``theta``.

    Item rank order is a deterministic shuffle of the id space so that
    popular items are scattered over the terrain rather than clustered on
    low ids.
    """

    def __init__(self, item_ids: Sequence[int], theta: float = 0.8, seed: int = 0) -> None:
        if not item_ids:
            raise WorkloadError("ZipfAccess needs at least one item")
        if theta < 0:
            raise WorkloadError(f"theta must be >= 0, got {theta!r}")
        self._items = sorted(item_ids)
        shuffler = random.Random(seed)
        shuffler.shuffle(self._items)
        weights = [1.0 / (rank ** theta) for rank in range(1, len(self._items) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = list(
            itertools.accumulate(weight / total for weight in weights)
        )

    def choose(self, rng: random.Random, requester: int) -> int:
        for _ in range(16):
            point = rng.random()
            index = bisect.bisect_left(self._cumulative, point)
            index = min(index, len(self._items) - 1)
            item = self._items[index]
            if item != requester or len(self._items) == 1:
                return item
        # Pathological tiny catalogs: fall back to any non-own item.
        for item in self._items:
            if item != requester:
                return item
        return self._items[0]


class FlashCrowdAccess(AccessPattern):
    """Zipf popularity whose ranking reshuffles at ``shift_at``.

    Before the shift instant queries follow one Zipf ranking; at and
    after it they follow an independently shuffled ranking with the same
    skew — the flash crowd abandons yesterday's hot items for new ones,
    invalidating every popularity-driven cache placement at a stroke.

    ``clock`` supplies the current simulated time (the runner wires
    ``lambda: sim.now``); without a clock the pattern stays permanently
    in its pre-shift phase.  Both phases draw from the caller's RNG the
    same way, so the event stream stays deterministic per seed.
    """

    def __init__(
        self,
        item_ids: Sequence[int],
        theta: float = 0.8,
        seed: int = 0,
        shift_at: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if shift_at < 0:
            raise WorkloadError(f"shift_at must be >= 0, got {shift_at!r}")
        # A different shuffler seed yields an independent ranking; the
        # xor constant just decorrelates it from ``seed + 1`` style uses.
        self._before = ZipfAccess(item_ids, theta=theta, seed=seed)
        self._after = ZipfAccess(item_ids, theta=theta, seed=seed ^ 0x5BD1E995)
        self.shift_at = float(shift_at)
        self.clock = clock

    @property
    def shifted(self) -> bool:
        """Whether the post-shift ranking is currently in effect."""
        return self.clock is not None and self.clock() >= self.shift_at

    def choose(self, rng: random.Random, requester: int) -> int:
        phase = self._after if self.shifted else self._before
        return phase.choose(rng, requester)
