"""Workload generation: arrivals, access patterns, level mixes, drivers."""

from repro.workload.access import AccessPattern, UniformAccess, ZipfAccess
from repro.workload.arrivals import ExponentialProcess, FixedIntervalProcess
from repro.workload.drivers import QueryWorkload, UpdateWorkload
from repro.workload.mix import LevelMix

__all__ = [
    "ExponentialProcess",
    "FixedIntervalProcess",
    "AccessPattern",
    "UniformAccess",
    "ZipfAccess",
    "LevelMix",
    "QueryWorkload",
    "UpdateWorkload",
]
