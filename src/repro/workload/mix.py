"""Consistency-level mixes: which guarantee does each query request?

Fig 7 evaluates RPCC under pure strong (SC), delta (DC) and weak (WC)
workloads plus a hybrid (HY) where "requests with three different
consistency requirements come with the same probability".
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple

from repro.consistency.levels import ConsistencyLevel, parse_level
from repro.errors import WorkloadError

__all__ = ["LevelMix"]


class LevelMix:
    """Weighted random choice of a consistency level per query."""

    def __init__(self, weights: Dict[ConsistencyLevel, float]) -> None:
        if not weights:
            raise WorkloadError("LevelMix needs at least one level")
        total = sum(weights.values())
        if total <= 0 or any(weight < 0 for weight in weights.values()):
            raise WorkloadError(f"weights must be non-negative with a positive sum: {weights!r}")
        self._levels: Tuple[ConsistencyLevel, ...] = tuple(weights)
        self._cumulative = []
        running = 0.0
        for level in self._levels:
            running += weights[level] / total
            self._cumulative.append(running)

    @classmethod
    def pure(cls, level: str) -> "LevelMix":
        """A mix that always requests one level (``"sc"``/``"dc"``/``"wc"``)."""
        return cls({parse_level(level): 1.0})

    @classmethod
    def hybrid(cls) -> "LevelMix":
        """The paper's HY workload: SC/DC/WC with equal probability."""
        return cls(
            {
                ConsistencyLevel.STRONG: 1.0,
                ConsistencyLevel.DELTA: 1.0,
                ConsistencyLevel.WEAK: 1.0,
            }
        )

    def choose(self, rng: random.Random) -> ConsistencyLevel:
        """Draw a level for one query."""
        point = rng.random()
        for level, bound in zip(self._levels, self._cumulative):
            if point <= bound:
                return level
        return self._levels[-1]

    @property
    def levels(self) -> Sequence[ConsistencyLevel]:
        """Levels with non-zero probability."""
        return self._levels
