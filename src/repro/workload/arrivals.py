"""Arrival processes.

The paper's workload: "Each mobile host generates an independent stream of
updates to its source data and its query requests with an exponentially
distributed update interval and an exponentially distributed query
interval."  :class:`ExponentialProcess` is that Poisson stream; a
deterministic :class:`FixedIntervalProcess` exists for tests.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.errors import WorkloadError
from repro.sim.engine import EventHandle, Simulator, StartupBatch

__all__ = ["ExponentialProcess", "FixedIntervalProcess"]


class ExponentialProcess:
    """Poisson arrivals: i.i.d. exponential gaps with the given mean.

    Parameters
    ----------
    sim:
        Event kernel.
    rng:
        Private random stream of this process.
    mean_interval:
        Mean gap between arrivals, seconds.
    callback:
        Zero-argument callable fired on each arrival.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        mean_interval: float,
        callback: Callable[[], Any],
    ) -> None:
        if mean_interval <= 0:
            raise WorkloadError(f"mean_interval must be positive, got {mean_interval!r}")
        self._sim = sim
        self._rng = rng
        self.mean_interval = float(mean_interval)
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self.arrivals = 0

    @property
    def running(self) -> bool:
        """``True`` while arrivals are scheduled."""
        return self._handle is not None and self._handle.pending

    def start(self, batch: Optional[StartupBatch] = None) -> None:
        """Schedule the first arrival.  Idempotent while running.

        With ``batch``, the gap is drawn now (preserving the RNG draw
        order of the unbatched path) but the event is queued into the
        collector; the handle arrives when the batch flushes.
        """
        if self.running:
            return
        if batch is not None:
            gap = self._rng.expovariate(1.0 / self.mean_interval)
            batch.add(gap, self._fire, adopt=self._adopt)
            return
        self._schedule_next()

    def _adopt(self, handle: EventHandle) -> None:
        self._handle = handle

    def stop(self) -> None:
        """Cancel the pending arrival."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule_next(self) -> None:
        gap = self._rng.expovariate(1.0 / self.mean_interval)
        self._handle = self._sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        self.arrivals += 1
        self._schedule_next()
        self._callback()


class FixedIntervalProcess:
    """Deterministic arrivals every ``interval`` seconds (for tests)."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
    ) -> None:
        if interval <= 0:
            raise WorkloadError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self.interval = float(interval)
        self._callback = callback
        self._handle: Optional[EventHandle] = None
        self.arrivals = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        if self._handle is None or not self._handle.pending:
            self._handle = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Cancel the pending arrival."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self.arrivals += 1
        self._handle = self._sim.schedule(self.interval, self._fire)
        self._callback()
