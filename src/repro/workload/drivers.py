"""Workload drivers: wire arrival processes to hosts.

* :class:`UpdateWorkload` — every source host updates its master copy with
  exponentially distributed intervals (``I_Update``, Table 1: 2 min).
* :class:`QueryWorkload` — every host issues queries with exponentially
  distributed intervals (``I_Query``, Table 1: 20 s), choosing the target
  item via an access pattern and the consistency level via a mix.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.consistency.base import ConsistencyStrategy
from repro.peers.host import MobileHost
from repro.sim.engine import StartupBatch
from repro.sim.rng import RandomStreams
from repro.workload.access import AccessPattern
from repro.workload.arrivals import ExponentialProcess
from repro.workload.mix import LevelMix

__all__ = ["UpdateWorkload", "QueryWorkload"]


class UpdateWorkload:
    """Independent update stream per source host."""

    def __init__(
        self,
        hosts: Iterable[MobileHost],
        streams: RandomStreams,
        mean_interval: float = 120.0,
    ) -> None:
        self._processes: List[ExponentialProcess] = []
        for host in hosts:
            if host.source_item is None:
                continue
            process = ExponentialProcess(
                host.sim,
                streams.stream(f"update/{host.node_id}"),
                mean_interval,
                host.update_master,
            )
            self._processes.append(process)

    def start(self, batch: Optional[StartupBatch] = None) -> None:
        """Begin every host's update stream."""
        for process in self._processes:
            process.start(batch)

    def stop(self) -> None:
        """Halt every host's update stream."""
        for process in self._processes:
            process.stop()

    @property
    def total_updates(self) -> int:
        """Updates generated so far across all hosts."""
        return sum(process.arrivals for process in self._processes)


class QueryWorkload:
    """Independent query stream per host.

    Queries at offline hosts are still issued (a user can ask their own
    device anything); the agent answers them from local state only.
    """

    def __init__(
        self,
        hosts: Iterable[MobileHost],
        streams: RandomStreams,
        strategy: ConsistencyStrategy,
        access: AccessPattern,
        mix: LevelMix,
        mean_interval: float = 20.0,
        restrict_to_items: Optional[List[int]] = None,
    ) -> None:
        self._processes: List[ExponentialProcess] = []
        self._streams = streams
        self._strategy = strategy
        self._access = access
        self._mix = mix
        self._restrict = restrict_to_items
        for host in hosts:
            rng = streams.stream(f"query/{host.node_id}")

            def issue(host: MobileHost = host, rng=rng) -> None:
                self._issue(host, rng)

            process = ExponentialProcess(host.sim, rng, mean_interval, issue)
            self._processes.append(process)

    def _issue(self, host: MobileHost, rng) -> None:
        if self._restrict is not None:
            candidates = [i for i in self._restrict if i != host.node_id]
            if not candidates:
                return
            item_id = candidates[rng.randrange(len(candidates))]
        else:
            item_id = self._access.choose(rng, host.node_id)
        level = self._mix.choose(rng)
        agent = self._strategy.agent_for(host.node_id)
        agent.local_query(item_id, level)

    def start(self, batch: Optional[StartupBatch] = None) -> None:
        """Begin every host's query stream."""
        for process in self._processes:
            process.start(batch)

    def stop(self) -> None:
        """Halt every host's query stream."""
        for process in self._processes:
            process.stop()

    @property
    def total_queries(self) -> int:
        """Queries issued so far across all hosts."""
        return sum(process.arrivals for process in self._processes)
