"""Energy substrate: batteries and per-operation costs (feeds CE)."""

from repro.energy.battery import Battery, EnergyCosts

__all__ = ["Battery", "EnergyCosts"]
