"""Battery model backing the paper's CE (coefficient of energy) input.

Eq. 4.2.7 defines ``CE = PER_t / E_MAX`` — the current energy level as a
fraction of maximum.  The battery drains on every transmission, reception
and with idle time; relay-peer selection then prefers nodes with
``CE > mu_CE``.

Costs default to values in the spirit of early-2000s 802.11 measurement
studies (transmit more expensive than receive, both dominated by per-packet
fixed cost at these message sizes).  Absolute joules are irrelevant to the
reproduction — only the *relative ordering* of node energy levels feeds the
selection criterion.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["EnergyCosts", "Battery"]


class EnergyCosts:
    """Per-operation energy prices in joules.

    Parameters
    ----------
    tx_fixed / rx_fixed:
        Fixed cost per transmitted / received packet.
    tx_per_byte / rx_per_byte:
        Incremental cost per payload byte.
    idle_per_second:
        Baseline drain while powered on.
    """

    def __init__(
        self,
        tx_fixed: float = 0.002,
        tx_per_byte: float = 0.000002,
        rx_fixed: float = 0.001,
        rx_per_byte: float = 0.000001,
        idle_per_second: float = 0.0001,
    ) -> None:
        for name, value in (
            ("tx_fixed", tx_fixed),
            ("tx_per_byte", tx_per_byte),
            ("rx_fixed", rx_fixed),
            ("rx_per_byte", rx_per_byte),
            ("idle_per_second", idle_per_second),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
        self.tx_fixed = tx_fixed
        self.tx_per_byte = tx_per_byte
        self.rx_fixed = rx_fixed
        self.rx_per_byte = rx_per_byte
        self.idle_per_second = idle_per_second

    def transmit_cost(self, size_bytes: int) -> float:
        """Energy to transmit one packet of ``size_bytes``."""
        return self.tx_fixed + self.tx_per_byte * size_bytes

    def receive_cost(self, size_bytes: int) -> float:
        """Energy to receive one packet of ``size_bytes``."""
        return self.rx_fixed + self.rx_per_byte * size_bytes


class Battery:
    """Finite energy store of one mobile host.

    Parameters
    ----------
    capacity:
        ``E_MAX`` in joules; also the initial charge unless ``initial`` is
        given.
    costs:
        Per-operation prices; shared between hosts by default.
    """

    def __init__(
        self,
        capacity: float = 100.0,
        costs: EnergyCosts | None = None,
        initial: float | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity!r}")
        self.capacity = float(capacity)
        self.costs = costs if costs is not None else EnergyCosts()
        level = capacity if initial is None else float(initial)
        if not 0.0 <= level <= capacity:
            raise ConfigurationError(
                f"initial charge {level!r} outside [0, {capacity!r}]"
            )
        self._level = level
        self.total_consumed = 0.0
        self.tx_count = 0
        self.rx_count = 0

    @property
    def level(self) -> float:
        """Remaining energy (``PER_t``) in joules."""
        return self._level

    @property
    def fraction(self) -> float:
        """``CE = PER_t / E_MAX`` — the paper's coefficient of energy."""
        return self._level / self.capacity

    @property
    def depleted(self) -> bool:
        """``True`` once the battery is empty."""
        return self._level <= 0.0

    def consume(self, joules: float) -> None:
        """Drain ``joules`` (clamped at empty)."""
        if joules < 0:
            raise ConfigurationError(f"cannot consume negative energy: {joules!r}")
        drained = min(joules, self._level)
        self._level -= drained
        self.total_consumed += drained

    def on_transmit(self, size_bytes: int) -> None:
        """Charge a packet transmission to the battery."""
        self.tx_count += 1
        self.consume(self.costs.transmit_cost(size_bytes))

    def on_receive(self, size_bytes: int) -> None:
        """Charge a packet reception to the battery."""
        self.rx_count += 1
        self.consume(self.costs.receive_cost(size_bytes))

    def idle(self, seconds: float) -> None:
        """Charge ``seconds`` of idle drain to the battery."""
        if seconds < 0:
            raise ConfigurationError(f"idle time must be >= 0, got {seconds!r}")
        self.consume(self.costs.idle_per_second * seconds)

    def recharge(self, joules: float | None = None) -> None:
        """Recharge by ``joules`` (full recharge when omitted)."""
        if joules is None:
            self._level = self.capacity
        else:
            if joules < 0:
                raise ConfigurationError(f"recharge must be >= 0, got {joules!r}")
            self._level = min(self.capacity, self._level + joules)
