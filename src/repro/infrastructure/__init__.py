"""Infrastructure-based wireless baseline (the paper's Fig 1 world).

The related-work substrate: a one-hop MSS cell plus the classical
Timestamp, Amnesic Terminals and Signature invalidation schemes [Bar94],
making the
paper's argument about why single-cell schemes do not transfer to MANETs
executable.
"""

from repro.infrastructure.amnesic import AmnesicScheme, ATClient
from repro.infrastructure.mss import CellClient, MSSCell
from repro.infrastructure.signature import SignatureScheme, SIGClient
from repro.infrastructure.timestamp_ir import (
    InvalidationReport,
    TimestampScheme,
    TSClient,
)

__all__ = [
    "MSSCell",
    "CellClient",
    "TimestampScheme",
    "TSClient",
    "InvalidationReport",
    "AmnesicScheme",
    "ATClient",
    "SignatureScheme",
    "SIGClient",
]
