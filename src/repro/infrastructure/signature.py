"""The Signatures (SIG) strategy of Barbara & Imielinski [Bar94].

The third classical scheme from the paper's related work.  Instead of
listing updated items, the MSS periodically broadcasts *combined
signatures*: each signature hashes the versions of a pseudo-random subset
of the database.  A client keeps its own belief about every item's
version (tiny metadata, not content) and recomputes the same signatures
locally; a mismatched signature marks all its member items *suspect*, and
an item suspected by enough signatures is invalidated.

The pay-off over TS/AT: the scheme works after **arbitrary** sleep — no
report history is needed, so nothing forces a full cache drop — at the
price of false positives (fresh items invalidated because they share
signatures with stale ones).  Both properties are asserted in the tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.cache.item import CachedCopy, MasterCopy
from repro.errors import ConfigurationError
from repro.infrastructure.mss import CellClient, MSSCell
from repro.infrastructure.timestamp_ir import CellFetch, CellFetchReply
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

__all__ = ["SignatureReport", "SIGClient", "SignatureScheme"]


def _combine(versions: List[Tuple[int, int]]) -> int:
    """Hash a sorted (item, version) list into one 64-bit signature."""
    digest = hashlib.sha256(repr(sorted(versions)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True, slots=True)
class SignatureReport(Message):
    """``SIG report = (signature values for the fixed group family)``."""

    DEFAULT_SIZE: ClassVar[int] = 96
    signatures: Tuple[int, ...] = ()


class SIGClient:
    """Client side of the SIG scheme: version beliefs + signature checks."""

    def __init__(self, cell: MSSCell, client: CellClient, scheme: "SignatureScheme") -> None:
        self.cell = cell
        self.client = client
        self.scheme = scheme
        self.cache: Dict[int, CachedCopy] = {}
        # The client's belief of every item's version (metadata only).
        self.believed_versions: Dict[int, int] = {
            item_id: 0 for item_id in cell.item_ids
        }
        self._waiting: List[Tuple[int, Callable[[Optional[int]], None]]] = []
        self._fetch_callbacks: Dict[int, List[Callable[[Optional[int]], None]]] = {}
        self.invalidations = 0
        self.false_positives = 0
        client.inbox = self.handle

    def query(self, item_id: int, callback: Callable[[Optional[int]], None]) -> None:
        """Park the query until the next signature report."""
        self._waiting.append((item_id, callback))

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        if isinstance(message, SignatureReport):
            self._handle_report(message)
        elif isinstance(message, CellFetchReply):
            self._handle_fetch_reply(message)

    def _handle_report(self, report: SignatureReport) -> None:
        suspects: Dict[int, int] = {}
        for group, remote_signature in zip(self.scheme.groups, report.signatures):
            local = _combine(
                [(item, self.believed_versions.get(item, 0)) for item in group]
            )
            if local != remote_signature:
                for item in group:
                    suspects[item] = suspects.get(item, 0) + 1
        threshold = self.scheme.suspect_threshold
        for item_id, votes in suspects.items():
            if votes >= threshold and item_id in self.cache:
                truly_stale = (
                    self.cache[item_id].version
                    < self.cell.item(item_id).version
                )
                if not truly_stale:
                    self.false_positives += 1
                del self.cache[item_id]
                self.believed_versions[item_id] = 0  # unknown again
                self.invalidations += 1
        self._serve_waiting()

    def _serve_waiting(self) -> None:
        waiting, self._waiting = self._waiting, []
        for item_id, callback in waiting:
            copy = self.cache.get(item_id)
            if copy is not None:
                callback(copy.version)
            else:
                self._fetch(item_id, callback)

    def _fetch(self, item_id: int, callback: Callable[[Optional[int]], None]) -> None:
        self._fetch_callbacks.setdefault(item_id, []).append(callback)
        sent = self.cell.uplink(
            self.client.client_id,
            CellFetch(sender=self.client.client_id, item_id=item_id),
        )
        if not sent:
            for cb in self._fetch_callbacks.pop(item_id, []):
                cb(None)

    def _handle_fetch_reply(self, message: CellFetchReply) -> None:
        self.cache[message.item_id] = CachedCopy(
            message.item_id, message.version, message.content_size,
            self.scheme.sim.now,
        )
        self.believed_versions[message.item_id] = message.version
        for callback in self._fetch_callbacks.pop(message.item_id, []):
            callback(message.version)


class SignatureScheme:
    """MSS side of the SIG scheme plus client factory.

    Parameters
    ----------
    sim / cell:
        Substrate.
    report_interval:
        Seconds between signature broadcasts.
    group_count:
        Number of combined signatures per report.
    group_size:
        Items hashed into each signature (drawn pseudo-randomly but
        fixed for the run, shared by MSS and clients).
    suspect_threshold:
        Mismatching signatures needed before an item is invalidated.
    seed:
        Seed for the shared group family.
    """

    def __init__(
        self,
        sim: Simulator,
        cell: MSSCell,
        report_interval: float = 20.0,
        group_count: int = 8,
        group_size: int = 4,
        suspect_threshold: int = 1,
        seed: int = 0,
    ) -> None:
        if report_interval <= 0:
            raise ConfigurationError(
                f"report_interval must be positive, got {report_interval!r}"
            )
        if group_count < 1 or group_size < 1:
            raise ConfigurationError("group_count and group_size must be >= 1")
        if suspect_threshold < 1:
            raise ConfigurationError(
                f"suspect_threshold must be >= 1, got {suspect_threshold!r}"
            )
        self.sim = sim
        self.cell = cell
        self.report_interval = float(report_interval)
        self.suspect_threshold = int(suspect_threshold)
        rng = random.Random(seed)
        items = sorted(cell.item_ids)
        size = min(group_size, len(items))
        self.groups: List[Tuple[int, ...]] = [
            tuple(sorted(rng.sample(items, size))) for _ in range(group_count)
        ]
        self._timer = PeriodicTimer(sim, self.report_interval, self._broadcast_report)
        self.clients: Dict[int, SIGClient] = {}
        cell.set_mss_handler(self._handle_uplink)
        self.reports_sent = 0

    def make_client(self, client: CellClient) -> SIGClient:
        """Attach the SIG client logic to a cell client."""
        sig_client = SIGClient(self.cell, client, self)
        self.clients[client.client_id] = sig_client
        return sig_client

    def start(self) -> None:
        """Begin periodic signature broadcasting."""
        self._timer.start()

    def stop(self) -> None:
        """Stop signature broadcasting."""
        self._timer.stop()

    def _broadcast_report(self) -> None:
        signatures = tuple(
            _combine([(item, self.cell.item(item).version) for item in group])
            for group in self.groups
        )
        self.reports_sent += 1
        self.cell.broadcast(SignatureReport(sender=-1, signatures=signatures))

    def _handle_uplink(self, client_id: int, message: Message) -> None:
        if isinstance(message, CellFetch):
            master = self.cell.item(message.item_id)
            self.cell.unicast_down(
                client_id,
                CellFetchReply(
                    sender=-1,
                    item_id=master.item_id,
                    version=master.version,
                    content_size=master.content_size,
                ),
            )
