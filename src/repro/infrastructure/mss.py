"""Infrastructure-based (single-cell) wireless model — the paper's Fig 1.

Section 2 contrasts the MP2P setting with the classical model: a Mobile
Support Station (MSS) holds all source data and reaches every client in
*one hop* over a broadcast channel.  This module provides that substrate
so the classical invalidation schemes of the related work (Barbara &
Imielinski's Timestamp strategy, implemented in
:mod:`repro.infrastructure.timestamp_ir`) can run and be contrasted with
the MANET strategies — making the paper's "why those schemes do not
transfer" argument executable.

The cell abstracts the radio entirely: a broadcast reaches every
*connected* client after one hop delay and costs one transmission; an
uplink query costs one transmission each way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.item import MasterCopy
from repro.errors import ConfigurationError, TopologyError
from repro.net.message import Message
from repro.sim.engine import Simulator

__all__ = ["CellClient", "MSSCell"]


class CellClient:
    """One mobile client camped on the cell."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id
        self.connected = True
        self.inbox: Callable[[Message], None] = lambda message: None
        self.disconnected_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.connected else "down"
        return f"CellClient({self.client_id}, {state})"


class MSSCell:
    """A one-hop broadcast cell around a Mobile Support Station.

    Parameters
    ----------
    sim:
        Event kernel.
    hop_delay:
        One-hop broadcast/uplink delay in seconds.
    """

    def __init__(self, sim: Simulator, hop_delay: float = 0.01) -> None:
        if hop_delay < 0:
            raise ConfigurationError(f"hop_delay must be >= 0, got {hop_delay!r}")
        self.sim = sim
        self.hop_delay = float(hop_delay)
        self._clients: Dict[int, CellClient] = {}
        self._database: Dict[int, MasterCopy] = {}
        self._mss_inbox: Callable[[int, Message], None] = lambda c, m: None
        self.downlink_transmissions = 0
        self.uplink_transmissions = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_client(self, client: CellClient) -> None:
        """Attach a client to the cell."""
        if client.client_id in self._clients:
            raise TopologyError(f"client {client.client_id} already registered")
        self._clients[client.client_id] = client

    def client(self, client_id: int) -> CellClient:
        """Look up a registered client."""
        try:
            return self._clients[client_id]
        except KeyError:
            raise TopologyError(f"unknown client {client_id!r}") from None

    @property
    def clients(self) -> List[CellClient]:
        """All registered clients."""
        return list(self._clients.values())

    def install_item(self, master: MasterCopy) -> None:
        """Place a master copy in the MSS database."""
        self._database[master.item_id] = master

    def item(self, item_id: int) -> MasterCopy:
        """The MSS's authoritative copy of ``item_id``."""
        try:
            return self._database[item_id]
        except KeyError:
            raise TopologyError(f"MSS has no item {item_id!r}") from None

    @property
    def item_ids(self) -> List[int]:
        """All items hosted at the MSS."""
        return list(self._database)

    def set_mss_handler(self, handler: Callable[[int, Message], None]) -> None:
        """Install the MSS-side uplink message handler."""
        self._mss_inbox = handler

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def set_connected(self, client_id: int, connected: bool) -> None:
        """Flip a client's radio (sleep/wake in the paper's terms)."""
        client = self.client(client_id)
        if client.connected == connected:
            return
        client.connected = connected
        client.disconnected_at = None if connected else self.sim.now

    # ------------------------------------------------------------------
    # Channel primitives
    # ------------------------------------------------------------------
    def broadcast(self, message: Message) -> int:
        """MSS downlink broadcast: one transmission, all connected hear it."""
        self.downlink_transmissions += 1
        delivered = 0
        for client in self._clients.values():
            if not client.connected:
                continue
            delivered += 1
            self.sim.schedule(self.hop_delay, client.inbox, message)
        return delivered

    def unicast_down(self, client_id: int, message: Message) -> bool:
        """MSS -> one client; fails silently when the client sleeps."""
        client = self.client(client_id)
        self.downlink_transmissions += 1
        if not client.connected:
            return False
        self.sim.schedule(self.hop_delay, client.inbox, message)
        return True

    def uplink(self, client_id: int, message: Message) -> bool:
        """Client -> MSS; only connected clients can transmit."""
        client = self.client(client_id)
        if not client.connected:
            return False
        self.uplink_transmissions += 1
        self.sim.schedule(
            self.hop_delay, self._mss_inbox, client_id, message
        )
        return True

    @property
    def total_transmissions(self) -> int:
        """Downlink plus uplink transmissions."""
        return self.downlink_transmissions + self.uplink_transmissions
