"""The Amnesic Terminals (AT) strategy of Barbara & Imielinski [Bar94].

The second classical scheme from the paper's related work.  Unlike the
Timestamp strategy, an AT report lists only the items updated since the
*previous* report and carries no timestamps — smaller reports, but a
client that missed even a single report can no longer trust anything:
**any** gap in reception drops the whole cache, not just gaps longer
than ``k * L``.  That is the "amnesia" the name refers to, and it makes
the scheme even more disconnection-fragile than TS — executable here as
the property tests show.

Implementation shares the MSS-cell substrate and the client fetch path
with :mod:`repro.infrastructure.timestamp_ir`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.cache.item import CachedCopy, MasterCopy
from repro.errors import ConfigurationError
from repro.infrastructure.mss import CellClient, MSSCell
from repro.infrastructure.timestamp_ir import CellFetch, CellFetchReply
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

__all__ = ["AmnesicReport", "ATClient", "AmnesicScheme"]


@dataclasses.dataclass(frozen=True, slots=True)
class AmnesicReport(Message):
    """``AT report = [sequence, {items updated since the last report}]``."""

    DEFAULT_SIZE: ClassVar[int] = 48
    sequence: int = 0
    updated_items: Tuple[int, ...] = ()


class ATClient:
    """Client side of the AT scheme: cache + gap detection."""

    def __init__(self, cell: MSSCell, client: CellClient, scheme: "AmnesicScheme") -> None:
        self.cell = cell
        self.client = client
        self.scheme = scheme
        self.cache: Dict[int, CachedCopy] = {}
        self.last_sequence: Optional[int] = None
        self._waiting: List[Tuple[int, Callable[[Optional[int]], None]]] = []
        self._fetch_callbacks: Dict[int, List[Callable[[Optional[int]], None]]] = {}
        self.cache_drops = 0
        client.inbox = self.handle

    def query(self, item_id: int, callback: Callable[[Optional[int]], None]) -> None:
        """Park the query until the next report proves cache validity."""
        self._waiting.append((item_id, callback))

    def handle(self, message: Message) -> None:
        if isinstance(message, AmnesicReport):
            self._handle_report(message)
        elif isinstance(message, CellFetchReply):
            self._handle_fetch_reply(message)

    def _handle_report(self, report: AmnesicReport) -> None:
        missed_any = (
            self.last_sequence is not None
            and report.sequence != self.last_sequence + 1
        )
        first_contact = self.last_sequence is None
        self.last_sequence = report.sequence
        if (missed_any or first_contact) and self.cache:
            # Amnesia: without an unbroken report stream nothing is safe.
            self.cache.clear()
            self.cache_drops += 1
        else:
            for item_id in report.updated_items:
                self.cache.pop(item_id, None)
        self._serve_waiting()

    def _serve_waiting(self) -> None:
        waiting, self._waiting = self._waiting, []
        for item_id, callback in waiting:
            copy = self.cache.get(item_id)
            if copy is not None:
                callback(copy.version)
            else:
                self._fetch(item_id, callback)

    def _fetch(self, item_id: int, callback: Callable[[Optional[int]], None]) -> None:
        self._fetch_callbacks.setdefault(item_id, []).append(callback)
        sent = self.cell.uplink(
            self.client.client_id,
            CellFetch(sender=self.client.client_id, item_id=item_id),
        )
        if not sent:
            for cb in self._fetch_callbacks.pop(item_id, []):
                cb(None)

    def _handle_fetch_reply(self, message: CellFetchReply) -> None:
        self.cache[message.item_id] = CachedCopy(
            message.item_id, message.version, message.content_size,
            self.scheme.sim.now,
        )
        for callback in self._fetch_callbacks.pop(message.item_id, []):
            callback(message.version)


class AmnesicScheme:
    """MSS side of the AT scheme plus client factory.

    Parameters
    ----------
    sim / cell:
        Substrate.
    report_interval:
        ``L`` — seconds between reports.
    """

    def __init__(
        self,
        sim: Simulator,
        cell: MSSCell,
        report_interval: float = 20.0,
    ) -> None:
        if report_interval <= 0:
            raise ConfigurationError(
                f"report_interval must be positive, got {report_interval!r}"
            )
        self.sim = sim
        self.cell = cell
        self.report_interval = float(report_interval)
        self._sequence = 0
        self._pending_updates: List[int] = []
        self._timer = PeriodicTimer(sim, self.report_interval, self._broadcast_report)
        self.clients: Dict[int, ATClient] = {}
        cell.set_mss_handler(self._handle_uplink)
        self.reports_sent = 0

    def make_client(self, client: CellClient) -> ATClient:
        """Attach the AT client logic to a cell client."""
        at_client = ATClient(self.cell, client, self)
        self.clients[client.client_id] = at_client
        return at_client

    def start(self) -> None:
        """Begin periodic report broadcasting."""
        self._timer.start()

    def stop(self) -> None:
        """Stop report broadcasting."""
        self._timer.stop()

    def record_update(self, master: MasterCopy) -> None:
        """Note that ``master`` just changed (call after ``update``)."""
        self._pending_updates.append(master.item_id)

    def _broadcast_report(self) -> None:
        self._sequence += 1
        updates = tuple(sorted(set(self._pending_updates)))
        self._pending_updates.clear()
        report = AmnesicReport(
            sender=-1, sequence=self._sequence, updated_items=updates
        )
        self.reports_sent += 1
        self.cell.broadcast(report)

    def _handle_uplink(self, client_id: int, message: Message) -> None:
        if isinstance(message, CellFetch):
            master = self.cell.item(message.item_id)
            self.cell.unicast_down(
                client_id,
                CellFetchReply(
                    sender=-1,
                    item_id=master.item_id,
                    version=master.version,
                    content_size=master.content_size,
                ),
            )
