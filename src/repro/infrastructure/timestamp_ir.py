"""The Timestamp (TS) invalidation strategy of Barbara & Imielinski [Bar94].

The classical scheme the paper's related work starts from: every ``L``
seconds the MSS broadcasts an invalidation report listing the items
updated within the last ``k * L`` seconds, with their update timestamps.
A client that was awake within the report's horizon invalidates exactly
the listed items; a client that slept **longer than k*L must drop its
entire cache** — the "long disconnection problem" that motivated the
whole follow-up literature, reproduced here as an executable property.

Query model (as in [Bar94]): a client holding a query waits for the next
report; if the copy survives invalidation it answers locally, otherwise
it fetches from the MSS over the uplink.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.cache.item import CachedCopy, MasterCopy
from repro.errors import ConfigurationError
from repro.infrastructure.mss import CellClient, MSSCell
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

__all__ = ["InvalidationReport", "TSClient", "TimestampScheme"]


@dataclasses.dataclass(frozen=True, slots=True)
class InvalidationReport(Message):
    """``IR = [T, {(item, timestamp) updated in (T - k*L, T]}]``."""

    DEFAULT_SIZE: ClassVar[int] = 64
    timestamp: float = 0.0
    window: float = 0.0
    updates: Tuple[Tuple[int, float], ...] = ()


@dataclasses.dataclass(frozen=True, slots=True)
class CellFetch(Message):
    """Client uplink fetch of one item."""

    DEFAULT_SIZE: ClassVar[int] = 48
    item_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class CellFetchReply(Message):
    """MSS downlink reply carrying fresh content."""

    DEFAULT_SIZE: ClassVar[int] = 48
    item_id: int = 0
    version: int = 0
    content_size: int = 1024

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", 48 + self.content_size)


class TSClient:
    """Client side of the TS scheme: cache + report processing."""

    def __init__(self, cell: MSSCell, client: CellClient, scheme: "TimestampScheme") -> None:
        self.cell = cell
        self.client = client
        self.scheme = scheme
        self.cache: Dict[int, CachedCopy] = {}
        self.last_report_time: Optional[float] = None
        self._waiting: List[Tuple[int, Callable[[Optional[int]], None]]] = []
        self._fetch_callbacks: Dict[int, List[Callable[[Optional[int]], None]]] = {}
        self.cache_drops = 0
        client.inbox = self.handle

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, item_id: int, callback: Callable[[Optional[int]], None]) -> None:
        """Ask for ``item_id``; ``callback(version)`` fires when served.

        Per [Bar94] the client must wait for the next IR before trusting
        its cache, so the query parks until then.
        """
        self._waiting.append((item_id, callback))

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        if isinstance(message, InvalidationReport):
            self._handle_report(message)
        elif isinstance(message, CellFetchReply):
            self._handle_fetch_reply(message)

    def _handle_report(self, report: InvalidationReport) -> None:
        now = self.scheme.sim.now
        gap_start = self.last_report_time
        self.last_report_time = now
        slept_too_long = (
            gap_start is None
            or report.timestamp - gap_start > report.window
        )
        if slept_too_long and self.cache:
            # The report cannot vouch for anything this old: drop it all.
            self.cache.clear()
            self.cache_drops += 1
        else:
            for item_id, updated_at in report.updates:
                copy = self.cache.get(item_id)
                if copy is not None and copy.fetched_at < updated_at:
                    del self.cache[item_id]
        self._serve_waiting()

    def _serve_waiting(self) -> None:
        waiting, self._waiting = self._waiting, []
        for item_id, callback in waiting:
            copy = self.cache.get(item_id)
            if copy is not None:
                callback(copy.version)
            else:
                self._fetch(item_id, callback)

    def _fetch(self, item_id: int, callback: Callable[[Optional[int]], None]) -> None:
        self._fetch_callbacks.setdefault(item_id, []).append(callback)
        sent = self.cell.uplink(
            self.client.client_id, CellFetch(sender=self.client.client_id, item_id=item_id)
        )
        if not sent:
            for cb in self._fetch_callbacks.pop(item_id, []):
                cb(None)

    def _handle_fetch_reply(self, message: CellFetchReply) -> None:
        copy = CachedCopy(
            message.item_id, message.version, message.content_size,
            self.scheme.sim.now,
        )
        self.cache[message.item_id] = copy
        for callback in self._fetch_callbacks.pop(message.item_id, []):
            callback(message.version)


class TimestampScheme:
    """The MSS side plus factory for TS clients.

    Parameters
    ----------
    sim / cell:
        Substrate.
    report_interval:
        ``L`` — seconds between invalidation reports.
    history_windows:
        ``k`` — the report covers the last ``k * L`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        cell: MSSCell,
        report_interval: float = 20.0,
        history_windows: int = 3,
    ) -> None:
        if report_interval <= 0:
            raise ConfigurationError(
                f"report_interval must be positive, got {report_interval!r}"
            )
        if history_windows < 1:
            raise ConfigurationError(
                f"history_windows must be >= 1, got {history_windows!r}"
            )
        self.sim = sim
        self.cell = cell
        self.report_interval = float(report_interval)
        self.history_windows = int(history_windows)
        self._update_log: List[Tuple[float, int]] = []  # (time, item)
        self._timer = PeriodicTimer(sim, self.report_interval, self._broadcast_report)
        self.clients: Dict[int, TSClient] = {}
        cell.set_mss_handler(self._handle_uplink)
        self.reports_sent = 0

    @property
    def window(self) -> float:
        """The report horizon ``k * L`` in seconds."""
        return self.history_windows * self.report_interval

    def make_client(self, client: CellClient) -> TSClient:
        """Attach the TS client logic to a cell client."""
        ts_client = TSClient(self.cell, client, self)
        self.clients[client.client_id] = ts_client
        return ts_client

    def start(self) -> None:
        """Begin periodic report broadcasting."""
        self._timer.start()

    def stop(self) -> None:
        """Stop report broadcasting."""
        self._timer.stop()

    # ------------------------------------------------------------------
    # MSS side
    # ------------------------------------------------------------------
    def record_update(self, master: MasterCopy) -> None:
        """Note that ``master`` just changed (call after ``update``)."""
        self._update_log.append((self.sim.now, master.item_id))

    def _broadcast_report(self) -> None:
        now = self.sim.now
        horizon = now - self.window
        self._update_log = [
            entry for entry in self._update_log if entry[0] > horizon
        ]
        latest: Dict[int, float] = {}
        for when, item_id in self._update_log:
            latest[item_id] = max(latest.get(item_id, 0.0), when)
        report = InvalidationReport(
            sender=-1,
            timestamp=now,
            window=self.window,
            updates=tuple(sorted(latest.items())),
        )
        self.reports_sent += 1
        self.cell.broadcast(report)

    def _handle_uplink(self, client_id: int, message: Message) -> None:
        if isinstance(message, CellFetch):
            master = self.cell.item(message.item_id)
            reply = CellFetchReply(
                sender=-1,
                item_id=master.item_id,
                version=master.version,
                content_size=master.content_size,
            )
            self.cell.unicast_down(client_id, reply)
