"""Simulation configuration — Table 1 of the paper plus documented extras.

Every Table 1 row maps to a field with the paper's default value.  Fields
the paper leaves unspecified (node speed, disconnection durations, the
stable-node fraction that makes the CS coefficient discriminating, payload
size) are grouped separately and documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.peers.coefficients import SelectionThresholds

__all__ = ["SimulationConfig", "TABLE1_ROWS"]


@dataclass
class SimulationConfig:
    """Full parameter set of one simulation run.

    Table 1 parameters
    ------------------
    n_peers:
        Number of peers (``N_Peers`` = 50).
    terrain_width / terrain_height:
        Physical terrain (``T_Area`` = 1.5 km x 1.5 km).
    cache_num:
        Cache slots per host (``C_Num`` = 10).
    radio_range:
        Communication range (``C_Range`` = 250 m).
    sim_time:
        Simulated duration (``T_Sim`` = 5 hours).
    update_interval:
        Mean master-copy update gap (``I_Update`` = 2 min).
    query_interval:
        Mean query gap per host (``I_Query`` = 20 s).
    ttl_broadcast:
        Flood TTL of simple push/pull messages (``TTL_BR`` = 8 hops).
    ttl_rpcc:
        Flood TTL of RPCC invalidations (3 hops; swept in Fig 9).
    ttn / ttr / ttp:
        The RPCC timers (``TTN_OP`` = 2 min, ``TTR_RP`` = 1.5 min,
        ``TTP_CP`` = 4 min).
    switch_interval:
        The switching/coefficient period ``phi`` (``I_Switch`` = 5 min).
    thresholds:
        The selection thresholds (``mu_CAR``/``mu_CS``/``mu_CE``).
    omega:
        Recent-vs-history weighting of the coefficient EWMAs.
    """

    # --- Table 1 ------------------------------------------------------
    n_peers: int = 50
    terrain_width: float = 1500.0
    terrain_height: float = 1500.0
    cache_num: int = 10
    # Table 1 says 250 m nominal; a 250 m unit disc over this terrain is a
    # fragmented network in which no published curve is reproducible (see
    # DESIGN.md).  GloMoSim's default 802.11 effective range was ~376 m;
    # 350 m yields the connected regime the paper's results imply.
    radio_range: float = 350.0
    sim_time: float = 5 * 3600.0
    update_interval: float = 120.0
    query_interval: float = 20.0
    ttl_broadcast: int = 8
    ttl_rpcc: int = 3
    ttn: float = 120.0
    ttr: float = 90.0
    ttp: float = 240.0
    switch_interval: float = 300.0
    thresholds: SelectionThresholds = field(default_factory=SelectionThresholds)
    omega: float = 0.2

    # --- Not specified by the paper (see DESIGN.md) ---------------------
    seed: int = 1
    content_size: int = 1024
    speed_min: float = 1.0
    speed_max: float = 5.0
    pause_time: float = 60.0
    stable_fraction: float = 0.4
    mean_online: float = 600.0
    mean_offline: float = 60.0
    subnet_cell: float = 500.0
    fetch_timeout: float = 5.0
    poll_timeout: float = 4.0
    cache_on_read: bool = False
    # Per-hop packet loss probability of the wireless links; 0 keeps the
    # lossless default (and the bit-identical lossless event stream).
    loss_rate: float = 0.0
    # Optional Zipf skew for the item-access pattern; None = uniform.
    zipf_theta: float = 0.0
    # Item-access pattern: "uniform", "zipf" (needs zipf_theta > 0), or
    # "flash-crowd" (Zipf whose ranking reshuffles at flash_crowd_at).
    # The legacy shorthand zipf_theta > 0 with access_pattern="uniform"
    # still selects Zipf, keeping pre-catalog configs bit-identical.
    access_pattern: str = "uniform"
    # Sim-clock instant of the flash-crowd popularity shift.
    flash_crowd_at: float = 0.0
    # Number of hot items in the "hot_set" placement scenario.
    hot_set_size: int = 4
    # Replacement policy name (see repro.cache.replacement POLICIES).
    replacement_policy: str = "lru"
    # Mobility model for the non-stable peers: "waypoint", "walk", or
    # "trace" (a recorded waypoint trace replayed as piecewise-linear).
    mobility: str = "waypoint"
    # Unicast routing policy: "bfs" (per-send shortest path) or "cached"
    # (DSR-style route cache, see repro.net.routing).
    routing: str = "bfs"
    # Measurement starts after this many seconds: covers the coefficient
    # bootstrap (no relay exists before the first period closes) plus one
    # promotion round, so steady-state behaviour is what gets measured.
    warmup: float = 600.0

    # --- Fault injection & retry hardening (docs/ROBUSTNESS.md) ---------
    # Deterministic fault timeline; None (default) keeps the fault layer
    # entirely out of the run — bit-identical with pre-fault builds.
    faults: Optional[FaultPlan] = None
    # Exponential backoff on remote-query retries.  None = auto: enabled
    # exactly when a fault plan is active, so fault-free runs keep the
    # historical fixed retry wait (and their golden digests).
    retry_backoff: Optional[bool] = None
    backoff_factor: float = 2.0
    backoff_cap: float = 60.0
    backoff_jitter: float = 0.1
    # Online control policy name (see repro.control CONTROLLERS); None
    # (default) constructs no controller at all — bit-identical with
    # pre-controller builds.
    controller: Optional[str] = None
    # Seconds between controller sampling/decision ticks.
    controller_interval: float = 30.0

    def __post_init__(self) -> None:
        positives: Tuple[Tuple[str, float], ...] = (
            ("n_peers", self.n_peers),
            ("terrain_width", self.terrain_width),
            ("terrain_height", self.terrain_height),
            ("cache_num", self.cache_num),
            ("radio_range", self.radio_range),
            ("sim_time", self.sim_time),
            ("update_interval", self.update_interval),
            ("query_interval", self.query_interval),
            ("ttn", self.ttn),
            ("ttr", self.ttr),
            ("ttp", self.ttp),
            ("switch_interval", self.switch_interval),
            ("content_size", self.content_size),
            ("subnet_cell", self.subnet_cell),
        )
        for name, value in positives:
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value!r}")
        if self.ttl_broadcast < 1 or self.ttl_rpcc < 1:
            raise ConfigurationError("flood TTLs must be >= 1")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ConfigurationError(
                f"stable_fraction must be in [0, 1], got {self.stable_fraction!r}"
            )
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {self.warmup!r}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate!r}"
            )
        if self.mobility not in ("waypoint", "walk", "trace"):
            raise ConfigurationError(
                f"mobility must be 'waypoint', 'walk' or 'trace', "
                f"got {self.mobility!r}"
            )
        if self.access_pattern not in ("uniform", "zipf", "flash-crowd"):
            raise ConfigurationError(
                f"access_pattern must be 'uniform', 'zipf' or 'flash-crowd', "
                f"got {self.access_pattern!r}"
            )
        if self.access_pattern == "zipf" and self.zipf_theta <= 0:
            raise ConfigurationError(
                "access_pattern 'zipf' needs zipf_theta > 0"
            )
        if self.access_pattern == "flash-crowd":
            if self.zipf_theta <= 0:
                raise ConfigurationError(
                    "access_pattern 'flash-crowd' needs zipf_theta > 0"
                )
            if self.flash_crowd_at <= 0:
                raise ConfigurationError(
                    "access_pattern 'flash-crowd' needs flash_crowd_at > 0"
                )
        if self.flash_crowd_at < 0:
            raise ConfigurationError(
                f"flash_crowd_at must be >= 0, got {self.flash_crowd_at!r}"
            )
        if self.hot_set_size < 1:
            raise ConfigurationError(
                f"hot_set_size must be >= 1, got {self.hot_set_size!r}"
            )
        # Validate the policy name eagerly so a typo fails at config time,
        # not mid-campaign.  Lazy import: the cache layer pulls in the
        # scenarios registry, which must not re-enter this module.
        from repro.cache.replacement import POLICIES

        if self.replacement_policy not in POLICIES:
            raise ConfigurationError(
                f"unknown replacement_policy {self.replacement_policy!r}; "
                f"choose from {POLICIES.names()}"
            )
        if self.routing not in ("bfs", "cached"):
            raise ConfigurationError(
                f"routing must be 'bfs' or 'cached', got {self.routing!r}"
            )
        if self.speed_min <= 0 or self.speed_max < self.speed_min:
            raise ConfigurationError(
                f"need 0 < speed_min <= speed_max, got "
                f"[{self.speed_min!r}, {self.speed_max!r}]"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigurationError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.backoff_cap <= 0:
            raise ConfigurationError(
                f"backoff_cap must be positive, got {self.backoff_cap!r}"
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1), got {self.backoff_jitter!r}"
            )
        if self.controller is not None:
            # Same eager validation (and the same lazy-import reason) as
            # replacement_policy above.
            from repro.scenarios.registry import CONTROLLERS

            if self.controller not in CONTROLLERS:
                raise ConfigurationError(
                    f"unknown controller {self.controller!r}; "
                    f"choose from {CONTROLLERS.names()}"
                )
        if self.controller_interval <= 0:
            raise ConfigurationError(
                f"controller_interval must be positive, "
                f"got {self.controller_interval!r}"
            )

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def table1_rows(self) -> List[Tuple[str, str, str]]:
        """(parameter, description, value) rows mirroring Table 1."""
        return [
            ("N_Peers", "Number of peers in the network", str(self.n_peers)),
            (
                "T_Area",
                "Physical terrain dimension of the network",
                f"{self.terrain_width / 1000:.1f}km*{self.terrain_height / 1000:.1f}km",
            ),
            ("C_Num", "Cache number of each mobile host", str(self.cache_num)),
            (
                "C_Range",
                "Communication range of mobile hosts (paper: 250m nominal)",
                f"{self.radio_range:.0f}m",
            ),
            ("T_Sim", "Simulation time", f"{self.sim_time / 3600:.1f} hours"),
            (
                "I_Update",
                "Average interval of data item update",
                f"{self.update_interval / 60:.1f} minutes",
            ),
            (
                "I_Query",
                "Average interval of query requests",
                f"{self.query_interval:.0f} seconds",
            ),
            (
                "TTL_BR",
                "TTL of broadcast message in simple push/pull",
                f"{self.ttl_broadcast} hops",
            ),
            (
                "TTL_RPCC",
                "TTL of invalidation message in RPCC",
                f"{self.ttl_rpcc} hops",
            ),
            ("TTN_OP", "TTN of data item at owner peer", f"{self.ttn / 60:.1f} minutes"),
            ("TTR_RP", "TTR of data item at relay peer", f"{self.ttr / 60:.1f} minutes"),
            ("TTP_CP", "TTP of data item at cache peer", f"{self.ttp / 60:.1f} minutes"),
            (
                "I_Switch",
                "Switching interval of each peer",
                f"{self.switch_interval / 60:.1f} minutes",
            ),
            ("mu_CAR", "Threshold of CAR (eq 4.2.3)", str(self.thresholds.mu_car)),
            ("mu_CS", "Threshold of CS (eq 4.2.6)", str(self.thresholds.mu_cs)),
            ("mu_CE", "Threshold of CE (eq 4.2.7)", str(self.thresholds.mu_ce)),
            ("omega", "Weighting of recent/history values", str(self.omega)),
        ]


#: Parameter names of Table 1, for table-shape assertions in tests.
TABLE1_ROWS = [
    "N_Peers",
    "T_Area",
    "C_Num",
    "C_Range",
    "T_Sim",
    "I_Update",
    "I_Query",
    "TTL_BR",
    "TTL_RPCC",
    "TTN_OP",
    "TTR_RP",
    "TTP_CP",
    "I_Switch",
    "mu_CAR",
    "mu_CS",
    "mu_CE",
    "omega",
]
