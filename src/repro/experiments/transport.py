"""Work transports: how pending campaign points reach their workers.

:class:`repro.experiments.executor.CampaignExecutor` used to own both
the "what still needs running" bookkeeping and the "how do runs reach a
process" mechanics.  The work-queue refactor splits the second half out
behind one small interface so the executor no longer cares whether work
runs inline, on a process pool, or (later) on other machines behind a
file- or socket-backed queue:

* :class:`WorkQueue` / :class:`InProcessQueue` — the claim/complete
  protocol.  A worker claims one task at a time; completions stream back
  as they happen.  The in-process queue is a plain deque today, but the
  interface is exactly what a file- or socket-backed implementation for
  multi-machine fan-out must speak.

* :class:`SerialTransport` — one inline worker draining an
  :class:`InProcessQueue` (the ``jobs == 1`` default, byte-for-byte the
  historical serial loop).

* :class:`PoolTransport` — a :class:`ProcessPoolExecutor` fan-out with
  *streaming* completions (``as_completed``), so the executor can commit
  finished points to the result store while others still run — which is
  what makes an interrupted parallel campaign resumable from the last
  committed batch instead of from zero.

* :class:`ShardedTransport` — static sharding by stable content-address
  hash (:func:`repro.experiments.store.shard_of`): shard *i* of *N*
  always holds the same points, no matter the process or host.  One
  worker process claims each non-empty shard, which is the single-host
  version of the "many workers, one shared store" campaign model.

Every transport yields ``(key, task, status, payload)`` tuples where
``status`` is ``"ok"`` (payload = the result) or ``"error"`` (payload =
the worker's formatted traceback); the executor turns errors into
:class:`repro.experiments.executor.CampaignRunError`.
"""

from __future__ import annotations

import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.store import shard_of

__all__ = [
    "Completion",
    "InProcessQueue",
    "PoolTransport",
    "SerialTransport",
    "ShardedTransport",
    "Transport",
    "WorkQueue",
]

#: One pending unit: ``(key, (config, spec, scenario))``.
PendingTask = Tuple[str, tuple]

#: One finished unit: ``(key, task, status, payload)``.
Completion = Tuple[str, tuple, str, object]


def execute_one(task) -> Tuple[str, object]:
    """Run one simulation; never let a worker exception escape raw.

    Returns ``("ok", result)`` or ``("error", formatted_traceback)``:
    re-raising the original exception across a process boundary would
    require it to pickle, which arbitrary exceptions need not.
    """
    from repro.experiments.runner import run_simulation

    config, spec, scenario = task
    try:
        return "ok", run_simulation(config, spec, scenario)
    except Exception:
        return "error", traceback.format_exc()


class WorkQueue:
    """The claim/complete protocol every queue implementation speaks."""

    def put(self, key: str, task) -> None:
        raise NotImplementedError

    def claim(self) -> Optional[PendingTask]:
        """Take one pending task, or ``None`` when the queue is drained."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class InProcessQueue(WorkQueue):
    """FIFO work queue living in this process (deque-backed)."""

    def __init__(self, pending: Sequence[PendingTask] = ()) -> None:
        self._pending: Deque[PendingTask] = deque(pending)

    def put(self, key: str, task) -> None:
        self._pending.append((key, task))

    def claim(self) -> Optional[PendingTask]:
        try:
            return self._pending.popleft()
        except IndexError:
            return None

    def __len__(self) -> int:
        return len(self._pending)


class Transport:
    """Executes pending tasks, streaming completions as they finish."""

    def execute(self, pending: Sequence[PendingTask]) -> Iterator[Completion]:
        raise NotImplementedError


class SerialTransport(Transport):
    """Inline execution: one worker claiming from an in-process queue."""

    def execute(self, pending: Sequence[PendingTask]) -> Iterator[Completion]:
        queue = InProcessQueue(pending)
        while True:
            claimed = queue.claim()
            if claimed is None:
                return
            key, task = claimed
            status, payload = execute_one(task)
            yield key, task, status, payload


class PoolTransport(Transport):
    """Process-pool fan-out with streaming (``as_completed``) results."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers

    def execute(self, pending: Sequence[PendingTask]) -> Iterator[Completion]:
        if not pending:
            return
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_one, task): (key, task)
                for key, task in pending
            }
            try:
                for future in as_completed(futures):
                    key, task = futures[future]
                    status, payload = future.result()
                    yield key, task, status, payload
            except BrokenProcessPool as exc:
                # A worker died without reporting (OOM kill, segfault):
                # surface it against one of the in-flight tasks.
                key, task = next(iter(futures.values()))
                yield key, task, "error", f"worker process died abruptly: {exc}"
            finally:
                for future in futures:
                    future.cancel()


def _execute_shard(tasks: List[tuple]) -> List[Tuple[str, object]]:
    """Worker body of one shard: run its tasks in order, stop on error.

    Results before the failure are still returned, so the parent can
    commit them to the store before raising — the shard resumes from the
    failing point, not from its beginning.
    """
    outcomes: List[Tuple[str, object]] = []
    for task in tasks:
        status, payload = execute_one(task)
        outcomes.append((status, payload))
        if status == "error":
            break
    return outcomes


class ShardedTransport(Transport):
    """Static sharding: shard ``shard_of(key, N)`` runs on worker ``i``.

    The assignment depends only on the content-address key, so a
    restarted campaign re-partitions identically and every worker can
    decide *locally* which points are its own — the property a
    distributed (file/socket-queue) deployment needs.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers

    def shards(
        self, pending: Sequence[PendingTask]
    ) -> List[List[PendingTask]]:
        """Partition pending work into the per-worker shards."""
        shards: List[List[PendingTask]] = [[] for _ in range(self.workers)]
        for key, task in pending:
            shards[shard_of(key, self.workers)].append((key, task))
        return shards

    def execute(self, pending: Sequence[PendingTask]) -> Iterator[Completion]:
        occupied = [shard for shard in self.shards(pending) if shard]
        if not occupied:
            return
        if len(occupied) == 1 or self.workers == 1:
            yield from SerialTransport().execute(
                [item for shard in occupied for item in shard]
            )
            return
        with ProcessPoolExecutor(max_workers=len(occupied)) as pool:
            futures = {
                pool.submit(_execute_shard, [task for _, task in shard]): shard
                for shard in occupied
            }
            try:
                for future in as_completed(futures):
                    shard = futures[future]
                    for (key, task), (status, payload) in zip(
                        shard, future.result()
                    ):
                        yield key, task, status, payload
            except BrokenProcessPool as exc:
                key, task = next(iter(futures.values()))[0]
                yield key, task, "error", f"worker process died abruptly: {exc}"
            finally:
                for future in futures:
                    future.cancel()
