"""Post-run analysis helpers for the paper's discussion points.

Fig 7(c)'s discussion reasons about RPCC's *push share* (source→relay
overlay maintenance) versus *pull share* (cache-peer polling): "the pull
traffic can reduce while the push traffic increases at the same time".
These helpers slice a run's per-type transmission counters along exactly
that line so the claim is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.consistency.messages import RPCC_PULL_TYPES, RPCC_PUSH_TYPES
from repro.metrics.collector import MetricsSummary

__all__ = ["TrafficSplit", "rpcc_traffic_split"]

#: Remote-query plumbing shared by every strategy (not protocol traffic).
QUERY_TYPES = ("QueryRequest", "QueryReply")


@dataclass(frozen=True)
class TrafficSplit:
    """One run's transmissions split along the paper's push/pull axis."""

    push: int
    pull: int
    query: int
    other: int

    @property
    def total(self) -> int:
        """All transmissions of the run."""
        return self.push + self.pull + self.query + self.other

    @property
    def push_share(self) -> float:
        """Push fraction of the protocol (push+pull) traffic."""
        protocol = self.push + self.pull
        return self.push / protocol if protocol else 0.0

    @property
    def pull_share(self) -> float:
        """Pull fraction of the protocol (push+pull) traffic."""
        protocol = self.push + self.pull
        return self.pull / protocol if protocol else 0.0


def rpcc_traffic_split(summary: MetricsSummary) -> TrafficSplit:
    """Split an RPCC run's transmissions into push / pull / query / other.

    * **push** — overlay maintenance: ``INVALIDATION``, ``UPDATE``,
      ``GET_NEW``/``SEND_NEW``, ``APPLY``/``APPLY_ACK``/``CANCEL``;
    * **pull** — on-demand validation: ``POLL`` and its acknowledgements
      (including the ``POLL_HOLD`` notice);
    * **query** — the strategy-independent remote-query plumbing;
    * **other** — anything else (zero for a stock RPCC run).
    """
    by_type: Dict[str, int] = summary.transmissions_by_type
    push = sum(by_type.get(name, 0) for name in RPCC_PUSH_TYPES)
    pull = sum(by_type.get(name, 0) for name in RPCC_PULL_TYPES)
    query = sum(by_type.get(name, 0) for name in QUERY_TYPES)
    other = summary.transmissions - push - pull - query
    return TrafficSplit(push=push, pull=pull, query=query, other=other)
