"""Experiment harness: Table-1 config, runner, figure reproductions."""

from repro.experiments.analysis import TrafficSplit, rpcc_traffic_split
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import (
    CampaignExecutor,
    CampaignRunError,
    ResultCache,
    run_key,
)
from repro.experiments.runner import (
    STRATEGY_SPECS,
    Simulation,
    SimulationResult,
    build_simulation,
    run_simulation,
)
from repro.experiments.stats import (
    MetricStats,
    aggregate,
    run_replicated,
    summarize_metric,
)

__all__ = [
    "SimulationConfig",
    "STRATEGY_SPECS",
    "Simulation",
    "SimulationResult",
    "build_simulation",
    "run_simulation",
    "MetricStats",
    "aggregate",
    "run_replicated",
    "summarize_metric",
    "TrafficSplit",
    "rpcc_traffic_split",
    "CampaignExecutor",
    "CampaignRunError",
    "ResultCache",
    "run_key",
]
