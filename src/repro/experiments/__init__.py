"""Experiment harness: Table-1 config, runner, figure reproductions."""

from repro.experiments.analysis import TrafficSplit, rpcc_traffic_split
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import (
    CampaignExecutor,
    CampaignRunError,
    ResultCache,
    env_jobs,
    run_key,
)
from repro.experiments.store import ResultStore, RunRecord, shard_of
from repro.experiments.transport import (
    PoolTransport,
    SerialTransport,
    ShardedTransport,
)
from repro.experiments.runner import (
    STRATEGY_SPECS,
    Simulation,
    SimulationResult,
    build_simulation,
    run_simulation,
)
from repro.experiments.stats import (
    MetricStats,
    aggregate,
    run_replicated,
    summarize_metric,
)

__all__ = [
    "SimulationConfig",
    "STRATEGY_SPECS",
    "Simulation",
    "SimulationResult",
    "build_simulation",
    "run_simulation",
    "MetricStats",
    "aggregate",
    "run_replicated",
    "summarize_metric",
    "TrafficSplit",
    "rpcc_traffic_split",
    "CampaignExecutor",
    "CampaignRunError",
    "ResultCache",
    "ResultStore",
    "RunRecord",
    "PoolTransport",
    "SerialTransport",
    "ShardedTransport",
    "env_jobs",
    "run_key",
    "shard_of",
]
