"""Campaign execution: work-queue fan-out over a durable result store.

A figure-scale campaign (six strategy curves x several axis points x
multi-seed replication) is embarrassingly parallel: every run is
independently seeded via ``RandomStreams(config.seed)``, so runs share no
state and can execute in any order — or concurrently — with bit-identical
results.  The campaign layer splits into three interfaces:

* **executor** (this module) — :class:`CampaignExecutor` owns the
  bookkeeping: content-address every task (:func:`run_key`), skip points
  the store or cache already holds, hand the remainder to a transport,
  and commit finished points as they stream back.

* **transport** (`repro.experiments.transport`) — how pending points
  reach workers: inline, dynamic process pool, or static stable-hash
  shards (``--workers``).

* **store** (`repro.experiments.store`) — the durable layer: an
  append-only columnar :class:`~repro.experiments.store.ResultStore`
  whose record batches replace per-run pickles.  Campaigns against a
  store are *resumable and idempotent*: a restarted campaign scans the
  store index, serves completed points from it, and re-runs only the
  remainder.

:class:`ResultCache` — one pickle per run under ``results/.cache/`` —
remains as the compatibility read path (and the default write path when
no store is configured), so existing cache directories keep their value.
Purge with :meth:`ResultCache.purge` (or ``rm -r results/.cache``)
whenever a code change alters simulation semantics without bumping
:data:`CACHE_FORMAT_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult
from repro.experiments.store import ResultStore
from repro.experiments.transport import (
    PoolTransport,
    SerialTransport,
    Transport,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "CampaignExecutor",
    "CampaignRunError",
    "ResultCache",
    "env_jobs",
    "run_key",
]

#: Bump whenever a change alters what a cached result means (new metrics,
#: changed simulation semantics, different pickle layout): old entries
#: then miss instead of resurfacing stale numbers.
CACHE_FORMAT_VERSION = 6  # v6: controller/controller_interval config fields join the key

#: Where the CLI keeps its cache unless told otherwise.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

#: One unit of campaign work.
RunTask = Tuple[SimulationConfig, str, str]


def env_jobs(name: str, default: int = 1) -> int:
    """Parse a worker-count environment variable (``REPRO_JOBS`` etc.).

    Unset or blank means ``default``; anything that is not a positive
    integer raises :class:`ConfigurationError` instead of surfacing later
    as an opaque pool failure.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def run_key(config: SimulationConfig, spec: str, scenario: str = "standard") -> str:
    """Content address of one run: hash of everything that determines it.

    Every dataclass field of ``config`` (including nested thresholds)
    participates, so any parameter change — seed included — yields a new
    key, while re-constructing an equal config hits the same entry.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "config": asdict(config),
        "spec": spec.strip().lower(),
        "scenario": scenario,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of pickled :class:`SimulationResult`s.

    One file per run under ``root`` (``<key>.pkl``); writes are atomic
    (temp file + rename) so a crashed run never leaves a half-written
    entry.  Unreadable entries are treated as misses and *quarantined* —
    renamed to ``<key>.pkl.corrupt`` instead of silently deleted — and
    counted in :attr:`cache_stats`, so cache rot is visible (the CLI
    footer reports it) and the evidence survives for inspection.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/quarantine counters of this cache handle."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_quarantined": self.corrupt,
        }

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / f"{key}.pkl"

    def quarantine_path_for(self, key: str) -> Path:
        """Where a corrupt entry for ``key`` is moved on detection."""
        path = self.path_for(key)
        return path.with_name(path.name + ".corrupt")

    def get(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
            result = pickle.loads(blob)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated or stale-format entry: quarantine it (keep the
            # evidence), count it, and recompute.
            try:
                os.replace(path, self.quarantine_path_for(key))
            except OSError:
                path.unlink(missing_ok=True)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(result))
        os.replace(tmp, path)

    def purge(self) -> int:
        """Delete every cache entry (quarantined ones included)."""
        removed = 0
        if self.root.is_dir():
            for pattern in ("*.pkl", "*.pkl.corrupt"):
                for entry in self.root.glob(pattern):
                    entry.unlink(missing_ok=True)
                    removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))


class CampaignRunError(SimulationError):
    """One run of a campaign failed; carries enough context to reproduce it.

    The executor raises this instead of letting a worker traceback
    propagate half-decoded (or, worse, letting a dead worker hang the
    pool): it names the ``(spec, scenario)`` point, keeps the exact
    ``config``, and embeds the worker's formatted traceback.  Points that
    completed before the failure are already committed to the result
    store, so a rerun resumes instead of restarting.
    """

    def __init__(
        self,
        spec: str,
        scenario: str,
        config: SimulationConfig,
        worker_traceback: str,
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.config = config
        self.worker_traceback = worker_traceback
        super().__init__(
            f"campaign run failed: spec={spec!r} scenario={scenario!r} "
            f"seed={config.seed} — worker traceback:\n{worker_traceback}"
        )


class CampaignExecutor:
    """Run batches of independent simulation tasks, cached and in parallel.

    Parameters
    ----------
    jobs:
        Worker processes for the default dynamic-pool transport; ``1``
        (default) runs inline, preserving the historical serial loop.
    cache:
        Optional :class:`ResultCache`.  Without a ``store`` it is the
        read *and* write path (historical behaviour); with one it stays
        read-only — a compatibility path for existing pickle caches.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  When
        given, finished runs are committed to the store in columnar
        batches (the pickle-per-run write path is off) and — with
        ``resume=True`` — already-stored points are served from it.
    resume:
        Whether the store's existing contents satisfy tasks (default
        ``True``).  ``False`` re-runs and re-appends every point (the
        merged view then serves the new rows, last writer wins).
    transport:
        Optional explicit :class:`~repro.experiments.transport.Transport`
        (e.g. a stable-hash ``ShardedTransport``); overrides ``jobs``.
    store_batch:
        Records buffered per columnar batch commit.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        store: Optional[ResultStore] = None,
        resume: bool = True,
        transport: Optional[Transport] = None,
        store_batch: int = 256,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs
        self.cache = cache
        self.store = store
        self.resume = resume
        self.transport = transport
        self.store_batch = store_batch
        #: Simulations actually executed (store/cache hits excluded).
        self.runs_executed = 0
        #: Tasks served from the store without simulating.
        self.store_hits = 0

    # ------------------------------------------------------------------
    def run_one(
        self,
        config: SimulationConfig,
        spec: str,
        scenario: str = "standard",
    ) -> SimulationResult:
        """Run (or fetch) a single simulation."""
        return self.run_many([(config, spec, scenario)])[0]

    def run_many(self, tasks: Sequence[RunTask]) -> List[SimulationResult]:
        """Run every task, returning results in task order.

        Identical tasks (same content address) are executed once and
        share their result; store- and cache-resident tasks are served
        without simulating.  Parallel and sharded execution are
        bit-identical to serial because every run is a pure function of
        its ``(config, spec, scenario)`` triple.
        """
        keys = [run_key(config, spec, scenario) for config, spec, scenario in tasks]
        unique: Dict[str, RunTask] = {}
        for key, task in zip(keys, tasks):
            unique.setdefault(key, task)

        resolved: Dict[str, SimulationResult] = {}
        if self.store is not None and self.resume:
            found = self.store.get_many(list(unique))
            for key, record in found.items():
                resolved[key] = record.to_result(unique[key][0])
            self.store_hits += len(found)
        if self.cache is not None:
            for key in unique:
                if key in resolved:
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    resolved[key] = hit
        pending = [(key, task) for key, task in unique.items() if key not in resolved]

        resolved.update(self._execute(pending))
        return [resolved[key] for key in keys]

    # ------------------------------------------------------------------
    def _pick_transport(self, pending_count: int) -> Transport:
        if self.transport is not None:
            return self.transport
        if self.jobs == 1 or pending_count <= 1:
            return SerialTransport()
        return PoolTransport(self.jobs)

    def _execute(
        self, pending: Sequence[Tuple[str, RunTask]]
    ) -> Dict[str, SimulationResult]:
        """Stream pending tasks through the transport, committing as we go.

        Completed points are committed (columnar batch append or pickle
        put) *before* a later failure can raise, so an interrupted
        campaign keeps everything that finished.
        """
        fresh: Dict[str, SimulationResult] = {}
        if not pending:
            return fresh
        transport = self._pick_transport(len(pending))
        writer = (
            self.store.writer(
                writer_id=f"w{os.getpid()}", batch_size=self.store_batch
            )
            if self.store is not None
            else None
        )
        try:
            for key, task, status, payload in transport.execute(pending):
                if status == "error":
                    config, spec, scenario = task
                    raise CampaignRunError(spec, scenario, config, str(payload))
                result: SimulationResult = payload  # type: ignore[assignment]
                fresh[key] = result
                self.runs_executed += 1
                if writer is not None:
                    writer.add_result(key, result)
                elif self.cache is not None:
                    self.cache.put(key, result)
        finally:
            if writer is not None:
                writer.close()
        return fresh
