"""Campaign execution: parallel run fan-out plus a content-addressed cache.

A figure-scale campaign (six strategy curves x several axis points x
multi-seed replication) is embarrassingly parallel: every run is
independently seeded via ``RandomStreams(config.seed)``, so runs share no
state and can execute in any order — or concurrently — with bit-identical
results.  :class:`CampaignExecutor` exploits exactly that: it fans a list
of ``(config, spec, scenario)`` tasks out over a ``ProcessPoolExecutor``
(``jobs > 1``) or runs them inline (``jobs == 1``, the default, which
preserves historical behaviour byte for byte).

Underneath sits :class:`ResultCache`, a content-addressed on-disk store:
the cache key is a stable hash of every ``SimulationConfig`` field plus
the spec, the scenario and a cache-format version.  Fig 7 and Fig 8 read
different metrics of the *same* sweeps, so ``fig7a`` followed by
``fig8a`` is a full cache hit for the second command, and re-running a
figure after an unrelated code change costs no simulation time.  Purge
with :meth:`ResultCache.purge` (or ``rm -r results/.cache``) whenever a
code change alters simulation semantics without bumping
:data:`CACHE_FORMAT_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import traceback
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult, run_simulation

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "CampaignExecutor",
    "CampaignRunError",
    "ResultCache",
    "run_key",
]

#: Bump whenever a change alters what a cached result means (new metrics,
#: changed simulation semantics, different pickle layout): old entries
#: then miss instead of resurfacing stale numbers.
CACHE_FORMAT_VERSION = 4  # v4: fault plans join the key; results gained fault_stats

#: Where the CLI keeps its cache unless told otherwise.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

#: One unit of campaign work.
RunTask = Tuple[SimulationConfig, str, str]


def run_key(config: SimulationConfig, spec: str, scenario: str = "standard") -> str:
    """Content address of one run: hash of everything that determines it.

    Every dataclass field of ``config`` (including nested thresholds)
    participates, so any parameter change — seed included — yields a new
    key, while re-constructing an equal config hits the same entry.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "config": asdict(config),
        "spec": spec.strip().lower(),
        "scenario": scenario,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of pickled :class:`SimulationResult`s.

    One file per run under ``root`` (``<key>.pkl``); writes are atomic
    (temp file + rename) so a crashed run never leaves a half-written
    entry, and unreadable entries are treated as misses and deleted.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
            result = pickle.loads(blob)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated or stale-format entry: drop it and recompute.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(result))
        os.replace(tmp, path)

    def purge(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))


class CampaignRunError(SimulationError):
    """One run of a campaign failed; carries enough context to reproduce it.

    The executor raises this instead of letting a worker traceback
    propagate half-decoded (or, worse, letting a dead worker hang the
    pool): it names the ``(spec, scenario)`` point, keeps the exact
    ``config``, and embeds the worker's formatted traceback.
    """

    def __init__(
        self,
        spec: str,
        scenario: str,
        config: SimulationConfig,
        worker_traceback: str,
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.config = config
        self.worker_traceback = worker_traceback
        super().__init__(
            f"campaign run failed: spec={spec!r} scenario={scenario!r} "
            f"seed={config.seed} — worker traceback:\n{worker_traceback}"
        )


def _execute_task(task: RunTask) -> Tuple[str, object]:
    """Worker body: run one simulation, never let an exception escape raw.

    Returns ``("ok", result)`` or ``("error", formatted_traceback)`` so
    the parent can re-raise with the task's config attached; raising the
    original exception across the process boundary would require it to
    pickle, which arbitrary third-party exceptions need not.
    """
    config, spec, scenario = task
    try:
        return "ok", run_simulation(config, spec, scenario)
    except Exception:
        return "error", traceback.format_exc()


class CampaignExecutor:
    """Run batches of independent simulation tasks, cached and in parallel.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs inline with no pool, so
        default behaviour is identical to the historical serial loops.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = jobs
        self.cache = cache
        #: Simulations actually executed (cache hits excluded).
        self.runs_executed = 0

    # ------------------------------------------------------------------
    def run_one(
        self,
        config: SimulationConfig,
        spec: str,
        scenario: str = "standard",
    ) -> SimulationResult:
        """Run (or fetch) a single simulation."""
        return self.run_many([(config, spec, scenario)])[0]

    def run_many(self, tasks: Sequence[RunTask]) -> List[SimulationResult]:
        """Run every task, returning results in task order.

        Identical tasks (same content address) are executed once and
        share their result; cached tasks are served without simulating.
        Parallel execution is bit-identical to serial because every run
        is a pure function of its ``(config, spec, scenario)`` triple.
        """
        keys = [run_key(config, spec, scenario) for config, spec, scenario in tasks]
        unique: Dict[str, RunTask] = {}
        for key, task in zip(keys, tasks):
            unique.setdefault(key, task)

        resolved: Dict[str, SimulationResult] = {}
        if self.cache is not None:
            for key in unique:
                hit = self.cache.get(key)
                if hit is not None:
                    resolved[key] = hit
        pending = [(key, task) for key, task in unique.items() if key not in resolved]

        if self.jobs == 1 or len(pending) <= 1:
            fresh = self._run_serial(pending)
        else:
            fresh = self._run_parallel(pending)
        self.runs_executed += len(fresh)
        if self.cache is not None:
            for key, result in fresh.items():
                self.cache.put(key, result)
        resolved.update(fresh)
        return [resolved[key] for key in keys]

    # ------------------------------------------------------------------
    def _run_serial(
        self, pending: Sequence[Tuple[str, RunTask]]
    ) -> Dict[str, SimulationResult]:
        fresh: Dict[str, SimulationResult] = {}
        for key, task in pending:
            status, payload = _execute_task(task)
            if status == "error":
                config, spec, scenario = task
                raise CampaignRunError(spec, scenario, config, str(payload))
            fresh[key] = payload  # type: ignore[assignment]
        return fresh

    def _run_parallel(
        self, pending: Sequence[Tuple[str, RunTask]]
    ) -> Dict[str, SimulationResult]:
        fresh: Dict[str, SimulationResult] = {}
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_task, task): (key, task) for key, task in pending
            }
            try:
                done, _ = wait(futures, return_when=FIRST_EXCEPTION)
                for future in done:
                    key, task = futures[future]
                    status, payload = future.result()
                    if status == "error":
                        config, spec, scenario = task
                        raise CampaignRunError(spec, scenario, config, str(payload))
                    fresh[key] = payload  # type: ignore[assignment]
            except BrokenProcessPool as exc:
                # A worker died without reporting (OOM kill, segfault):
                # name one of the tasks that was still in flight.
                config, spec, scenario = next(iter(futures.values()))[1]
                raise CampaignRunError(
                    spec,
                    scenario,
                    config,
                    f"worker process died abruptly: {exc}",
                ) from exc
            finally:
                for future in futures:
                    future.cancel()
        return fresh
