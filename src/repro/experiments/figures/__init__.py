"""Per-figure reproduction modules (one per panel of the paper)."""

from repro.experiments.figures.base import FigureData, extract_series, run_axis_sweep
from repro.experiments.figures.fig7 import (
    CACHE_NUMBERS,
    QUERY_INTERVALS,
    UPDATE_INTERVALS,
    fig7a,
    fig7b,
    fig7c,
)
from repro.experiments.figures.fig8 import fig8a, fig8b, fig8c
from repro.experiments.figures.fig9 import TTL_VALUES, fig9a, fig9b, run_fig9

__all__ = [
    "FigureData",
    "run_axis_sweep",
    "extract_series",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9a",
    "fig9b",
    "run_fig9",
    "UPDATE_INTERVALS",
    "QUERY_INTERVALS",
    "CACHE_NUMBERS",
    "TTL_VALUES",
]
