"""Fig 9 — impact of the invalidation TTL on RPCC(SC).

Scenario (Section 5.3): one randomly selected source host whose item is
cached by every other peer; the invalidation TTL of RPCC is swept from 1
to 7 hops; simple push and pull are simulated once each as references.

Expected shapes: at TTL 1 the relay population is tiny and RPCC's traffic
approaches simple pull; at TTL 7 most cache peers can relay and RPCC
approaches simple push, while latency falls with TTL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor
from repro.experiments.figures.base import FigureData
from repro.experiments.runner import SimulationResult

__all__ = ["TTL_VALUES", "run_fig9", "fig9a", "fig9b"]

TTL_VALUES: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)


def run_fig9(
    config: Optional[SimulationConfig] = None,
    ttls: Sequence[int] = TTL_VALUES,
    include_reference: bool = True,
    executor: Optional[CampaignExecutor] = None,
) -> Dict[str, object]:
    """Run the Fig 9 scenario once; both panels extract from this.

    Returns a dict with ``"rpcc"`` (ttl -> result), and optionally
    ``"push"``/``"pull"`` reference results.  The whole campaign (TTL
    sweep plus references) goes through ``executor`` in one batch, so a
    parallel or cached executor covers every point.
    """
    base = config if config is not None else SimulationConfig()
    if executor is None:
        executor = CampaignExecutor()
    unique_ttls: List[int] = []
    for ttl in ttls:
        if int(ttl) not in unique_ttls:
            unique_ttls.append(int(ttl))
    tasks = [
        (base.with_overrides(ttl_rpcc=ttl), "rpcc-sc", "single_source")
        for ttl in unique_ttls
    ]
    if include_reference:
        tasks.append((base, "push", "single_source"))
        tasks.append((base, "pull", "single_source"))
    outcomes = executor.run_many(tasks)
    rpcc_results: Dict[int, SimulationResult] = dict(
        zip(unique_ttls, outcomes[: len(unique_ttls)])
    )
    payload: Dict[str, object] = {"rpcc": rpcc_results, "ttls": list(ttls)}
    if include_reference:
        payload["push"], payload["pull"] = outcomes[len(unique_ttls):]
    return payload


def _panel(
    figure_id: str,
    title: str,
    y_label: str,
    metric,
    payload: Dict[str, object],
) -> FigureData:
    ttls = list(payload["ttls"])  # type: ignore[arg-type]
    rpcc_results: Dict[int, SimulationResult] = payload["rpcc"]  # type: ignore[assignment]
    series: Dict[str, list] = {
        "rpcc-sc": [metric(rpcc_results[int(ttl)]) for ttl in ttls]
    }
    for reference in ("push", "pull"):
        if reference in payload:
            value = metric(payload[reference])
            series[reference] = [value] * len(ttls)
    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label="invalidation TTL (hops)",
        y_label=y_label,
        x_values=[float(ttl) for ttl in ttls],
        series=series,
    )


def fig9a(
    config: Optional[SimulationConfig] = None,
    ttls: Sequence[int] = TTL_VALUES,
    payload: Optional[Dict[str, object]] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Traffic vs invalidation TTL."""
    if payload is None:
        payload = run_fig9(config, ttls, executor=executor)
    return _panel(
        "Fig 9(a)",
        "network traffic vs invalidation TTL",
        "transmissions",
        lambda result: float(result.summary.transmissions),
        payload,
    )


def fig9b(
    config: Optional[SimulationConfig] = None,
    ttls: Sequence[int] = TTL_VALUES,
    payload: Optional[Dict[str, object]] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Latency vs invalidation TTL."""
    if payload is None:
        payload = run_fig9(config, ttls, executor=executor)
    return _panel(
        "Fig 9(b)",
        "query latency vs invalidation TTL",
        "mean hit latency (s)",
        lambda result: result.summary.mean_hit_latency,
        payload,
    )
