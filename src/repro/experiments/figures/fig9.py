"""Fig 9 — impact of the invalidation TTL on RPCC(SC).

Scenario (Section 5.3): one randomly selected source host whose item is
cached by every other peer; the invalidation TTL of RPCC is swept from 1
to 7 hops; simple push and pull are simulated once each as references.

Expected shapes: at TTL 1 the relay population is tiny and RPCC's traffic
approaches simple pull; at TTL 7 most cache peers can relay and RPCC
approaches simple push, while latency falls with TTL.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.figures.base import FigureData
from repro.experiments.runner import SimulationResult, run_simulation

__all__ = ["TTL_VALUES", "run_fig9", "fig9a", "fig9b"]

TTL_VALUES: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)


def run_fig9(
    config: Optional[SimulationConfig] = None,
    ttls: Sequence[int] = TTL_VALUES,
    include_reference: bool = True,
) -> Dict[str, object]:
    """Run the Fig 9 scenario once; both panels extract from this.

    Returns a dict with ``"rpcc"`` (ttl -> result), and optionally
    ``"push"``/``"pull"`` reference results.
    """
    base = config if config is not None else SimulationConfig()
    rpcc_results: Dict[int, SimulationResult] = {}
    for ttl in ttls:
        point = base.with_overrides(ttl_rpcc=int(ttl))
        rpcc_results[int(ttl)] = run_simulation(point, "rpcc-sc", "single_source")
    payload: Dict[str, object] = {"rpcc": rpcc_results, "ttls": list(ttls)}
    if include_reference:
        payload["push"] = run_simulation(base, "push", "single_source")
        payload["pull"] = run_simulation(base, "pull", "single_source")
    return payload


def _panel(
    figure_id: str,
    title: str,
    y_label: str,
    metric,
    payload: Dict[str, object],
) -> FigureData:
    ttls = list(payload["ttls"])  # type: ignore[arg-type]
    rpcc_results: Dict[int, SimulationResult] = payload["rpcc"]  # type: ignore[assignment]
    series: Dict[str, list] = {
        "rpcc-sc": [metric(rpcc_results[int(ttl)]) for ttl in ttls]
    }
    for reference in ("push", "pull"):
        if reference in payload:
            value = metric(payload[reference])
            series[reference] = [value] * len(ttls)
    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label="invalidation TTL (hops)",
        y_label=y_label,
        x_values=[float(ttl) for ttl in ttls],
        series=series,
    )


def fig9a(
    config: Optional[SimulationConfig] = None,
    ttls: Sequence[int] = TTL_VALUES,
    payload: Optional[Dict[str, object]] = None,
) -> FigureData:
    """Traffic vs invalidation TTL."""
    if payload is None:
        payload = run_fig9(config, ttls)
    return _panel(
        "Fig 9(a)",
        "network traffic vs invalidation TTL",
        "transmissions",
        lambda result: float(result.summary.transmissions),
        payload,
    )


def fig9b(
    config: Optional[SimulationConfig] = None,
    ttls: Sequence[int] = TTL_VALUES,
    payload: Optional[Dict[str, object]] = None,
) -> FigureData:
    """Latency vs invalidation TTL."""
    if payload is None:
        payload = run_fig9(config, ttls)
    return _panel(
        "Fig 9(b)",
        "query latency vs invalidation TTL",
        "mean hit latency (s)",
        lambda result: result.summary.mean_hit_latency,
        payload,
    )
