"""Fig 8 — query latency of the compared strategies (the paper plots it on
a log scale).

Same three sweeps as Fig 7; the y value is the mean answered-query latency
in seconds.  Expected shapes: push around half its invalidation interval
and far above everything else; RPCC at the pull level; RPCC latency
falling as the cache number (hence the relay population) grows.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor
from repro.experiments.figures.base import FigureData, extract_series, run_axis_sweep
from repro.experiments.figures.fig7 import (
    CACHE_NUMBERS,
    QUERY_INTERVALS,
    UPDATE_INTERVALS,
)
from repro.experiments.runner import STRATEGY_SPECS, SimulationResult

__all__ = ["fig8a", "fig8b", "fig8c"]


def _latency(result: SimulationResult) -> float:
    # Cache-hit latency isolates the consistency check the paper measures;
    # miss queries exercise the strategy-independent fetch path instead.
    return result.summary.mean_hit_latency


def _panel(
    figure_id: str,
    title: str,
    axis: str,
    x_label: str,
    values: Sequence[float],
    config: Optional[SimulationConfig],
    specs: Sequence[str],
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    base = config if config is not None else SimulationConfig()
    if results is None:
        results = run_axis_sweep(base, axis, values, specs, executor=executor)
    series = extract_series(results, specs, values, _latency)
    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="mean hit latency (s)",
        x_values=list(values),
        series=series,
    )


def fig8a(
    config: Optional[SimulationConfig] = None,
    specs: Sequence[str] = STRATEGY_SPECS,
    update_intervals: Sequence[float] = UPDATE_INTERVALS,
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Latency vs update interval (seconds)."""
    return _panel(
        "Fig 8(a)",
        "query latency vs update interval",
        "update_interval",
        "update interval (s)",
        update_intervals,
        config,
        specs,
        results,
        executor,
    )


def fig8b(
    config: Optional[SimulationConfig] = None,
    specs: Sequence[str] = STRATEGY_SPECS,
    query_intervals: Sequence[float] = QUERY_INTERVALS,
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Latency vs query interval (seconds)."""
    return _panel(
        "Fig 8(b)",
        "query latency vs request interval",
        "query_interval",
        "query interval (s)",
        query_intervals,
        config,
        specs,
        results,
        executor,
    )


def fig8c(
    config: Optional[SimulationConfig] = None,
    specs: Sequence[str] = STRATEGY_SPECS,
    cache_numbers: Sequence[int] = CACHE_NUMBERS,
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Latency vs cache number per host."""
    return _panel(
        "Fig 8(c)",
        "query latency vs cache number",
        "cache_num",
        "cache number",
        list(cache_numbers),
        config,
        specs,
        results,
        executor,
    )
