"""Figure data containers and the shared parameter-sweep engine.

Fig 7 (traffic) and Fig 8 (latency) plot different metrics of the *same*
sweeps, so the sweep engine returns full :class:`SimulationResult` objects
keyed by ``(spec, x)``; the figure modules extract their column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor
from repro.experiments.runner import SimulationResult
from repro.metrics.report import format_table

__all__ = ["FigureData", "run_axis_sweep", "extract_series"]

#: Config fields a figure may sweep.
_SWEEPABLE = {
    "update_interval",
    "query_interval",
    "cache_num",
    "ttl_rpcc",
    "n_peers",
    "stable_fraction",
    "ttr",
    "ttn",
    "ttp",
}


@dataclass
class FigureData:
    """One reproduced figure: x values and one y series per strategy."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the figure as the table of rows the paper plots."""
        headers = [self.x_label] + list(self.series)
        rows = []
        for index, x_value in enumerate(self.x_values):
            row: List[object] = [x_value]
            for spec in self.series:
                row.append(self.series[spec][index])
            rows.append(row)
        heading = f"{self.figure_id}: {self.title}  (y = {self.y_label})"
        return format_table(headers, rows, title=heading)

    def value(self, spec: str, x: float) -> float:
        """Look up one y value by strategy and x.

        The x lookup is float-tolerant (``math.isclose``) so an axis
        value that went through arithmetic — ``1.5 * 60`` vs ``90.0000…1``
        — still finds its column.
        """
        for index, candidate in enumerate(self.x_values):
            if math.isclose(candidate, x, rel_tol=1e-9, abs_tol=1e-12):
                return self.series[spec][index]
        raise ConfigurationError(
            f"{self.figure_id}: no x value near {x!r}; have {self.x_values}"
        )

    def to_csv(self) -> str:
        """Serialize the figure as CSV (x column + one column per series)."""
        header = [self.x_label] + list(self.series)
        lines = [",".join(header)]
        for index, x_value in enumerate(self.x_values):
            row = [repr(x_value)]
            for spec in self.series:
                row.append(repr(self.series[spec][index]))
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())

    def plot(self, width: int = 64, height: int = 16, log_y: bool = False) -> str:
        """Render the figure as an ASCII chart (Fig 8 wants ``log_y``)."""
        from repro.viz.ascii import ascii_chart

        return ascii_chart(
            self.x_values,
            self.series,
            width=width,
            height=height,
            log_y=log_y,
            title=f"{self.figure_id}: {self.title}",
            y_label=self.y_label,
        )


def run_axis_sweep(
    config: SimulationConfig,
    axis: str,
    values: Sequence[float],
    specs: Sequence[str],
    scenario: str = "standard",
    executor: Optional[CampaignExecutor] = None,
) -> Dict[Tuple[str, float], SimulationResult]:
    """Run every (strategy, axis value) combination.

    Runs go through ``executor`` (default: a fresh serial, uncached
    :class:`CampaignExecutor`), so a parallel or cache-backed executor
    accelerates every figure without the figures knowing.  Duplicate axis
    values are collapsed — the same ``(spec, value)`` point is simulated
    once no matter how often the caller repeats it.
    """
    if axis not in _SWEEPABLE:
        raise ConfigurationError(
            f"cannot sweep {axis!r}; choose from {sorted(_SWEEPABLE)}"
        )
    if executor is None:
        executor = CampaignExecutor()
    unique_values: List[float] = []
    for value in values:
        if value not in unique_values:
            unique_values.append(value)
    points = [
        (spec, value, config.with_overrides(**{axis: type(getattr(config, axis))(value)}))
        for value in unique_values
        for spec in specs
    ]
    outcomes = executor.run_many(
        [(point_config, spec, scenario) for spec, value, point_config in points]
    )
    return {
        (spec, value): result
        for (spec, value, _), result in zip(points, outcomes)
    }


def extract_series(
    results: Dict[Tuple[str, float], SimulationResult],
    specs: Sequence[str],
    values: Sequence[float],
    metric: Callable[[SimulationResult], float],
) -> Dict[str, List[float]]:
    """Project sweep results onto one y series per strategy."""
    return {
        spec: [metric(results[(spec, value)]) for value in values] for spec in specs
    }
