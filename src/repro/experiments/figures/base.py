"""Figure data containers and the shared parameter-sweep engine.

Fig 7 (traffic) and Fig 8 (latency) plot different metrics of the *same*
sweeps, so the sweep engine returns full :class:`SimulationResult` objects
keyed by ``(spec, x)``; the figure modules extract their column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult, run_simulation
from repro.metrics.report import format_table

__all__ = ["FigureData", "run_axis_sweep", "extract_series"]

#: Config fields a figure may sweep.
_SWEEPABLE = {
    "update_interval",
    "query_interval",
    "cache_num",
    "ttl_rpcc",
    "n_peers",
    "stable_fraction",
    "ttr",
    "ttn",
    "ttp",
}


@dataclass
class FigureData:
    """One reproduced figure: x values and one y series per strategy."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the figure as the table of rows the paper plots."""
        headers = [self.x_label] + list(self.series)
        rows = []
        for index, x_value in enumerate(self.x_values):
            row: List[object] = [x_value]
            for spec in self.series:
                row.append(self.series[spec][index])
            rows.append(row)
        heading = f"{self.figure_id}: {self.title}  (y = {self.y_label})"
        return format_table(headers, rows, title=heading)

    def value(self, spec: str, x: float) -> float:
        """Look up one y value by strategy and x."""
        index = self.x_values.index(x)
        return self.series[spec][index]

    def to_csv(self) -> str:
        """Serialize the figure as CSV (x column + one column per series)."""
        header = [self.x_label] + list(self.series)
        lines = [",".join(header)]
        for index, x_value in enumerate(self.x_values):
            row = [repr(x_value)]
            for spec in self.series:
                row.append(repr(self.series[spec][index]))
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def save_csv(self, path: str) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())

    def plot(self, width: int = 64, height: int = 16, log_y: bool = False) -> str:
        """Render the figure as an ASCII chart (Fig 8 wants ``log_y``)."""
        from repro.viz.ascii import ascii_chart

        return ascii_chart(
            self.x_values,
            self.series,
            width=width,
            height=height,
            log_y=log_y,
            title=f"{self.figure_id}: {self.title}",
            y_label=self.y_label,
        )


def run_axis_sweep(
    config: SimulationConfig,
    axis: str,
    values: Sequence[float],
    specs: Sequence[str],
    scenario: str = "standard",
) -> Dict[Tuple[str, float], SimulationResult]:
    """Run every (strategy, axis value) combination.

    Each run re-derives its seed from the base seed, the axis and the spec
    so that runs are independent yet reproducible.
    """
    if axis not in _SWEEPABLE:
        raise ConfigurationError(
            f"cannot sweep {axis!r}; choose from {sorted(_SWEEPABLE)}"
        )
    results: Dict[Tuple[str, float], SimulationResult] = {}
    for value in values:
        kwargs = {axis: type(getattr(config, axis))(value)}
        point_config = config.with_overrides(**kwargs)
        for spec in specs:
            results[(spec, value)] = run_simulation(point_config, spec, scenario)
    return results


def extract_series(
    results: Dict[Tuple[str, float], SimulationResult],
    specs: Sequence[str],
    values: Sequence[float],
    metric: Callable[[SimulationResult], float],
) -> Dict[str, List[float]]:
    """Project sweep results onto one y series per strategy."""
    return {
        spec: [metric(results[(spec, value)]) for value in values] for spec in specs
    }
