"""Fig 7 — network traffic of the compared strategies.

Three panels, each sweeping one workload parameter with everything else at
Table 1 defaults:

* 7(a): traffic vs the **update interval**;
* 7(b): traffic vs the **query (request) interval**;
* 7(c): traffic vs the **cache number** per host.

The y value is total per-hop transmissions over the run.  Expected shapes
(the reproduction target): pull far above everything, RPCC-WC/DC lowest,
RPCC-SC between, RPCC-HY near the push curve.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor
from repro.experiments.figures.base import FigureData, extract_series, run_axis_sweep
from repro.experiments.runner import STRATEGY_SPECS, SimulationResult

__all__ = [
    "UPDATE_INTERVALS",
    "QUERY_INTERVALS",
    "CACHE_NUMBERS",
    "fig7a",
    "fig7b",
    "fig7c",
]

UPDATE_INTERVALS: Tuple[float, ...] = (30.0, 60.0, 120.0, 240.0, 480.0)
QUERY_INTERVALS: Tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0)
CACHE_NUMBERS: Tuple[int, ...] = (2, 5, 10, 15, 20)


def _traffic(result: SimulationResult) -> float:
    return float(result.summary.transmissions)


def _panel(
    figure_id: str,
    title: str,
    axis: str,
    x_label: str,
    values: Sequence[float],
    config: Optional[SimulationConfig],
    specs: Sequence[str],
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    base = config if config is not None else SimulationConfig()
    if results is None:
        results = run_axis_sweep(base, axis, values, specs, executor=executor)
    series = extract_series(results, specs, values, _traffic)
    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="transmissions",
        x_values=list(values),
        series=series,
    )


def fig7a(
    config: Optional[SimulationConfig] = None,
    specs: Sequence[str] = STRATEGY_SPECS,
    update_intervals: Sequence[float] = UPDATE_INTERVALS,
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Traffic vs update interval (seconds)."""
    return _panel(
        "Fig 7(a)",
        "network traffic vs update interval",
        "update_interval",
        "update interval (s)",
        update_intervals,
        config,
        specs,
        results,
        executor,
    )


def fig7b(
    config: Optional[SimulationConfig] = None,
    specs: Sequence[str] = STRATEGY_SPECS,
    query_intervals: Sequence[float] = QUERY_INTERVALS,
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Traffic vs query interval (seconds)."""
    return _panel(
        "Fig 7(b)",
        "network traffic vs request interval",
        "query_interval",
        "query interval (s)",
        query_intervals,
        config,
        specs,
        results,
        executor,
    )


def fig7c(
    config: Optional[SimulationConfig] = None,
    specs: Sequence[str] = STRATEGY_SPECS,
    cache_numbers: Sequence[int] = CACHE_NUMBERS,
    results: Optional[Dict] = None,
    executor: Optional[CampaignExecutor] = None,
) -> FigureData:
    """Traffic vs cache number per host."""
    return _panel(
        "Fig 7(c)",
        "network traffic vs cache number",
        "cache_num",
        "cache number",
        list(cache_numbers),
        config,
        specs,
        results,
        executor,
    )
