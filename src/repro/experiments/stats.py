"""Multi-seed replication and summary statistics.

The paper plots single curves without error bars; this module makes the
run-to-run variance measurable.  `run_replicated` executes the same
configuration under several seeds and aggregates any scalar metric into a
mean, sample standard deviation, and a normal-approximation 95 %
confidence half-width — which EXPERIMENTS.md uses to flag the
high-variance Fig 9 TTL-1 point.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import CampaignExecutor
from repro.experiments.runner import SimulationResult

__all__ = ["MetricStats", "aggregate", "run_replicated", "summarize_metric"]

#: Default scalar metrics pulled out of a result.
DEFAULT_METRICS: Dict[str, Callable[[SimulationResult], float]] = {
    "transmissions": lambda r: float(r.summary.transmissions),
    "mean_latency": lambda r: r.summary.mean_latency,
    "stale_ratio": lambda r: r.summary.stale_ratio,
    "violation_ratio": lambda r: r.summary.violation_ratio,
    "answered_ratio": lambda r: (
        r.summary.queries_answered / r.summary.queries_issued
        if r.summary.queries_issued
        else 0.0
    ),
    "mean_relay_count": lambda r: r.mean_relay_count,
}


@dataclass(frozen=True)
class MetricStats:
    """Aggregate of one scalar metric over replicated runs."""

    name: str
    samples: int
    mean: float
    stdev: float
    ci95: float

    @property
    def low(self) -> float:
        """Lower edge of the 95 % confidence interval."""
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        """Upper edge of the 95 % confidence interval."""
        return self.mean + self.ci95

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.4g} ± {self.ci95:.4g} (n={self.samples})"


def summarize_metric(name: str, values: Sequence[float]) -> MetricStats:
    """Aggregate raw samples into a :class:`MetricStats`."""
    if not values:
        raise ConfigurationError(f"no samples for metric {name!r}")
    mean = statistics.fmean(values)
    if len(values) > 1:
        stdev = statistics.stdev(values)
        ci95 = 1.96 * stdev / math.sqrt(len(values))
    else:
        stdev = 0.0
        ci95 = 0.0
    return MetricStats(name, len(values), mean, stdev, ci95)


def run_replicated(
    config: SimulationConfig,
    spec: str,
    seeds: Sequence[int],
    scenario: str = "standard",
    executor: Optional[CampaignExecutor] = None,
) -> List[SimulationResult]:
    """Run the same experiment once per seed.

    Seed replicas are independent runs, so a parallel ``executor``
    (``CampaignExecutor(jobs=N)``) fans them out across workers with
    bit-identical results; the default stays serial and uncached.
    """
    if not seeds:
        raise ConfigurationError("run_replicated needs at least one seed")
    if executor is None:
        executor = CampaignExecutor()
    return executor.run_many(
        [(config.with_overrides(seed=int(seed)), spec, scenario) for seed in seeds]
    )


def aggregate(
    results: Sequence[SimulationResult],
    metrics: Optional[Dict[str, Callable[[SimulationResult], float]]] = None,
) -> Dict[str, MetricStats]:
    """Aggregate the default (or given) metrics over replicated results."""
    if not results:
        raise ConfigurationError("aggregate needs at least one result")
    chosen = DEFAULT_METRICS if metrics is None else metrics
    return {
        name: summarize_metric(name, [extract(result) for result in results])
        for name, extract in chosen.items()
    }
