"""Build and run complete simulations.

A *strategy spec* names what Fig 7/8 plot on their legends:

* ``"push"`` / ``"pull"`` — the baselines (always validated strongly);
* ``"rpcc-sc"`` / ``"rpcc-dc"`` / ``"rpcc-wc"`` — RPCC under a pure
  consistency-level workload;
* ``"rpcc-hy"`` — RPCC under the hybrid workload (equal thirds).

Three placement scenarios exist: ``"standard"`` (Table 1, random
placement), ``"single_source"`` (Fig 9: one randomly chosen source whose
item is cached by every other peer) and ``"hot_set"`` (a multi-source
generalisation: ``hot_set_size`` items each cached by every other peer,
queries restricted to the hot set).

The strategy family is discoverable through the
:data:`~repro.scenarios.registry.STRATEGIES` registry; each factory maps
``(context, config) -> ConsistencyStrategy`` and is keyed by the family
name (``push``/``pull``/``rpcc``), while the spec strings above add the
workload-mix suffix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.catalog import Catalog
from repro.cache.directory import CacheDirectory
from repro.cache.discovery import Discovery
from repro.cache.placement import (
    hot_set_placement,
    random_placement,
    single_item_placement,
)
from repro.cache.replacement import make_policy
from repro.consistency.base import (
    ConsistencyStrategy,
    RetryBackoff,
    StrategyContext,
)
from repro.consistency.pull import PullStrategy
from repro.consistency.push import PushStrategy
from repro.consistency.rpcc import RPCCConfig, RPCCStrategy
from repro.control import OnlineController
from repro.energy.battery import Battery
from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.faults import FaultInjector
from repro.metrics.collector import MetricsCollector, MetricsSummary
from repro.metrics.degradation import DegradationMeter
from repro.metrics.timeseries import TimeSeries
from repro.mobility.stationary import Stationary
from repro.mobility.subnets import SubnetGrid, SubnetTracker
from repro.mobility.terrain import Terrain
from repro.mobility.trace import record_trace
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint
from repro.net.link import LinkModel
from repro.net.network import Network
from repro.net.routing import CachingRouter, ShortestPathRouter
from repro.peers.coefficients import CoefficientTracker
from repro.peers.host import MobileHost
from repro.peers.switching import SwitchingProcess
from repro.scenarios.registry import CONTROLLERS, STRATEGIES, register_strategy
from repro.sim.engine import Simulator, StartupBatch
from repro.sim.rng import RandomStreams
from repro.sim.timers import PeriodicTimer
from repro.workload.access import (
    AccessPattern,
    FlashCrowdAccess,
    UniformAccess,
    ZipfAccess,
)
from repro.workload.drivers import QueryWorkload, UpdateWorkload
from repro.workload.mix import LevelMix

__all__ = [
    "PLACEMENT_SCENARIOS",
    "STRATEGY_SPECS",
    "Simulation",
    "SimulationResult",
    "build_simulation",
    "run_simulation",
]

#: Every legend entry of Fig 7/8.
STRATEGY_SPECS = ("pull", "push", "rpcc-sc", "rpcc-dc", "rpcc-wc", "rpcc-hy")

#: Placement scenarios build_simulation understands.
PLACEMENT_SCENARIOS = ("standard", "single_source", "hot_set")

#: Sampling interval of the recorded trace replayed by mobility="trace".
TRACE_SAMPLE_INTERVAL = 10.0


def _parse_spec(spec: str) -> Tuple[str, LevelMix]:
    spec = spec.strip().lower()
    if spec == "push" or spec == "pull":
        return spec, LevelMix.pure("sc")
    if spec.startswith("rpcc-"):
        suffix = spec.split("-", 1)[1]
        if suffix == "hy":
            return "rpcc", LevelMix.hybrid()
        return "rpcc", LevelMix.pure(suffix)
    raise ConfigurationError(
        f"unknown strategy spec {spec!r}; choose from {STRATEGY_SPECS}"
    )


@dataclass
class SimulationResult:
    """Everything a finished run reports."""

    spec: str
    scenario: str
    config: SimulationConfig
    summary: MetricsSummary
    total_queries: int
    total_updates: int
    relay_samples: List[Tuple[float, int]] = field(default_factory=list)
    traffic_series: Optional[TimeSeries] = None
    energy_consumed: float = 0.0
    mean_battery_fraction: float = 0.0
    wall_clock_seconds: float = 0.0
    events_processed: int = 0
    #: TopologyService counters (snapshots built/reused, incremental
    #: updates, retained BFS trees, invalidations) at end of run.
    topology_stats: Dict[str, int] = field(default_factory=dict)
    #: Degradation metrics (availability, stale-serve rate in partition,
    #: time-to-reconverge); empty for fault-free runs without a meter.
    fault_stats: Dict[str, float] = field(default_factory=dict)
    #: Which per-quantum core executed this run: ``"vectorized"`` (numpy
    #: struct-of-arrays fast path) or ``"scalar"``.  Both produce
    #: bit-identical results; the field only records which one ran.
    core: str = "scalar"
    #: Applied online-control decisions in order (empty without a
    #: controller): ``{"time", "policy", "reason", "applied", "modes"}``.
    control_decisions: List[Dict[str, object]] = field(default_factory=list)

    @property
    def transmissions_per_minute(self) -> float:
        """Hop transmissions normalised by simulated time."""
        minutes = self.config.sim_time / 60.0
        return self.summary.transmissions / minutes if minutes > 0 else 0.0

    @property
    def mean_relay_count(self) -> float:
        """Time-averaged relay population (0 for non-RPCC runs)."""
        if not self.relay_samples:
            return 0.0
        return sum(count for _, count in self.relay_samples) / len(self.relay_samples)


class Simulation:
    """A fully wired simulation, ready to :meth:`run`."""

    def __init__(
        self,
        spec: str,
        scenario: str,
        config: SimulationConfig,
        sim: Simulator,
        network: Network,
        hosts: Dict[int, MobileHost],
        catalog: Catalog,
        strategy: ConsistencyStrategy,
        metrics: MetricsCollector,
        update_workload: UpdateWorkload,
        query_workload: QueryWorkload,
        single_source_item: Optional[int] = None,
        controller: Optional[OnlineController] = None,
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.config = config
        self.sim = sim
        self.network = network
        self.hosts = hosts
        self.catalog = catalog
        self.strategy = strategy
        self.metrics = metrics
        self.update_workload = update_workload
        self.query_workload = query_workload
        self.single_source_item = single_source_item
        self.controller = controller
        self._relay_samples: List[Tuple[float, int]] = []
        self._traffic_series = TimeSeries("transmissions")
        self._last_tx_total = 0

    def run(self, until: Optional[float] = None) -> SimulationResult:
        """Run warm-up plus the measured window (``config.sim_time``).

        Metrics are reset after ``config.warmup`` seconds so that the
        relay-bootstrap transient does not pollute steady-state numbers.
        """
        measured = self.config.sim_time if until is None else float(until)
        started = time.perf_counter()
        # Collect every startup arm (one TTN timer, two arrival streams,
        # one period timer and one switching process per host) and file
        # them in a single vectorized pass.  add-order == the historical
        # per-call schedule order and nothing else schedules before the
        # flush, so sequence numbers — and hence the event stream — are
        # bit-identical to the unbatched path.
        batch = StartupBatch()
        self.strategy.start(batch)
        self.update_workload.start(batch)
        self.query_workload.start(batch)
        for host in self.hosts.values():
            host.start_period_timer(batch)
            if host.switching is not None:
                host.switching.start(batch)
        if isinstance(self.strategy, RPCCStrategy):
            sampler = PeriodicTimer(self.sim, 60.0, self._sample_relays)
            sampler.start(batch)
        traffic_sampler = PeriodicTimer(self.sim, 60.0, self._sample_traffic)
        traffic_sampler.start(batch)
        if self.controller is not None:
            self.controller.start(batch)
        batch.flush(self.sim)
        if self.config.warmup > 0:
            self.sim.run_until(self.config.warmup)
            self.metrics.reset()
            self._relay_samples.clear()
        self.sim.run_until(self.config.warmup + measured)
        elapsed = time.perf_counter() - started
        energy = sum(host.battery.total_consumed for host in self.hosts.values())
        fraction = sum(
            host.battery.fraction for host in self.hosts.values()
        ) / len(self.hosts)
        summary = self.metrics.summary()
        return SimulationResult(
            spec=self.spec,
            scenario=self.scenario,
            config=self.config,
            summary=summary,
            total_queries=self.query_workload.total_queries,
            total_updates=self.update_workload.total_updates,
            relay_samples=list(self._relay_samples),
            traffic_series=self._traffic_series,
            energy_consumed=energy,
            mean_battery_fraction=fraction,
            wall_clock_seconds=elapsed,
            events_processed=self.sim.events_processed,
            topology_stats=self.network.topology.stats(),
            fault_stats=dict(summary.fault_stats),
            core=self.network.core,
            control_decisions=(
                list(self.controller.decisions)
                if self.controller is not None
                else []
            ),
        )

    def _sample_traffic(self) -> None:
        """Record the per-minute transmission rate (a convergence series)."""
        total = self.metrics.traffic.transmissions()
        delta = total - self._last_tx_total
        # A metrics reset at warm-up end makes the cumulative total drop;
        # restart the delta baseline instead of recording a negative rate.
        if delta < 0:
            delta = total
        self._last_tx_total = total
        self._traffic_series.record(self.sim.now, float(delta))

    def _sample_relays(self) -> None:
        assert isinstance(self.strategy, RPCCStrategy)
        if self.single_source_item is not None:
            count = self.strategy.relay_count_for(self.single_source_item)
        else:
            count = self.strategy.relay_count()
        self._relay_samples.append((self.sim.now, count))


def build_simulation(
    config: SimulationConfig,
    spec: str,
    scenario: str = "standard",
    *,
    trace=None,
) -> Simulation:
    """Wire every substrate into a runnable simulation.

    Parameters
    ----------
    config:
        The full parameter set (Table 1 defaults via ``SimulationConfig()``).
    spec:
        One of :data:`STRATEGY_SPECS`.
    scenario:
        One of :data:`PLACEMENT_SCENARIOS`: ``"standard"``,
        ``"single_source"`` (Fig 9) or ``"hot_set"``.
    trace:
        Optional :class:`repro.obs.TraceBus`; when given, every
        instrumented subsystem emits trace events into it.  Omitted (the
        default) the simulator keeps its no-op bus and tracing costs one
        branch per emit site.
    """
    if scenario not in PLACEMENT_SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; choose from {PLACEMENT_SCENARIOS}"
        )
    strategy_name, mix = _parse_spec(spec)
    # An empty plan is the same as no plan: no fault RNG streams, no
    # scheduled fault events, no degradation meter — bit-identical runs.
    plan = (
        config.faults
        if config.faults is not None and not config.faults.is_empty
        else None
    )
    sim = Simulator()
    streams = RandomStreams(config.seed)
    metrics = MetricsCollector(delta=config.ttp)
    if plan is not None:
        metrics.degradation = DegradationMeter(lambda: sim.now)
    if trace is not None:
        sim.attach_trace(trace)
        metrics.attach_trace(trace, lambda: sim.now)
    router = CachingRouter() if config.routing == "cached" else ShortestPathRouter()
    # loss_rate == 0 keeps the seed's exact LinkModel behaviour (and RNG
    # stream layout): hop_is_lost() short-circuits without drawing.
    link = LinkModel(
        loss_rate=config.loss_rate,
        rng=streams.stream("link-loss") if config.loss_rate > 0 else None,
    )
    network = Network(
        sim,
        radio_range=config.radio_range,
        link=link,
        traffic=metrics,
        router=router,
    )
    terrain = Terrain(config.terrain_width, config.terrain_height)
    grid = SubnetGrid(terrain, config.subnet_cell)
    catalog = Catalog.one_item_per_host(range(config.n_peers), config.content_size)
    directory = CacheDirectory()

    stable_rng = streams.stream("stable-assignment")
    stable_count = round(config.stable_fraction * config.n_peers)
    stable_ids = set(stable_rng.sample(range(config.n_peers), stable_count))

    battery_rng = streams.stream("battery")
    hosts: Dict[int, MobileHost] = {}
    for host_id in range(config.n_peers):
        stable = host_id in stable_ids
        if stable:
            mobility = Stationary(terrain.random_point(streams.stream(f"pos/{host_id}")))
        elif config.mobility == "walk":
            mobility = RandomWalk(
                terrain,
                streams.stream(f"mobility/{host_id}"),
                speed_min=config.speed_min,
                speed_max=config.speed_max,
            )
        else:
            mobility = RandomWaypoint(
                terrain,
                streams.stream(f"mobility/{host_id}"),
                speed_min=config.speed_min,
                speed_max=config.speed_max,
                pause_time=config.pause_time,
            )
            if config.mobility == "trace":
                # Trace replay: sample the waypoint trajectory up front and
                # replay it as piecewise-linear motion — every strategy run
                # over this config sees the *identical* movement, which is
                # the trace-replay scenario's whole point.
                recorded = record_trace(
                    mobility,
                    duration=config.warmup + config.sim_time + TRACE_SAMPLE_INTERVAL,
                    interval=TRACE_SAMPLE_INTERVAL,
                )
                mobility = recorded.as_model()
        initial = 100.0 if stable else battery_rng.uniform(40.0, 100.0)
        host = MobileHost(
            host_id,
            sim,
            mobility,
            battery=Battery(capacity=100.0, initial=initial),
            cache_capacity=config.cache_num,
            directory=directory,
            coefficient_tracker=CoefficientTracker(
                phi=config.switch_interval, omega=config.omega
            ),
            subnet_tracker=SubnetTracker(grid, mobility),
            # One fresh policy instance per host: stateful policies keep
            # per-store history.  ttl/clock are wiring the TTL-aware
            # policy accepts; stateless ones ignore them.
            replacement_policy=make_policy(
                config.replacement_policy, ttl=config.ttp, clock=lambda: sim.now
            ),
        )
        host.attach_source(catalog.master(host_id))
        if not stable:
            host.switching = SwitchingProcess(
                sim,
                streams.stream(f"switch/{host_id}"),
                host.set_online,
                mean_online=config.mean_online,
                mean_offline=config.mean_offline,
            )
        network.register(host)
        hosts[host_id] = host

    discovery = Discovery(catalog, directory)
    backoff_on = (
        config.retry_backoff
        if config.retry_backoff is not None
        else plan is not None
    )
    backoff = (
        RetryBackoff(
            factor=config.backoff_factor,
            cap=config.backoff_cap,
            jitter=config.backoff_jitter,
            seed=config.seed,
        )
        if backoff_on
        else None
    )
    context = StrategyContext(
        network,
        catalog,
        discovery,
        metrics,
        delta=config.ttp,
        fetch_timeout=config.fetch_timeout,
        cache_on_read=config.cache_on_read,
        backoff=backoff,
    )
    strategy = _make_strategy(strategy_name, context, config)
    for host in hosts.values():
        host.agent = strategy.make_agent(host)

    single_item: Optional[int] = None
    stores = {host_id: host.store for host_id, host in hosts.items()}
    if scenario == "single_source":
        single_item = streams.stream("fig9-source").randrange(config.n_peers)
        single_item_placement(catalog, stores, single_item)
        update_hosts = [hosts[catalog.source_of(single_item)]]
        restrict = [single_item]
    elif scenario == "hot_set":
        k = min(config.hot_set_size, len(catalog.item_ids))
        hot_items = sorted(
            streams.stream("hot-set").sample(sorted(catalog.item_ids), k)
        )
        hot_set_placement(catalog, stores, hot_items)
        update_hosts = [hosts[catalog.source_of(item)] for item in hot_items]
        restrict = hot_items
    else:
        random_placement(
            catalog, stores, config.cache_num, streams.stream("placement")
        )
        update_hosts = list(hosts.values())
        restrict = None
    # Pre-placed copies count as freshly validated for RPCC.
    if isinstance(strategy, RPCCStrategy):
        for host in hosts.values():
            agent = strategy.agent_for(host.node_id)
            for item_id in host.store.item_ids:
                agent.cache_peer.renew_ttp(item_id)  # type: ignore[attr-defined]

    update_workload = UpdateWorkload(
        update_hosts, streams, mean_interval=config.update_interval
    )
    if config.access_pattern == "flash-crowd":
        access: AccessPattern = FlashCrowdAccess(
            catalog.item_ids,
            theta=config.zipf_theta,
            seed=config.seed,
            shift_at=config.flash_crowd_at,
            clock=lambda: sim.now,
        )
    elif config.access_pattern == "zipf" or config.zipf_theta > 0:
        # zipf_theta > 0 alone is the pre-catalog shorthand for Zipf;
        # honouring it keeps older configs (and goldens) bit-identical.
        access = ZipfAccess(
            catalog.item_ids, theta=config.zipf_theta, seed=config.seed
        )
    else:
        access = UniformAccess(catalog.item_ids)
    query_workload = QueryWorkload(
        hosts.values(),
        streams,
        strategy,
        access,
        mix,
        mean_interval=config.query_interval,
        restrict_to_items=restrict,
    )
    injector: Optional[FaultInjector] = None
    if plan is not None:
        injector = FaultInjector(
            plan,
            sim=sim,
            network=network,
            hosts=hosts,
            metrics=metrics,
            strategy=strategy,
            seed=config.seed,
            terrain_width=config.terrain_width,
            terrain_height=config.terrain_height,
            degradation=metrics.degradation,
        )
        network.faults = injector
        injector.start()
    controller: Optional[OnlineController] = None
    if config.controller is not None:
        # Constructed last so the "controller" RNG stream is derived only
        # when a controller actually runs: controller=None draws the
        # exact pre-controller random sequences.
        controller = OnlineController(
            CONTROLLERS.get(config.controller)(),
            strategy,
            metrics,
            streams,
            hosts=hosts.values(),
            injector=injector,
            interval=config.controller_interval,
        )
    return Simulation(
        spec=spec,
        scenario=scenario,
        config=config,
        sim=sim,
        network=network,
        hosts=hosts,
        catalog=catalog,
        strategy=strategy,
        metrics=metrics,
        update_workload=update_workload,
        query_workload=query_workload,
        single_source_item=single_item,
        controller=controller,
    )


@register_strategy("push")
def _build_push(context: StrategyContext, config: SimulationConfig) -> ConsistencyStrategy:
    return PushStrategy(context, ttn=config.ttn, ttl=config.ttl_broadcast)


@register_strategy("pull")
def _build_pull(context: StrategyContext, config: SimulationConfig) -> ConsistencyStrategy:
    return PullStrategy(
        context, ttl=config.ttl_broadcast, poll_timeout=config.poll_timeout
    )


@register_strategy("rpcc")
def _build_rpcc(context: StrategyContext, config: SimulationConfig) -> ConsistencyStrategy:
    # Protocol hardening rides along with fault injection: fault-free
    # runs keep the paper-faithful defaults (and their golden digests).
    hardened = config.faults is not None and not config.faults.is_empty
    rpcc_config = RPCCConfig(
        ttl_invalidation=config.ttl_rpcc,
        ttn=config.ttn,
        ttr=config.ttr,
        ttp=config.ttp,
        poll_timeout=config.poll_timeout,
        broadcast_ttl=config.ttl_broadcast,
        thresholds=config.thresholds,
        update_repush_attempts=2 if hardened else 0,
        resync_on_reconnect=hardened,
        fast_relay_failover=hardened,
    )
    return RPCCStrategy(context, rpcc_config)


def _make_strategy(
    name: str, context: StrategyContext, config: SimulationConfig
) -> ConsistencyStrategy:
    return STRATEGIES.get(name)(context, config)


def run_simulation(
    config: SimulationConfig,
    spec: str,
    scenario: str = "standard",
    *,
    trace=None,
) -> SimulationResult:
    """Convenience: build and run in one call."""
    return build_simulation(config, spec, scenario, trace=trace).run()
