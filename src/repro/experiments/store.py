"""Append-only sharded columnar result store for campaign persistence.

The per-run pickle cache (:class:`repro.experiments.executor.ResultCache`)
costs one ``pickle.dumps`` plus one file creation *per point*, which makes
large campaigns I/O-bound and ties a campaign to the machine that wrote
it.  This module replaces that persistence layer with a columnar store
built from three stdlib-only pieces:

* **Record batches** — finished runs are reduced to a fixed-schema
  :class:`RunRecord` (every scalar of the metrics summary plus the
  topology/fault stat dictionaries and the relay/traffic series) and
  encoded column-major: all int64s of a batch packed together with
  :mod:`struct`, all float64s together, all strings/JSON values together
  with length prefixes.  One batch of 256 records costs two filesystem
  writes instead of 256.

* **Append-only segment files** — each writer appends batches to its own
  exclusive segment (``seg-<generation>-<writer>.seg``), so concurrent
  workers never contend on a file.  Segments are never rewritten.

* **Index sidecars with atomic commits** — a batch becomes visible only
  when the segment's sidecar (``.idx``) is atomically replaced to
  reference it.  A crash mid-append leaves unreferenced bytes at the end
  of a segment; readers never see them.  Readers merge every sidecar on
  read and dedup by content-address key, last writer wins (ordered by
  segment generation, then batch, then row).  Since keys are content
  addresses — equal key implies equal ``(config, spec, scenario)`` and
  therefore, runs being pure functions of that triple, an equal result —
  last-writer-wins only ever picks between identical payloads.

A restarted campaign scans :meth:`ResultStore.keys`, skips completed
points and re-runs only the remainder; `repro.experiments.transport`
shards the remainder across workers by :func:`shard_of`.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, fields
from operator import attrgetter
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.collector import MetricsSummary
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "STORE_FORMAT_VERSION",
    "DEFAULT_STORE_DIR",
    "RECORD_SCHEMA",
    "RunRecord",
    "ResultStore",
    "SegmentWriter",
    "StoreFormatError",
    "shard_of",
]

#: Bump on any incompatible change to the batch encoding or the schema.
STORE_FORMAT_VERSION = 1

#: Where the CLI keeps its store when ``--store`` is given without a path.
DEFAULT_STORE_DIR = os.path.join("results", ".store")

#: First bytes of every segment file.
_MAGIC = b"RPCCSTORE1\n"

#: Column kinds: fixed-width scalars are struct-packed, ``str``/``json``
#: values are UTF-8 with little-endian uint32 length prefixes.
_KINDS = ("i8", "f8", "str", "json")

#: The fixed schema, in column order.  ``key`` is the content address
#: (:func:`repro.experiments.executor.run_key`); the scalar block mirrors
#: :class:`repro.metrics.collector.MetricsSummary` plus the run-level
#: scalars of :class:`repro.experiments.runner.SimulationResult`; the JSON
#: block carries the open-keyed stat dictionaries and the two series.
RECORD_SCHEMA: Tuple[Tuple[str, str], ...] = (
    ("key", "str"),
    ("spec", "str"),
    ("scenario", "str"),
    ("seed", "i8"),
    ("sim_time", "f8"),
    ("transmissions", "i8"),
    ("messages", "i8"),
    ("bytes_on_air", "i8"),
    ("queries_issued", "i8"),
    ("queries_answered", "i8"),
    ("queries_unanswered", "i8"),
    ("mean_latency", "f8"),
    ("mean_hit_latency", "f8"),
    ("p95_latency", "f8"),
    ("local_answer_ratio", "f8"),
    ("stale_ratio", "f8"),
    ("violation_ratio", "f8"),
    ("mean_staleness_age", "f8"),
    ("total_queries", "i8"),
    ("total_updates", "i8"),
    ("energy_consumed", "f8"),
    ("mean_battery_fraction", "f8"),
    ("wall_clock_seconds", "f8"),
    ("events_processed", "i8"),
    ("core", "str"),
    ("transmissions_by_type", "json"),
    ("counters", "json"),
    ("fault_stats", "json"),
    ("topology_stats", "json"),
    ("relay_samples", "json"),
    ("traffic_series", "json"),
)

_STRUCT_CODE = {"i8": "q", "f8": "d"}
_U32 = struct.Struct("<I")


class StoreFormatError(SimulationError):
    """A segment or sidecar could not be decoded as this store format."""


def shard_of(key: str, shards: int) -> int:
    """Stable shard assignment of a content-address key.

    Uses the leading 64 bits of the (hex) key, so the same point always
    lands on the same shard regardless of process, host or Python hash
    randomisation — the property that makes restarted sharded campaigns
    re-partition identically.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards!r}")
    return int(key[:16], 16) % shards


@dataclass(frozen=True)
class RunRecord:
    """One finished run, reduced to the store's fixed schema."""

    key: str
    spec: str
    scenario: str
    seed: int
    sim_time: float
    transmissions: int
    messages: int
    bytes_on_air: int
    queries_issued: int
    queries_answered: int
    queries_unanswered: int
    mean_latency: float
    mean_hit_latency: float
    p95_latency: float
    local_answer_ratio: float
    stale_ratio: float
    violation_ratio: float
    mean_staleness_age: float
    total_queries: int
    total_updates: int
    energy_consumed: float
    mean_battery_fraction: float
    wall_clock_seconds: float
    events_processed: int
    core: str
    transmissions_by_type: Dict[str, int]
    counters: Dict[str, int]
    fault_stats: Dict[str, float]
    topology_stats: Dict[str, int]
    relay_samples: List[List[float]]
    traffic_series: Optional[Dict[str, object]]

    @classmethod
    def from_result(cls, key: str, result) -> "RunRecord":
        """Reduce a :class:`SimulationResult` to a storable record."""
        summary = result.summary
        series = result.traffic_series
        series_payload = None
        if series is not None:
            series_payload = {
                "name": series.name,
                "times": series.times,
                "values": series.values,
            }
        return cls(
            key=key,
            spec=result.spec,
            scenario=result.scenario,
            seed=int(result.config.seed),
            sim_time=float(result.config.sim_time),
            transmissions=summary.transmissions,
            messages=summary.messages,
            bytes_on_air=summary.bytes_on_air,
            queries_issued=summary.queries_issued,
            queries_answered=summary.queries_answered,
            queries_unanswered=summary.queries_unanswered,
            mean_latency=summary.mean_latency,
            mean_hit_latency=summary.mean_hit_latency,
            p95_latency=summary.p95_latency,
            local_answer_ratio=summary.local_answer_ratio,
            stale_ratio=summary.stale_ratio,
            violation_ratio=summary.violation_ratio,
            mean_staleness_age=summary.mean_staleness_age,
            total_queries=result.total_queries,
            total_updates=result.total_updates,
            energy_consumed=result.energy_consumed,
            mean_battery_fraction=result.mean_battery_fraction,
            wall_clock_seconds=result.wall_clock_seconds,
            events_processed=result.events_processed,
            core=result.core,
            transmissions_by_type=dict(summary.transmissions_by_type),
            counters=dict(summary.counters),
            fault_stats=dict(summary.fault_stats),
            topology_stats=dict(result.topology_stats),
            relay_samples=[[t, c] for t, c in result.relay_samples],
            traffic_series=series_payload,
        )

    def to_result(self, config):
        """Rebuild a :class:`SimulationResult` around ``config``.

        The store does not persist configurations (the campaign that
        resumes already holds them — the key proves they match), so the
        caller supplies the task's config.  Every persisted field round
        trips exactly: int64/float64 columns are struct-packed and JSON
        floats round trip via ``repr``.
        """
        from repro.experiments.runner import SimulationResult

        global _RESULT_ORDER_CHECKED
        if not _RESULT_ORDER_CHECKED:
            assert tuple(f.name for f in fields(SimulationResult)) == (
                _RESULT_FIELD_ORDER
            ), "SimulationResult fields moved: fix RunRecord.to_result"
            _RESULT_ORDER_CHECKED = True

        # Positional construction: a resumed 1000-point campaign rebuilds
        # a result per record, and keyword dataclass calls are measurably
        # slower on that path.  The import-time field-order asserts below
        # turn any reordering of the target dataclasses into a loud
        # failure here instead of silently scrambled results.
        summary = MetricsSummary(
            self.transmissions,
            self.messages,
            self.bytes_on_air,
            self.queries_issued,
            self.queries_answered,
            self.queries_unanswered,
            self.mean_latency,
            self.mean_hit_latency,
            self.p95_latency,
            self.local_answer_ratio,
            self.stale_ratio,
            self.violation_ratio,
            self.mean_staleness_age,
            dict(self.transmissions_by_type),
            dict(self.counters),
            dict(self.fault_stats),
        )
        series = None
        if self.traffic_series is not None:
            series = TimeSeries(str(self.traffic_series.get("name", "")))
            for time, value in zip(
                self.traffic_series["times"], self.traffic_series["values"]
            ):
                series.record(float(time), float(value))
        return SimulationResult(
            self.spec,
            self.scenario,
            config,
            summary,
            self.total_queries,
            self.total_updates,
            [(float(t), int(c)) for t, c in self.relay_samples],
            series,
            self.energy_consumed,
            self.mean_battery_fraction,
            self.wall_clock_seconds,
            self.events_processed,
            dict(self.topology_stats),
            dict(self.fault_stats),
            self.core,
            # control_decisions is not persisted (trace-level detail, like
            # the config): a store round trip rebuilds it empty.
        )


_RECORD_FIELDS = tuple(field.name for field in fields(RunRecord))
assert _RECORD_FIELDS == tuple(name for name, _ in RECORD_SCHEMA), (
    "RunRecord fields must match RECORD_SCHEMA order"
)
_FIELD_GETTER = attrgetter(*_RECORD_FIELDS)

#: Field orders :meth:`RunRecord.to_result` relies on for positional
#: dataclass construction.  The MetricsSummary one is checked at import;
#: SimulationResult imports lazily, so its check runs on first use.
_SUMMARY_FIELD_ORDER = (
    "transmissions", "messages", "bytes_on_air", "queries_issued",
    "queries_answered", "queries_unanswered", "mean_latency",
    "mean_hit_latency", "p95_latency", "local_answer_ratio",
    "stale_ratio", "violation_ratio", "mean_staleness_age",
    "transmissions_by_type", "counters", "fault_stats",
)
assert tuple(f.name for f in fields(MetricsSummary)) == (
    _SUMMARY_FIELD_ORDER
), "MetricsSummary fields moved: fix RunRecord.to_result"

_RESULT_FIELD_ORDER = (
    "spec", "scenario", "config", "summary", "total_queries",
    "total_updates", "relay_samples", "traffic_series",
    "energy_consumed", "mean_battery_fraction", "wall_clock_seconds",
    "events_processed", "topology_stats", "fault_stats", "core",
    "control_decisions",
)
_RESULT_ORDER_CHECKED = False


# ----------------------------------------------------------------------
# Batch encoding: column-major, fixed schema, stdlib only.


def encode_batch(records: Sequence[RunRecord]) -> bytes:
    """Encode records as one columnar batch (header + column payloads)."""
    count = len(records)
    if count == 0:
        raise ConfigurationError("cannot encode an empty batch")
    payloads: List[bytes] = []
    columns: List[List[object]] = []
    # One attrgetter call per record beats one getattr per cell 31-fold.
    transposed = zip(*(_FIELD_GETTER(record) for record in records))
    for (name, kind), values in zip(RECORD_SCHEMA, transposed):
        if kind in _STRUCT_CODE:
            blob = struct.pack(f"<{count}{_STRUCT_CODE[kind]}", *values)
        else:
            # str and json columns are one JSON array per column: a
            # single C-speed dumps/loads per batch instead of one per
            # value, and floats still round trip exactly via ``repr``.
            blob = json.dumps(values).encode("utf-8")
        payloads.append(blob)
        columns.append([name, kind, len(blob)])
    header = json.dumps(
        {"version": STORE_FORMAT_VERSION, "n": count, "cols": columns}
    ).encode("utf-8")
    return b"".join([_U32.pack(len(header)), header] + payloads)


def decode_batch(blob: bytes) -> List[RunRecord]:
    """Decode one batch produced by :func:`encode_batch`."""
    if len(blob) < _U32.size:
        raise StoreFormatError("batch shorter than its header length field")
    (header_len,) = _U32.unpack_from(blob, 0)
    offset = _U32.size
    try:
        header = json.loads(blob[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreFormatError(f"unreadable batch header: {exc}") from exc
    if header.get("version") != STORE_FORMAT_VERSION:
        raise StoreFormatError(
            f"batch format v{header.get('version')!r}, "
            f"this reader speaks v{STORE_FORMAT_VERSION}"
        )
    count = header["n"]
    offset += header_len
    columns: Dict[str, List[object]] = {}
    for name, kind, nbytes in header["cols"]:
        chunk = blob[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise StoreFormatError(f"truncated column {name!r}")
        offset += nbytes
        if kind in _STRUCT_CODE:
            columns[name] = list(
                struct.unpack(f"<{count}{_STRUCT_CODE[kind]}", chunk)
            )
        else:
            try:
                values = json.loads(chunk.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise StoreFormatError(
                    f"unreadable column {name!r}: {exc}"
                ) from exc
            if not isinstance(values, list) or len(values) != count:
                raise StoreFormatError(
                    f"column {name!r} does not hold {count} values"
                )
            columns[name] = values
    schema_names = [name for name, _ in RECORD_SCHEMA]
    if list(columns) != schema_names:
        raise StoreFormatError(
            f"batch columns {list(columns)} do not match the schema"
        )
    # Bulk-build the records around the frozen __init__: each field of a
    # frozen dataclass is set via object.__setattr__, which at 31 fields
    # per record is half the decode cost of a large batch.  Writing the
    # instance __dict__ directly is equivalent (RunRecord has no slots)
    # and keeps eq/hash semantics.
    new = RunRecord.__new__
    decoded: List[RunRecord] = []
    for row in zip(*(columns[name] for name in schema_names)):
        record = new(RunRecord)
        record.__dict__.update(zip(_RECORD_FIELDS, row))
        decoded.append(record)
    return decoded


# ----------------------------------------------------------------------
# Segments and index sidecars.


@dataclass(frozen=True)
class _BatchRef:
    """Where one committed batch lives."""

    segment: str
    generation: int
    index: int
    offset: int
    length: int
    keys: Tuple[str, ...]


class SegmentWriter:
    """Buffered writer appending record batches to one exclusive segment.

    The segment file is claimed lazily (first flush) with ``O_EXCL``
    semantics on a generation-numbered name, so concurrent writers —
    other processes included — always land on distinct files.  Every
    flush appends one batch and then atomically rewrites the sidecar;
    until that rename the batch does not exist as far as readers are
    concerned.
    """

    def __init__(
        self, store: "ResultStore", writer_id: str = "w0", batch_size: int = 256
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size!r}")
        if not writer_id or "/" in writer_id or "." in writer_id:
            raise ConfigurationError(f"invalid writer id {writer_id!r}")
        self.store = store
        self.writer_id = writer_id
        self.batch_size = batch_size
        self._buffer: List[RunRecord] = []
        self._handle = None
        self._segment_name: Optional[str] = None
        self._generation: Optional[int] = None
        self._batches: List[Dict[str, object]] = []
        self._closed = False

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- writing --------------------------------------------------------
    def add(self, record: RunRecord) -> None:
        """Buffer one record; auto-flushes a full batch."""
        if self._closed:
            raise ConfigurationError("writer is closed")
        self._buffer.append(record)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def add_result(self, key: str, result) -> None:
        """Reduce and buffer one :class:`SimulationResult`."""
        self.add(RunRecord.from_result(key, result))

    def flush(self) -> None:
        """Commit buffered records as one batch (no-op when empty)."""
        if not self._buffer:
            return
        if self._handle is None:
            self._claim_segment()
        blob = encode_batch(self._buffer)
        offset = self._handle.tell()
        self._handle.write(blob)
        self._handle.flush()
        self._batches.append({
            "offset": offset,
            "length": len(blob),
            "n": len(self._buffer),
            "keys": [record.key for record in self._buffer],
        })
        self._commit_index()
        stats = self.store.stats
        stats["records_appended"] += len(self._buffer)
        stats["batches_committed"] += 1
        stats["fs_writes"] += 3  # batch append + sidecar temp + rename
        self._buffer.clear()
        self.store._invalidate_index()

    def close(self) -> None:
        """Flush and release the segment file handle."""
        if self._closed:
            return
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True

    # -- internals ------------------------------------------------------
    def _claim_segment(self) -> None:
        self.store.root.mkdir(parents=True, exist_ok=True)
        generation = self.store._next_generation()
        while True:
            name = f"seg-{generation:06d}-{self.writer_id}.seg"
            path = self.store.root / name
            try:
                self._handle = open(path, "xb")
            except FileExistsError:
                generation += 1
                continue
            break
        self._handle.write(_MAGIC)
        self._handle.flush()
        self._segment_name = name
        self._generation = generation
        self.store.stats["segments_created"] += 1
        self.store.stats["fs_writes"] += 1

    def _commit_index(self) -> None:
        sidecar = {
            "format": STORE_FORMAT_VERSION,
            "segment": self._segment_name,
            "generation": self._generation,
            "writer": self.writer_id,
            "batches": self._batches,
        }
        path = self.store.root / f"{Path(self._segment_name).stem}.idx"
        tmp = path.with_suffix(f".idx.tmp{os.getpid()}")
        tmp.write_text(json.dumps(sidecar), encoding="utf-8")
        os.replace(tmp, path)


class ResultStore:
    """The merged view over every segment in one directory.

    Readers only trust the index sidecars, so partially appended batches
    (a crash between the segment append and the sidecar rename) are
    invisible.  ``stats`` counts writes (``fs_writes`` is the number of
    file creations/renames/appends — the number the campaign benchmark
    compares against the per-pickle path) and merged reads.
    """

    def __init__(self, root: os.PathLike = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.stats: Dict[str, int] = {
            "segments_created": 0,
            "batches_committed": 0,
            "records_appended": 0,
            "fs_writes": 0,
            "batches_read": 0,
            "records_served": 0,
        }
        self._index: Optional[Dict[str, Tuple[_BatchRef, int]]] = None

    # -- writing --------------------------------------------------------
    def writer(self, writer_id: str = "w0", batch_size: int = 256) -> SegmentWriter:
        """A buffered batch writer appending to its own segment."""
        return SegmentWriter(self, writer_id=writer_id, batch_size=batch_size)

    # -- index ----------------------------------------------------------
    def refresh(self) -> None:
        """Drop the cached merged index; the next read re-scans sidecars."""
        self._index = None

    def _invalidate_index(self) -> None:
        self._index = None

    def _next_generation(self) -> int:
        latest = 0
        if self.root.is_dir():
            for entry in self.root.glob("seg-*.seg"):
                try:
                    latest = max(latest, int(entry.name.split("-")[1]))
                except (IndexError, ValueError):
                    continue
        return latest + 1

    def _load_index(self) -> Dict[str, Tuple[_BatchRef, int]]:
        if self._index is not None:
            return self._index
        refs: List[_BatchRef] = []
        if self.root.is_dir():
            for sidecar in sorted(self.root.glob("seg-*.idx")):
                try:
                    data = json.loads(sidecar.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError):
                    continue  # torn sidecar: its batches stay invisible
                if data.get("format") != STORE_FORMAT_VERSION:
                    raise StoreFormatError(
                        f"{sidecar} is store format "
                        f"v{data.get('format')!r}, reader speaks "
                        f"v{STORE_FORMAT_VERSION}"
                    )
                for position, batch in enumerate(data.get("batches", ())):
                    refs.append(_BatchRef(
                        segment=data["segment"],
                        generation=int(data["generation"]),
                        index=position,
                        offset=int(batch["offset"]),
                        length=int(batch["length"]),
                        keys=tuple(batch["keys"]),
                    ))
        refs.sort(key=lambda ref: (ref.generation, ref.segment, ref.index))
        index: Dict[str, Tuple[_BatchRef, int]] = {}
        for ref in refs:
            for row, key in enumerate(ref.keys):
                index[key] = (ref, row)  # later generations win
        self._index = index
        return index

    # -- reading --------------------------------------------------------
    def keys(self) -> frozenset:
        """Every completed content-address key (deduped)."""
        return frozenset(self._load_index())

    def __len__(self) -> int:
        return len(self._load_index())

    def __contains__(self, key: str) -> bool:
        return key in self._load_index()

    def _read_batch(self, ref: _BatchRef) -> List[RunRecord]:
        path = self.root / ref.segment
        with open(path, "rb") as handle:
            if handle.read(len(_MAGIC)) != _MAGIC:
                raise StoreFormatError(f"{path} is not a result-store segment")
            handle.seek(ref.offset)
            blob = handle.read(ref.length)
        if len(blob) != ref.length:
            raise StoreFormatError(f"{path} truncated under batch {ref.index}")
        self.stats["batches_read"] += 1
        return decode_batch(blob)

    def get(self, key: str) -> Optional[RunRecord]:
        """The winning record for ``key``, or ``None``."""
        entry = self._load_index().get(key)
        if entry is None:
            return None
        ref, row = entry
        self.stats["records_served"] += 1
        return self._read_batch(ref)[row]

    def get_many(self, keys: Sequence[str]) -> Dict[str, RunRecord]:
        """Batch lookup: each referenced batch is decoded exactly once."""
        index = self._load_index()
        wanted: Dict[_BatchRef, List[Tuple[int, str]]] = {}
        for key in keys:
            entry = index.get(key)
            if entry is not None:
                ref, row = entry
                wanted.setdefault(ref, []).append((row, key))
        found: Dict[str, RunRecord] = {}
        for ref in sorted(wanted, key=lambda r: (r.generation, r.segment, r.index)):
            records = self._read_batch(ref)
            for row, key in wanted[ref]:
                found[key] = records[row]
                self.stats["records_served"] += 1
        return found

    def records(self) -> Iterator[RunRecord]:
        """Merge-on-read over the whole store (deduped, batch at a time)."""
        index = self._load_index()
        by_batch: Dict[_BatchRef, List[int]] = {}
        for ref, row in index.values():
            by_batch.setdefault(ref, []).append(row)
        for ref in sorted(by_batch, key=lambda r: (r.generation, r.segment, r.index)):
            records = self._read_batch(ref)
            for row in sorted(by_batch[ref]):
                self.stats["records_served"] += 1
                yield records[row]
