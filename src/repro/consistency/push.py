"""Simple push-based invalidation (the paper's first baseline).

Every source host periodically floods an invalidation report carrying the
current version of its item (TTL ``TTL_BR`` = 8 hops, period ``TTN``).
A query at a cache node cannot be answered until the *next* report proves
the copy current (or exposes it as stale, triggering a content refresh
from the source) — hence the paper's observation that "the average query
latency is longer than half of the invalidation interval".

Weakness faithfully reproduced: a node that misses reports (offline, or
outside the flood's TTL scope) waits in vain; after ``wait_factor x TTN``
it gives up and serves its possibly-stale local copy, which is exactly the
stale-data-on-reconnection problem Section 4 attributes to pure push.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cache.item import CachedCopy
from repro.consistency.base import (
    BaseAgent,
    ConsistencyStrategy,
    PendingQuery,
    QueryJob,
    StrategyContext,
)
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.messages import (
    FetchReply,
    FetchRequest,
    PushInvalidation,
    next_fetch_id,
)
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.obs.events import FetchCompleted, FetchStarted, InvalidationSent
from repro.peers.host import MobileHost
from repro.sim.timers import PeriodicTimer

__all__ = ["PushStrategy", "PushAgent"]

_GOLDEN = 0.6180339887498949  # deterministic per-source timer stagger


class PushStrategy(ConsistencyStrategy):
    """Run-global configuration and timer management for simple push.

    Parameters
    ----------
    context:
        Shared strategy plumbing.
    ttn:
        Invalidation-report period in seconds (Table 1: 2 minutes).
    ttl:
        Flood scope of the report in hops (Table 1: ``TTL_BR`` = 8).
    wait_factor:
        A waiting query gives up after ``wait_factor * ttn`` seconds and
        serves its local copy stale.
    """

    name = "push"

    def __init__(
        self,
        context: StrategyContext,
        ttn: float = 120.0,
        ttl: int = 8,
        wait_factor: float = 2.5,
    ) -> None:
        super().__init__(context)
        if ttn <= 0:
            raise ProtocolError(f"ttn must be positive, got {ttn!r}")
        if ttl < 1:
            raise ProtocolError(f"ttl must be >= 1, got {ttl!r}")
        self.ttn = float(ttn)
        self.ttl = int(ttl)
        self.wait_factor = float(wait_factor)
        self._timers: List[PeriodicTimer] = []

    def remote_query_timeout(self) -> float:
        """Clients must outwait the holder's worst-case report wait."""
        return self.wait_factor * self.ttn + 10.0

    def control_knobs(self) -> Dict[str, float]:
        knobs = super().control_knobs()
        knobs["ttn"] = self.ttn
        return knobs

    def apply_control(self, decision) -> Dict[str, float]:
        applied = super().apply_control(decision)
        ttn = decision.knobs.get("ttn")
        if ttn is not None:
            ttn = float(ttn)
            if ttn > 0 and ttn != self.ttn:
                self.ttn = ttn
                # Each armed tick fires as scheduled; only the *next*
                # re-arm reads the new interval (actuation-seam rule).
                for timer in self._timers:
                    timer.interval = ttn
                applied["ttn"] = ttn
        return applied

    def make_agent(self, host: MobileHost) -> "PushAgent":
        return PushAgent(self, host)

    def start(self, batch=None) -> None:
        """Arm one staggered invalidation-report timer per source host."""
        for agent in self.agents.values():
            host = agent.host
            if host.source_item is None:
                continue
            offset = self.ttn * ((host.node_id * _GOLDEN) % 1.0)
            timer = PeriodicTimer(
                self.context.sim,
                self.ttn,
                agent.broadcast_report,  # type: ignore[attr-defined]
                start_offset=offset if offset > 0 else self.ttn,
            )
            timer.start(batch)
            self._timers.append(timer)

    def stop(self) -> None:
        """Disarm all report timers (used by tests)."""
        for timer in self._timers:
            timer.stop()
        self._timers.clear()


class PushAgent(BaseAgent):
    """Per-host endpoint of the simple push strategy."""

    def __init__(self, strategy: PushStrategy, host: MobileHost) -> None:
        super().__init__(strategy, host)
        self.push: PushStrategy = strategy
        # item_id -> queries waiting for the next invalidation report
        self._waiting: Dict[int, List[PendingQuery]] = {}
        # items with a content refresh from the source in flight
        self._refreshing: Set[int] = set()
        self._refresh_ids: Dict[int, int] = {}  # fetch_id -> item_id

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def broadcast_report(self) -> None:
        """Flood this host's invalidation report (periodic timer hook)."""
        master = self.host.source_item
        if master is None or not self.host.online:
            return
        report = PushInvalidation(
            sender=self.node_id, item_id=master.item_id, version=master.version
        )
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(
                InvalidationSent(
                    time=self.now,
                    node=self.node_id,
                    item=master.item_id,
                    version=master.version,
                    ttl=self.push.ttl,
                    protocol="push",
                )
            )
        self.flood(report, self.push.ttl)

    # ------------------------------------------------------------------
    # Cache side
    # ------------------------------------------------------------------
    def validate_hit(
        self, copy: CachedCopy, level: ConsistencyLevel, job: QueryJob
    ) -> None:
        """Queue the query until the next report proves the copy's status."""
        pending = PendingQuery(job)
        self._waiting.setdefault(copy.item_id, []).append(pending)
        deadline = self.push.wait_factor * self.push.ttn
        pending.timeout_handle = self.context.sim.schedule(
            deadline, self._give_up, copy.item_id, pending
        )

    def _give_up(self, item_id: int, pending: PendingQuery) -> None:
        waiters = self._waiting.get(item_id)
        if not waiters or pending not in waiters:
            return
        waiters.remove(pending)
        copy = self.host.store.peek(item_id)
        if copy is None:
            self.context.metrics.bump("push_giveup_no_copy")
            return
        self.context.metrics.bump("push_fallback_stale")
        self.answer(pending.job, copy.version, fallback=True)

    def handle_protocol_message(self, message: Message) -> None:
        if isinstance(message, PushInvalidation):
            self._handle_report(message)
        elif isinstance(message, FetchRequest):
            self._handle_fetch_request(message)
        elif isinstance(message, FetchReply):
            self._handle_fetch_reply(message)
        else:
            raise ProtocolError(
                f"push agent cannot handle {message.type_name} messages"
            )

    def _handle_report(self, message: PushInvalidation) -> None:
        item_id = message.item_id
        copy = self.host.store.peek(item_id)
        if copy is None:
            return
        if copy.version >= message.version:
            # Copy confirmed current: drain every waiting query.
            for pending in self._waiting.pop(item_id, []):
                pending.cancel_timeout()
                self.answer(pending.job, copy.version)
            return
        # Copy is stale.  Refresh the content from the source when queries
        # are waiting on it; all waiters drain when the new copy lands.
        if self._waiting.get(item_id) and item_id not in self._refreshing:
            self._start_refresh(item_id)

    # ------------------------------------------------------------------
    # Content refresh (source -> holder)
    # ------------------------------------------------------------------
    def _start_refresh(self, item_id: int) -> None:
        fetch_id = next_fetch_id()
        source = self.context.catalog.source_of(item_id)
        request = FetchRequest(sender=self.node_id, item_id=item_id, fetch_id=fetch_id)
        if self.send(source, request):
            trace = self.context.sim.trace
            if trace.enabled:
                trace.emit(
                    FetchStarted(
                        time=self.now,
                        node=self.node_id,
                        item=item_id,
                        target=source,
                        kind="push-refresh",
                    )
                )
            self._refreshing.add(item_id)
            self._refresh_ids[fetch_id] = item_id
            # If the reply never comes, the next report retries the refresh.
            self.context.sim.schedule(
                self.push.ttn, self._refresh_timeout, fetch_id
            )
        # When the source is unreachable the waiters simply keep waiting;
        # their give-up timers bound the damage.

    def _refresh_timeout(self, fetch_id: int) -> None:
        item_id = self._refresh_ids.pop(fetch_id, None)
        if item_id is not None:
            self._refreshing.discard(item_id)

    def _handle_fetch_request(self, message: FetchRequest) -> None:
        master = self.host.source_item
        if master is None or master.item_id != message.item_id:
            return
        reply = FetchReply(
            sender=self.node_id,
            item_id=master.item_id,
            version=master.version,
            fetch_id=message.fetch_id,
            content_size=master.content_size,
        )
        self.send(message.sender, reply)

    def _handle_fetch_reply(self, message: FetchReply) -> None:
        item_id = self._refresh_ids.pop(message.fetch_id, None)
        if item_id is None:
            return
        self._refreshing.discard(item_id)
        copy = self.host.store.peek(item_id)
        if copy is None:
            return
        if message.version > copy.version:
            copy.refresh(message.version, self.now)
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(
                FetchCompleted(
                    time=self.now,
                    node=self.node_id,
                    item=item_id,
                    version=copy.version,
                    kind="push-refresh",
                )
            )
        for pending in self._waiting.pop(item_id, []):
            pending.cancel_timeout()
            self.answer(pending.job, copy.version)

    def waiting_count(self, item_id: int) -> int:
        """Queries currently waiting for a report on ``item_id`` (tests)."""
        return len(self._waiting.get(item_id, ()))
