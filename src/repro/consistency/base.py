"""Strategy/agent framework shared by push, pull and RPCC.

A *strategy* owns run-global state and builds one *agent* per mobile host;
the agent handles that host's queries and protocol messages.

Query model (Section 3 of the paper): the system "has an independent
mechanism ... for locating the nearest cache node to access the data
copy", so a query never dead-ends.  Concretely:

* if the querying host holds the item (or sources it), its own agent runs
  the consistency check — a *local* query;
* otherwise the query is forwarded as a ``QueryRequest`` to the nearest
  holder, whose agent runs the consistency check on *its* copy and sends
  back a ``QueryReply`` with the validated content — a *remote* query.
  The client installs the returned copy (cooperative caching) and closes
  the latency record.

The consistency check itself is the strategy hook
:meth:`BaseAgent.validate_hit`; it receives a :class:`QueryJob` that knows
how to deliver the answer (close the local record, or reply over the
network), so strategies are agnostic to where the query came from.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Set

from repro.cache.catalog import Catalog
from repro.cache.discovery import Discovery
from repro.cache.item import CachedCopy, MasterCopy
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.messages import (
    QueryReply,
    QueryRequest,
    next_request_id,
)
from repro.errors import ProtocolError
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import QueryRecord
from repro.net.message import Message
from repro.net.network import Network
from repro.obs.events import (
    CacheHit,
    CacheMiss,
    QueryIssued,
    ReadServed,
    SourceUpdate,
)
from repro.peers.host import MobileHost
from repro.sim.engine import EventHandle, StartupBatch
from repro.sim.rng import derive_seed

__all__ = [
    "StrategyContext",
    "ConsistencyStrategy",
    "BaseAgent",
    "QueryJob",
    "LocalJob",
    "RemoteJob",
    "PendingQuery",
    "RetryBackoff",
]


class RetryBackoff:
    """Capped exponential backoff with deterministic, seeded jitter.

    ``delay(base, attempt, key)`` grows the base wait by ``factor`` per
    attempt up to ``cap``, then perturbs it by up to ``±jitter`` — the
    perturbation is a pure hash of ``(seed, key, attempt)``, not a draw
    from a shared RNG stream, so a retry's wait never depends on how
    many *other* retries happened first.  That keeps fault-injected runs
    replayable and, because the jitter keys on stable protocol identity
    (node/item) rather than process-global request counters, keeps
    latency distributions comparable across trace replays.

    Parameters
    ----------
    factor:
        Multiplicative growth per attempt (``>= 1``).
    cap:
        Upper bound on the un-jittered wait, in seconds.
    jitter:
        Half-width of the relative perturbation, in ``[0, 1)``; 0.1
        means the final wait lands in ``[0.9x, 1.1x]``.
    seed:
        Run seed the jitter hash is derived from.
    """

    __slots__ = ("factor", "cap", "jitter", "seed")

    _JITTER_BITS = 24  # hash-fraction resolution; plenty for a ±10% wobble

    def __init__(
        self,
        factor: float = 2.0,
        cap: float = 60.0,
        jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        if factor < 1.0:
            raise ProtocolError(f"backoff factor must be >= 1, got {factor!r}")
        if cap <= 0:
            raise ProtocolError(f"backoff cap must be positive, got {cap!r}")
        if not 0.0 <= jitter < 1.0:
            raise ProtocolError(f"backoff jitter must be in [0, 1), got {jitter!r}")
        self.factor = float(factor)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def delay(self, base: float, attempt: int, key: str) -> float:
        """Wait before retry number ``attempt`` (1 = the first try)."""
        try:
            raw = min(self.cap, base * self.factor ** max(0, attempt - 1))
        except OverflowError:
            # factor ** attempt left float range: the cap won long ago.
            raw = self.cap if base > 0 else 0.0
        if self.jitter > 0:
            bucket = derive_seed(self.seed, f"backoff/{key}/{attempt}")
            unit = (bucket % (1 << self._JITTER_BITS)) / float(1 << self._JITTER_BITS)
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return raw


class StrategyContext:
    """Shared plumbing handed to a strategy: network, catalog, metrics.

    Parameters
    ----------
    network:
        The simulated network (provides the clock via ``network.sim``).
    catalog:
        Global registry of master copies.
    discovery:
        Nearest-copy oracle.
    metrics:
        Run metrics sink.
    delta:
        The Δ bound (seconds) used when auditing delta-consistency reads.
    fetch_timeout:
        Default seconds to wait for a remote answer before retrying
        elsewhere (strategies whose holders wait longer override
        :meth:`ConsistencyStrategy.remote_query_timeout`).
    max_fetch_attempts:
        Distinct holders tried before a remote query is abandoned.
    cache_on_read:
        When ``True`` a client installs the copy returned by a remote
        query into its own cache.  Default ``False``: the paper assumes an
        *independent* replica-placement mechanism, and read-driven churn
        would constantly evict items out from under their relay roles.
    backoff:
        Optional :class:`RetryBackoff` applied to remote-query retry
        waits.  ``None`` (the default) keeps the historical fixed wait —
        and with it, bit-identical fault-free behaviour.
    """

    def __init__(
        self,
        network: Network,
        catalog: Catalog,
        discovery: Discovery,
        metrics: MetricsCollector,
        delta: float = 240.0,
        fetch_timeout: float = 5.0,
        max_fetch_attempts: int = 3,
        cache_on_read: bool = False,
        backoff: Optional[RetryBackoff] = None,
    ) -> None:
        self.network = network
        self.catalog = catalog
        self.discovery = discovery
        self.metrics = metrics
        self.delta = float(delta)
        self.fetch_timeout = float(fetch_timeout)
        self.max_fetch_attempts = int(max_fetch_attempts)
        self.cache_on_read = bool(cache_on_read)
        self.backoff = backoff

    @property
    def sim(self):
        """The event kernel behind the network."""
        return self.network.sim

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.network.sim.now


# ----------------------------------------------------------------------
# Query jobs: how an answer gets delivered
# ----------------------------------------------------------------------
class QueryJob(abc.ABC):
    """A query under consistency validation at some agent."""

    # Empty slots here keep the concrete jobs (which declare their own
    # ``__slots__``) free of a per-instance ``__dict__``.
    __slots__ = ()

    item_id: int
    level: ConsistencyLevel

    @abc.abstractmethod
    def deliver(
        self,
        agent: "BaseAgent",
        version: int,
        served_locally: bool,
        fallback: bool = False,
        remote: bool = False,
    ) -> None:
        """Hand the validated answer back to whoever asked."""


class LocalJob(QueryJob):
    """A query issued at this very host: closing it updates the metrics."""

    __slots__ = ("record", "item_id", "level")

    def __init__(self, record: QueryRecord, level: ConsistencyLevel) -> None:
        self.record = record
        self.item_id = record.item_id
        self.level = level

    def deliver(
        self,
        agent: "BaseAgent",
        version: int,
        served_locally: bool,
        fallback: bool = False,
        remote: bool = False,
    ) -> None:
        metrics = agent.context.metrics
        metrics.latency.close(self.record.query_id, agent.now, version, served_locally)
        audit = metrics.staleness.record_read(
            self.item_id, version, agent.now, self.level.label, agent.context.delta
        )
        if metrics.degradation is not None:
            metrics.degradation.on_read(agent.now, audit.staleness_age > 0)
        trace = agent.context.sim.trace
        if trace.enabled:
            trace.emit(
                ReadServed(
                    time=agent.now,
                    node=agent.node_id,
                    item=self.item_id,
                    version=version,
                    level=self.level.label,
                    query_id=self.record.query_id,
                    served_locally=served_locally,
                    remote=remote,
                    fallback=fallback,
                    cache_hit=self.record.cache_hit,
                    latency=agent.now - self.record.issued_at,
                    staleness_age=audit.staleness_age,
                )
            )


class RemoteJob(QueryJob):
    """A query forwarded from another host: answering sends a reply."""

    __slots__ = ("requester", "request_id", "item_id", "level")

    def __init__(
        self, requester: int, request_id: int, item_id: int, level: ConsistencyLevel
    ) -> None:
        self.requester = requester
        self.request_id = request_id
        self.item_id = item_id
        self.level = level

    def deliver(
        self,
        agent: "BaseAgent",
        version: int,
        served_locally: bool,
        fallback: bool = False,
        remote: bool = False,
    ) -> None:
        master = agent.context.catalog.master(self.item_id)
        reply = QueryReply(
            sender=agent.node_id,
            item_id=self.item_id,
            version=version,
            request_id=self.request_id,
            content_size=master.content_size,
            fallback=fallback,
        )
        agent.send(self.requester, reply)


class PendingQuery:
    """A query whose answer is in flight (poll, remote request, or wait)."""

    __slots__ = ("job", "timeout_handle", "tried_holders", "attempts", "stage")

    def __init__(self, job: QueryJob) -> None:
        self.job = job
        self.timeout_handle: Optional[EventHandle] = None
        self.tried_holders: Set[int] = set()
        self.attempts = 0
        self.stage: Optional[str] = None

    @property
    def item_id(self) -> int:
        """Item the pending query targets."""
        return self.job.item_id

    @property
    def level(self) -> ConsistencyLevel:
        """Requested consistency level."""
        return self.job.level

    def cancel_timeout(self) -> None:
        """Disarm any pending timeout event."""
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
            self.timeout_handle = None


class ConsistencyStrategy(abc.ABC):
    """Run-global strategy object: builds agents, starts global timers."""

    name: str = "abstract"

    def __init__(self, context: StrategyContext) -> None:
        self.context = context
        self.agents: Dict[int, "BaseAgent"] = {}

    @abc.abstractmethod
    def make_agent(self, host: MobileHost) -> "BaseAgent":
        """Create and register the per-host agent."""

    def start(self, batch: Optional[StartupBatch] = None) -> None:
        """Start run-global timers; called once before the run.

        ``batch`` (when given) collects the initial timer filings for
        one vectorized :meth:`~repro.sim.engine.Simulator.schedule_batch`
        pass; subclasses must pass it through to every ``start`` they
        delegate to.
        """

    # ------------------------------------------------------------------
    # Online-control actuation seam (see repro.control)
    # ------------------------------------------------------------------
    def control_knobs(self) -> Dict[str, float]:
        """Tunable parameters this strategy exposes to the online controller.

        The mapping is the control policy's *baseline*: knob name mapped
        to the value the strategy currently runs with.  Subclasses extend
        it with the knobs they own (``ttn``, ``ttr``, ``ttp``,
        ``poll_timeout``, ``relay_boost``); the base contributes
        ``backoff_factor`` when a retry backoff is wired.
        """
        knobs: Dict[str, float] = {}
        if self.context.backoff is not None:
            knobs["backoff_factor"] = self.context.backoff.factor
        return knobs

    def apply_control(self, decision) -> Dict[str, float]:
        """Apply a :class:`~repro.control.policies.ControlDecision`.

        This is the only sanctioned run-time mutation point for protocol
        parameters: strategies change the values their *future* timers,
        windows and polls read — in-flight state (armed timeouts, open
        TTR/TTP windows, queued polls) is never touched, so every
        already-made freshness promise stays exactly as made.  Returns
        the knobs actually changed (name mapped to the new value); knob
        names a strategy does not own are ignored, so one decision can
        span strategies.
        """
        applied: Dict[str, float] = {}
        backoff = self.context.backoff
        if backoff is not None:
            factor = decision.knobs.get("backoff_factor")
            if factor is not None:
                factor = float(factor)
                if factor >= 1.0 and factor != backoff.factor:
                    backoff.factor = factor
                    applied["backoff_factor"] = factor
        return applied

    def remote_query_timeout(self) -> float:
        """How long a client waits for a holder's reply before retrying.

        Must exceed the worst-case holder-side validation wait; strategies
        whose holders block (push waits for the next invalidation report)
        override this.
        """
        return self.context.fetch_timeout

    def agent_for(self, node_id: int) -> "BaseAgent":
        """Look up the agent attached to host ``node_id``."""
        try:
            return self.agents[node_id]
        except KeyError:
            raise ProtocolError(f"no agent registered for node {node_id!r}") from None


class BaseAgent(abc.ABC):
    """Per-host protocol endpoint with the shared query machinery."""

    def __init__(self, strategy: ConsistencyStrategy, host: MobileHost) -> None:
        self.strategy = strategy
        self.context = strategy.context
        self.host = host
        self._pending_remote: Dict[int, PendingQuery] = {}
        strategy.agents[host.node_id] = self

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """This agent's host id."""
        return self.host.node_id

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.context.now

    def send(self, target: int, message: Message) -> bool:
        """Unicast ``message`` to ``target``; returns route availability."""
        return self.context.network.unicast(self.node_id, target, message)

    def flood(self, message: Message, ttl: int) -> int:
        """TTL-limited flood of ``message``; returns nodes reached."""
        return self.context.network.flood(self.node_id, message, ttl)

    # ------------------------------------------------------------------
    # Query entry point
    # ------------------------------------------------------------------
    def local_query(self, item_id: int, level: ConsistencyLevel) -> QueryRecord:
        """Serve a query issued at this host for ``item_id``."""
        metrics = self.context.metrics
        record = metrics.latency.open(self.node_id, item_id, level.label, self.now)
        # Every local query accesses this node's cache (hit or miss), so it
        # counts towards N_a of eq 4.2.1.
        self.host.tracker.record_access()
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(
                QueryIssued(
                    time=self.now,
                    node=self.node_id,
                    item=item_id,
                    level=level.label,
                    query_id=record.query_id,
                )
            )
        job = LocalJob(record, level)
        if not self.host.online:
            self._answer_offline(job)
            return record
        master = self.context.catalog.master(item_id)
        if master.source_id == self.node_id:
            # Source hosts always hold the newest version (Section 3).
            if trace.enabled:
                trace.emit(
                    CacheHit(
                        time=self.now,
                        node=self.node_id,
                        item=item_id,
                        version=master.version,
                    )
                )
            self.answer(job, master.version, served_locally=True)
            return record
        copy = self.host.store.get(item_id, self.now)
        if copy is not None:
            record.cache_hit = True
            if trace.enabled:
                trace.emit(
                    CacheHit(
                        time=self.now,
                        node=self.node_id,
                        item=item_id,
                        version=copy.version,
                    )
                )
            self.validate_hit(copy, level, job)
        else:
            # Discovery sends the query to the nearest holder.
            if trace.enabled:
                trace.emit(CacheMiss(time=self.now, node=self.node_id, item=item_id))
            self._start_remote_query(PendingQuery(job))
        return record

    def _answer_offline(self, job: LocalJob) -> None:
        master = self.context.catalog.master(job.item_id)
        if master.source_id == self.node_id:
            self.answer(job, master.version, served_locally=True)
            return
        copy = self.host.store.peek(job.item_id)
        if copy is None:
            self.context.metrics.bump("query_offline_unanswerable")
            return
        self.context.metrics.bump("query_answered_offline")
        job.record.cache_hit = True
        # An offline host cannot validate; this serve is a fallback.
        self.answer(job, copy.version, served_locally=True, fallback=True)

    @abc.abstractmethod
    def validate_hit(
        self, copy: CachedCopy, level: ConsistencyLevel, job: QueryJob
    ) -> None:
        """Strategy-specific consistency check for a held copy."""

    def answer(
        self,
        job: QueryJob,
        version: int,
        served_locally: bool = False,
        fallback: bool = False,
        remote: bool = False,
    ) -> None:
        """Deliver the answer through the job.

        ``fallback`` marks answers served without the level's validation
        completing; ``remote`` marks answers that came back from another
        holder's copy.  Both flow into the ``read_served`` trace event.
        """
        job.deliver(self, version, served_locally, fallback, remote)

    # ------------------------------------------------------------------
    # Remote queries (client side)
    # ------------------------------------------------------------------
    def _start_remote_query(self, pending: PendingQuery) -> None:
        pending.attempts += 1
        if pending.attempts > self.context.max_fetch_attempts:
            self.context.metrics.bump("query_abandoned")
            return
        snapshot = self.context.network.snapshot()
        target = self.context.discovery.nearest_holder(
            snapshot, self.node_id, pending.item_id, exclude=pending.tried_holders
        )
        if target is None or target == self.node_id:
            self.context.metrics.bump("query_no_holder")
            return
        pending.tried_holders.add(target)
        request_id = next_request_id()
        self._pending_remote[request_id] = pending
        request = QueryRequest(
            sender=self.node_id,
            item_id=pending.item_id,
            request_id=request_id,
            level_label=pending.level.label,
        )
        sent = self.send(target, request)
        timeout = self.strategy.remote_query_timeout()
        if not sent:
            # No route right now: try another holder after a short pause.
            timeout = min(1.0, timeout)
        backoff = self.context.backoff
        if backoff is not None:
            # Applied after the no-route shortening so that repeated
            # route failures (a partition, say) back off exponentially
            # instead of hammering the dead route once a second.
            timeout = backoff.delay(
                timeout, pending.attempts, f"{self.node_id}/{pending.item_id}"
            )
        pending.timeout_handle = self.context.sim.schedule(
            timeout, self._remote_query_timeout, request_id
        )

    def _remote_query_timeout(self, request_id: int) -> None:
        pending = self._pending_remote.pop(request_id, None)
        if pending is None:
            return
        self.context.metrics.bump("query_retry")
        self._start_remote_query(pending)

    def _handle_query_request(self, message: QueryRequest) -> None:
        """Holder side: validate our copy and reply through a RemoteJob."""
        level = ConsistencyLevel(
            {"strong": ConsistencyLevel.STRONG, "delta": ConsistencyLevel.DELTA}.get(
                message.level_label, ConsistencyLevel.WEAK
            )
        )
        job = RemoteJob(message.sender, message.request_id, message.item_id, level)
        self.host.tracker.record_access()
        master = self.host.source_item
        if master is not None and master.item_id == message.item_id:
            self.answer(job, master.version)
            return
        copy = self.host.store.get(message.item_id, self.now)
        if copy is None:
            # Evicted since discovery looked: stay silent, the client's
            # timeout will try the next holder.
            self.context.metrics.bump("remote_query_no_copy")
            return
        self.validate_hit(copy, level, job)

    def _handle_query_reply(self, message: QueryReply) -> None:
        """Client side: close the record and cache the returned copy."""
        pending = self._pending_remote.pop(message.request_id, None)
        if pending is None:
            return  # late duplicate (a retry already succeeded)
        pending.cancel_timeout()
        if self.context.cache_on_read:
            copy = CachedCopy(
                message.item_id, message.version, message.content_size, self.now
            )
            evicted = self.host.store.put(copy)
            if evicted is not None:
                self.on_copy_evicted(evicted)
            self.on_copy_installed(copy)
        self.answer(
            pending.job, message.version, fallback=message.fallback, remote=True
        )

    def on_copy_installed(self, copy: CachedCopy) -> None:
        """Hook: a fresh copy just entered the local store."""

    def on_copy_evicted(self, item_id: int) -> None:
        """Hook: replacement evicted ``item_id`` from the local store."""

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        """Route an incoming network message."""
        if isinstance(message, QueryRequest):
            self._handle_query_request(message)
        elif isinstance(message, QueryReply):
            self._handle_query_reply(message)
        else:
            self.handle_protocol_message(message)

    @abc.abstractmethod
    def handle_protocol_message(self, message: Message) -> None:
        """Strategy-specific message handling."""

    # ------------------------------------------------------------------
    # Host lifecycle hooks (default no-ops)
    # ------------------------------------------------------------------
    def on_reconnect(self) -> None:
        """The host just came back online."""

    def on_disconnect(self) -> None:
        """The host just went offline."""

    def on_local_update(self, master: MasterCopy) -> None:
        """This host just updated its master copy."""
        self.context.metrics.staleness.record_update(
            master.item_id, master.version, self.now
        )
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(
                SourceUpdate(
                    time=self.now,
                    node=self.node_id,
                    item=master.item_id,
                    version=master.version,
                )
            )

    def on_period_closed(self) -> None:
        """A coefficient period just rolled over."""
