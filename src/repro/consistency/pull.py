"""Simple pull-based invalidation (the paper's second baseline).

Every query at a cache node triggers an on-demand poll of the item's
source host.  Lacking a routing substrate, the poll is *flooded* with
``TTL_BR`` = 8 hops (Table 1 lists that TTL for both simple strategies);
the source answers with a unicast reply that carries fresh content when
the poller's copy was stale.

This gives the short latency and the heavy per-query traffic the paper
reports for pure pull.  When the source is unreachable the poller retries
and finally serves its local copy stale (counted separately).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.item import CachedCopy
from repro.consistency.base import (
    BaseAgent,
    ConsistencyStrategy,
    PendingQuery,
    QueryJob,
    StrategyContext,
)
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.messages import PullPoll, PullReply, next_poll_id
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.obs.events import PollAnswered, PollSent
from repro.peers.host import MobileHost

__all__ = ["PullStrategy", "PullAgent"]


class PullStrategy(ConsistencyStrategy):
    """Run-global configuration for simple pull.

    Parameters
    ----------
    context:
        Shared strategy plumbing.
    ttl:
        Flood scope of each poll in hops (Table 1: ``TTL_BR`` = 8).
    poll_timeout:
        Seconds a poller waits for the source's reply before retrying.
    max_poll_attempts:
        Poll attempts before the query is served stale from the local copy.
    """

    name = "pull"

    def __init__(
        self,
        context: StrategyContext,
        ttl: int = 8,
        poll_timeout: float = 4.0,
        max_poll_attempts: int = 2,
    ) -> None:
        super().__init__(context)
        if ttl < 1:
            raise ProtocolError(f"ttl must be >= 1, got {ttl!r}")
        if poll_timeout <= 0:
            raise ProtocolError(f"poll_timeout must be positive, got {poll_timeout!r}")
        if max_poll_attempts < 1:
            raise ProtocolError(
                f"max_poll_attempts must be >= 1, got {max_poll_attempts!r}"
            )
        self.ttl = int(ttl)
        self.poll_timeout = float(poll_timeout)
        self.max_poll_attempts = int(max_poll_attempts)

    def remote_query_timeout(self) -> float:
        """Clients must outwait the holder's full poll-and-retry cycle."""
        return self.max_poll_attempts * self.poll_timeout + 5.0

    def control_knobs(self) -> Dict[str, float]:
        knobs = super().control_knobs()
        knobs["poll_timeout"] = self.poll_timeout
        return knobs

    def apply_control(self, decision) -> Dict[str, float]:
        applied = super().apply_control(decision)
        timeout = decision.knobs.get("poll_timeout")
        if timeout is not None:
            timeout = float(timeout)
            if timeout > 0 and timeout != self.poll_timeout:
                # Armed poll timeouts fire as scheduled; only polls sent
                # after this point wait the new duration.
                self.poll_timeout = timeout
                applied["poll_timeout"] = timeout
        return applied

    def make_agent(self, host: MobileHost) -> "PullAgent":
        return PullAgent(self, host)


class PullAgent(BaseAgent):
    """Per-host endpoint of the simple pull strategy."""

    def __init__(self, strategy: PullStrategy, host: MobileHost) -> None:
        super().__init__(strategy, host)
        self.pull: PullStrategy = strategy
        self._pending_polls: Dict[int, PendingQuery] = {}

    # ------------------------------------------------------------------
    # Cache side
    # ------------------------------------------------------------------
    def validate_hit(
        self, copy: CachedCopy, level: ConsistencyLevel, job: QueryJob
    ) -> None:
        """Every held copy is validated by polling the source."""
        self._send_poll(PendingQuery(job), copy)

    def _send_poll(self, pending: PendingQuery, copy: CachedCopy) -> None:
        pending.attempts += 1
        if pending.attempts > self.pull.max_poll_attempts:
            self.context.metrics.bump("pull_fallback_stale")
            self.answer(pending.job, copy.version, fallback=True)
            return
        poll_id = next_poll_id()
        self._pending_polls[poll_id] = pending
        poll = PullPoll(
            sender=self.node_id,
            item_id=copy.item_id,
            version=copy.version,
            poll_id=poll_id,
        )
        self.flood(poll, self.pull.ttl)
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(
                PollSent(
                    time=self.now,
                    node=self.node_id,
                    item=copy.item_id,
                    poll_id=poll_id,
                    stage="source",
                    ttl=self.pull.ttl,
                )
            )
        pending.timeout_handle = self.context.sim.schedule(
            self.pull.poll_timeout, self._poll_timeout, poll_id
        )

    def _poll_timeout(self, poll_id: int) -> None:
        pending = self._pending_polls.pop(poll_id, None)
        if pending is None:
            return
        copy = self.host.store.peek(pending.item_id)
        if copy is None:
            self.context.metrics.bump("pull_copy_lost")
            return
        if pending.attempts < self.pull.max_poll_attempts:
            self.context.metrics.bump("pull_retry")
        self._send_poll(pending, copy)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle_protocol_message(self, message: Message) -> None:
        if isinstance(message, PullPoll):
            self._handle_poll(message)
        elif isinstance(message, PullReply):
            self._handle_reply(message)
        else:
            raise ProtocolError(
                f"pull agent cannot handle {message.type_name} messages"
            )

    def _handle_poll(self, message: PullPoll) -> None:
        master = self.host.source_item
        if master is None or master.item_id != message.item_id:
            return  # the flood reached a non-source node; ignore
        self.host.tracker.record_access()
        up_to_date = message.version >= master.version
        reply = PullReply(
            sender=self.node_id,
            item_id=master.item_id,
            version=master.version,
            poll_id=message.poll_id,
            up_to_date=up_to_date,
            content_size=master.content_size,
        )
        self.send(message.sender, reply)

    def _handle_reply(self, message: PullReply) -> None:
        pending = self._pending_polls.pop(message.poll_id, None)
        if pending is None:
            return  # duplicate or post-timeout reply
        pending.cancel_timeout()
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(
                PollAnswered(
                    time=self.now,
                    node=self.node_id,
                    item=message.item_id,
                    poll_id=message.poll_id,
                    version=message.version,
                    fresh=message.up_to_date,
                )
            )
        copy = self.host.store.peek(message.item_id)
        if message.up_to_date:
            version = copy.version if copy is not None else message.version
            self.answer(pending.job, version)
            return
        if copy is not None:
            copy.refresh(message.version, self.now)
        self.answer(pending.job, message.version)
