"""Consistency protocols: levels, message set, push/pull baselines, RPCC."""

from repro.consistency.base import (
    BaseAgent,
    ConsistencyStrategy,
    PendingQuery,
    StrategyContext,
)
from repro.consistency.levels import ConsistencyLevel, parse_level
from repro.consistency.pull import PullAgent, PullStrategy
from repro.consistency.push import PushAgent, PushStrategy
from repro.consistency.rpcc import RPCCAgent, RPCCConfig, RPCCStrategy

__all__ = [
    "ConsistencyLevel",
    "parse_level",
    "StrategyContext",
    "ConsistencyStrategy",
    "BaseAgent",
    "PendingQuery",
    "PushStrategy",
    "PushAgent",
    "PullStrategy",
    "PullAgent",
    "RPCCStrategy",
    "RPCCAgent",
    "RPCCConfig",
]
