"""RPCC: Relay Peer-based Cache Consistency (the paper's contribution).

:class:`RPCCStrategy` builds one :class:`RPCCAgent` per host; each agent
composes the three protocol sides of Fig 6 —
:class:`~repro.consistency.rpcc.source.SourceSide` (6b),
:class:`~repro.consistency.rpcc.relay.RelaySide` (6c) and
:class:`~repro.consistency.rpcc.cache_peer.CachePeerSide` (6d) — plus the
Fig 5 role state machine that governs promotion and demotion.

Promotion flow: a node hears ``INVALIDATION`` for an item it caches; if
its coefficients pass eq 4.2.8 it sends ``APPLY`` and becomes a candidate;
``APPLY_ACK`` (or an ``UPDATE`` that implies the ack was lost) promotes it
to relay.  Demotion happens when coefficients fail at a period boundary
(``CANCEL``) or when the cached item is evicted.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, Optional

from repro.cache.item import CachedCopy, MasterCopy
from repro.consistency.base import (
    BaseAgent,
    ConsistencyStrategy,
    QueryJob,
    StrategyContext,
)
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.messages import (
    Apply,
    ApplyAck,
    Cancel,
    GetNew,
    Invalidation,
    Poll,
    PollAckA,
    PollAckB,
    PollHold,
    SendNew,
    Update,
)
from repro.consistency.rpcc.cache_peer import CachePeerSide
from repro.consistency.rpcc.config import RPCCConfig
from repro.consistency.rpcc.relay import RelaySide
from repro.consistency.rpcc.roles import Role, RoleTable
from repro.consistency.rpcc.source import SourceSide
from repro.net.message import Message
from repro.obs.events import RelayDemoted, RelayPromoted
from repro.peers.host import MobileHost

__all__ = ["RPCCStrategy", "RPCCAgent"]


class RPCCStrategy(ConsistencyStrategy):
    """Run-global RPCC state: configuration and fleet-wide introspection."""

    name = "rpcc"

    def __init__(self, context: StrategyContext, config: Optional[RPCCConfig] = None) -> None:
        super().__init__(context)
        self.config = config if config is not None else RPCCConfig()
        # Online-control state: per-item dissemination overrides (empty
        # means the stock hybrid behaviour everywhere) and the eligibility
        # boost applied on top of the configured selection thresholds.
        self._modes: Dict[int, str] = {}
        self._base_thresholds = self.config.thresholds
        self._relay_boost = 1.0

    def make_agent(self, host: MobileHost) -> "RPCCAgent":
        return RPCCAgent(self, host)

    def remote_query_timeout(self) -> float:
        """Clients must outwait the holder's full poll-escalation ladder."""
        config = self.config
        pipeline = (
            2 * config.poll_timeout
            + config.max_source_poll_attempts * config.source_poll_timeout
            + (config.grace_timeout or 0.0)
        )
        return pipeline + 5.0

    def start(self, batch=None) -> None:
        """Arm every source host's TTN timer."""
        for agent in self.agents.values():
            assert isinstance(agent, RPCCAgent)
            agent.source.start(batch)

    # ------------------------------------------------------------------
    # Online-control actuation seam (see repro.control)
    # ------------------------------------------------------------------
    def dissemination_mode(self, item_id: int) -> str:
        """Controller-selected dissemination mode for ``item_id``.

        ``"hybrid"`` (the default, and the only value when no controller
        runs) is the stock RPCC behaviour: updates batched until the next
        TTN report, invalidations flooded.  ``"push"`` additionally
        unicasts UPDATE to the relay set the moment the source commits a
        write; ``"pull"`` suppresses the batched content push (relays
        re-sync via GET_NEW after the invalidation) for update-heavy
        items where pushed content would mostly be dead on arrival.
        """
        return self._modes.get(item_id, "hybrid")

    def control_knobs(self) -> Dict[str, float]:
        knobs = super().control_knobs()
        config = self.config
        knobs["ttr"] = config.ttr
        knobs["ttp"] = config.ttp
        knobs["poll_timeout"] = config.poll_timeout
        knobs["relay_boost"] = self._relay_boost
        return knobs

    def apply_control(self, decision) -> Dict[str, float]:
        applied = super().apply_control(decision)
        config = self.config
        for knob in ("ttr", "ttp", "poll_timeout"):
            value = decision.knobs.get(knob)
            if value is None:
                continue
            value = float(value)
            if value <= 0 or value == getattr(config, knob):
                continue
            # Open windows and armed ladders keep the duration they were
            # granted; only windows opened from now on use the new value.
            setattr(config, knob, value)
            applied[knob] = value
        if "ttp" in applied:
            # Δ is knowledge-relative: reads validated under the old TTP
            # are audited against the bound in force when the knowledge
            # was acquired (the checker keeps the actuation timeline),
            # while fresh audits follow the new bound.
            self.context.delta = config.ttp
        boost = decision.knobs.get("relay_boost")
        if boost is not None:
            boost = float(boost)
            if boost > 0 and boost != self._relay_boost:
                self._relay_boost = boost
                base = self._base_thresholds
                # Eq 4.2.8 gates on car < mu_car, cs > mu_cs, ce > mu_ce:
                # boost > 1 widens all three gates so more peers qualify.
                config.thresholds = dataclass_replace(
                    base,
                    mu_car=min(1.0, base.mu_car * boost),
                    mu_cs=max(1e-9, base.mu_cs / boost),
                    mu_ce=max(1e-9, base.mu_ce / boost),
                )
                applied["relay_boost"] = boost
        if decision.modes:
            changed = 0
            for item_id, mode in decision.modes.items():
                if mode not in ("push", "pull", "hybrid"):
                    continue
                current = self._modes.get(item_id, "hybrid")
                if mode == current:
                    continue
                if mode == "hybrid":
                    self._modes.pop(item_id, None)
                else:
                    self._modes[item_id] = mode
                changed += 1
            if changed:
                applied["_modes"] = changed
        return applied

    # ------------------------------------------------------------------
    # Fleet-wide introspection (drives Fig 9 and the relay-count metric)
    # ------------------------------------------------------------------
    def relay_count(self) -> int:
        """Total (node, item) relay relationships currently active."""
        return sum(
            agent.roles.relay_count
            for agent in self.agents.values()
            if isinstance(agent, RPCCAgent)
        )

    def relay_count_for(self, item_id: int) -> int:
        """Number of hosts currently relaying ``item_id``."""
        return sum(
            1
            for agent in self.agents.values()
            if isinstance(agent, RPCCAgent) and agent.roles.is_relay(item_id)
        )


class RPCCAgent(BaseAgent):
    """Per-host RPCC endpoint composing the Fig 6 sides."""

    def __init__(self, strategy: RPCCStrategy, host: MobileHost) -> None:
        super().__init__(strategy, host)
        self.config = strategy.config
        self.roles = RoleTable()
        self.source = SourceSide(self, self.config)
        self.relay = RelaySide(self, self.config)
        self.cache_peer = CachePeerSide(self, self.config)
        # Copies placed before the run starts count as freshly validated.
        for item_id in host.store.item_ids:
            self.cache_peer.renew_ttp(item_id)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def validate_hit(
        self, copy: CachedCopy, level: ConsistencyLevel, job: QueryJob
    ) -> None:
        if self.roles.is_relay(copy.item_id) and self.relay.ttr_remaining(copy.item_id) > 0:
            # A relay with an open TTR window is authoritative enough for
            # any level: its copy tracks the source within the push period.
            self.answer(job, copy.version, served_locally=True)
            return
        self.cache_peer.on_query(copy, level, job)

    def on_copy_installed(self, copy: CachedCopy) -> None:
        """A fetched copy just landed: open its TTP window."""
        self.cache_peer.renew_ttp(copy.item_id)

    def on_copy_evicted(self, item_id: int) -> None:
        """Replacement pushed out an item: resign any role it carried."""
        if self.roles.role(item_id) is not Role.CACHE_NODE:
            self._resign(item_id, reason="evicted")
        self.cache_peer.forget(item_id)

    def _resign(self, item_id: int, reason: str = "resigned") -> None:
        was_relay = self.roles.is_relay(item_id)
        if was_relay:
            cancel = Cancel(sender=self.node_id, item_id=item_id)
            self.send(self.context.catalog.source_of(item_id), cancel)
        self.roles.demote(item_id)
        self.relay.forget(item_id)
        trace = self.context.sim.trace
        if was_relay and trace.enabled:
            trace.emit(
                RelayDemoted(
                    time=self.now, node=self.node_id, item=item_id, reason=reason
                )
            )

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_protocol_message(self, message: Message) -> None:
        if isinstance(message, Invalidation):
            self._handle_invalidation(message)
        elif isinstance(message, Update):
            self._handle_update(message)
        elif isinstance(message, SendNew):
            self.relay.on_send_new(message)
        elif isinstance(message, GetNew):
            self.source.handle_get_new(message)
        elif isinstance(message, Apply):
            self.source.handle_apply(message)
        elif isinstance(message, ApplyAck):
            self._handle_apply_ack(message)
        elif isinstance(message, Cancel):
            self.source.handle_cancel(message)
        elif isinstance(message, Poll):
            self._handle_poll(message)
        elif isinstance(message, PollAckA):
            self.cache_peer.on_poll_ack_a(message)
        elif isinstance(message, PollAckB):
            self.cache_peer.on_poll_ack_b(message)
        elif isinstance(message, PollHold):
            self.cache_peer.on_poll_hold(message)
        # Unknown floods are bystander noise: already accounted as traffic.

    def _handle_invalidation(self, message: Invalidation) -> None:
        item_id = message.item_id
        role = self.roles.role(item_id)
        if role is Role.RELAY:
            if item_id in self.host.store:
                self.relay.on_invalidation(message)
            else:
                self._resign(item_id)
            return
        if role is Role.CANDIDATE:
            return  # APPLY outstanding; retried at the next period if lost
        # Plain cache node: Section 4.2 — hearing the INVALIDATION proves we
        # are within TTL hops of the source, the precondition for candidacy.
        if item_id in self.host.store and self.host.tracker.eligible(
            self.config.thresholds
        ):
            self.roles.become_candidate(item_id)
            apply = Apply(sender=self.node_id, item_id=item_id)
            self.send(message.sender, apply)
            self.context.metrics.bump("rpcc_apply_sent")

    def _handle_update(self, message: Update) -> None:
        role = self.roles.role(message.item_id)
        if role is Role.RELAY:
            self.relay.on_update(message)
        elif role is Role.CANDIDATE:
            # Fig 6(d) lines 27-31: the APPLY_ACK was lost but the source
            # clearly added us — accept the promotion.
            self.roles.promote(message.item_id)
            self.context.metrics.bump("rpcc_promoted_via_update")
            trace = self.context.sim.trace
            if trace.enabled:
                trace.emit(
                    RelayPromoted(
                        time=self.now, node=self.node_id, item=message.item_id
                    )
                )
            self.relay.on_update(message)
        else:
            self.cache_peer.on_update_as_cache(message)

    def _handle_apply_ack(self, message: ApplyAck) -> None:
        item_id = message.item_id
        if item_id not in self.host.store:
            # Evicted while the ACK was in flight: resign immediately.
            cancel = Cancel(sender=self.node_id, item_id=item_id)
            self.send(message.sender, cancel)
            self.roles.demote(item_id)
            return
        self.roles.promote(item_id)
        self.context.metrics.bump("rpcc_promotions")
        trace = self.context.sim.trace
        if trace.enabled:
            trace.emit(RelayPromoted(time=self.now, node=self.node_id, item=item_id))

    def _handle_poll(self, message: Poll) -> None:
        master = self.host.source_item
        if master is not None and master.item_id == message.item_id:
            self.source.handle_poll(message)
            return
        if self.roles.is_relay(message.item_id):
            self.relay.on_poll(message)
        # Otherwise: flood bystander; traffic already accounted.

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_reconnect(self) -> None:
        """Robustness hardening: distrust TTR windows that span an outage."""
        if self.config.resync_on_reconnect:
            self.relay.resync_after_outage()

    def on_local_update(self, master: MasterCopy) -> None:
        super().on_local_update(master)
        self.source.on_local_update(master)

    def on_period_closed(self) -> None:
        """Fig 5 maintenance at every coefficient/switching period."""
        eligible = self.host.tracker.eligible(self.config.thresholds)
        for item_id in self.roles.tracked_items():
            if item_id not in self.host.store:
                self._resign(item_id, reason="evicted")
                continue
            role = self.roles.role(item_id)
            if not eligible:
                if role is Role.RELAY:
                    self.context.metrics.bump("rpcc_demotions")
                self._resign(item_id, reason="ineligible")
            elif role is Role.CANDIDATE and self.host.online:
                # New switching period: retry the (possibly lost) APPLY.
                apply = Apply(sender=self.node_id, item_id=item_id)
                self.send(self.context.catalog.source_of(item_id), apply)
                self.context.metrics.bump("rpcc_apply_retry")
