"""RPCC source-host side (Fig 6(b) of the paper).

Each host is the source of exactly one item.  At every TTN boundary the
source pushes ``UPDATE`` to the relay peers in its relay table (only when
the master copy changed during the period — Fig 6(b) lines 1-6) and then
floods ``INVALIDATION`` with the configured TTL.  It also serves
``GET_NEW``, negotiates promotions (``APPLY``/``APPLY_ACK``), processes
``CANCEL``, and answers direct fallback ``POLL`` messages from cache peers
that found no relay nearby.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.cache.item import MasterCopy
from repro.consistency.messages import (
    Apply,
    ApplyAck,
    Cancel,
    GetNew,
    Invalidation,
    Poll,
    PollAckA,
    PollAckB,
    SendNew,
    Update,
)
from repro.consistency.rpcc.config import RPCCConfig
from repro.obs.events import InvalidationSent
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.consistency.rpcc.protocol import RPCCAgent

__all__ = ["SourceSide"]

_GOLDEN = 0.6180339887498949


class SourceSide:
    """Source-host behaviour for the one item this host owns."""

    def __init__(self, agent: "RPCCAgent", config: RPCCConfig) -> None:
        self.agent = agent
        self.config = config
        self.relay_table: Set[int] = set()
        self._last_pushed_version = 0
        self._timer: Optional[PeriodicTimer] = None

    # ------------------------------------------------------------------
    # Timer
    # ------------------------------------------------------------------
    def start(self, batch=None) -> None:
        """Arm the TTN timer (staggered deterministically per host)."""
        if self.agent.host.source_item is None or self._timer is not None:
            return
        offset = self.config.ttn * ((self.agent.node_id * _GOLDEN) % 1.0)
        self._timer = PeriodicTimer(
            self.agent.context.sim,
            self.config.ttn,
            self._on_ttn,
            start_offset=offset if offset > 0 else self.config.ttn,
        )
        self._timer.start(batch)

    def stop(self) -> None:
        """Disarm the TTN timer."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _mode(self, item_id: int) -> str:
        """Controller-selected dissemination mode (``"hybrid"`` when none)."""
        strategy = self.agent.strategy
        mode = getattr(strategy, "dissemination_mode", None)
        return mode(item_id) if mode is not None else "hybrid"

    def _on_ttn(self) -> None:
        """Fig 6(b) lines 1-8: push batched UPDATE, then flood INVALIDATION."""
        master = self.agent.host.source_item
        if master is None or not self.agent.host.online:
            return
        if master.version > self._last_pushed_version:
            # In controller-selected "pull" mode the batched content push
            # is suppressed (relays re-sync via GET_NEW); the
            # INVALIDATION flood below is NEVER suppressed — it is what
            # keeps every freshness contract sound.
            if self._mode(master.item_id) == "pull":
                self._last_pushed_version = master.version
            else:
                self._push_update(master)
        invalidation = Invalidation(
            sender=self.agent.node_id, item_id=master.item_id, version=master.version
        )
        trace = self.agent.context.sim.trace
        if trace.enabled:
            trace.emit(
                InvalidationSent(
                    time=self.agent.now,
                    node=self.agent.node_id,
                    item=master.item_id,
                    version=master.version,
                    ttl=self.config.ttl_invalidation,
                    protocol="rpcc",
                )
            )
        self.agent.flood(invalidation, self.config.ttl_invalidation)

    def _push_update(self, master: MasterCopy) -> None:
        update = Update(
            sender=self.agent.node_id,
            item_id=master.item_id,
            version=master.version,
            content_size=master.content_size,
        )
        unreachable = []
        for relay_id in sorted(self.relay_table):
            if not self.agent.send(relay_id, update):
                # The relay will resynchronise via INVALIDATION + GET_NEW.
                self.agent.context.metrics.bump("rpcc_update_undeliverable")
                unreachable.append(relay_id)
        self._last_pushed_version = master.version
        if unreachable and self.config.update_repush_attempts > 0:
            self._schedule_repush(master.version, unreachable, attempt=1)

    # ------------------------------------------------------------------
    # Bounded UPDATE re-push (robustness hardening, off by default)
    # ------------------------------------------------------------------
    def _schedule_repush(self, version: int, relays: list, attempt: int) -> None:
        self.agent.context.sim.schedule(
            self.config.update_repush_interval,
            self._repush,
            version,
            relays,
            attempt,
        )

    def _repush(self, version: int, relays: list, attempt: int) -> None:
        """Retry an undeliverable ``UPDATE`` to the relays that missed it.

        Gives up silently when the pushed version has been superseded
        (the next TTN boundary carries the newer one anyway) or when the
        source itself is down; relays that resigned in the meantime are
        skipped.  At most ``update_repush_attempts`` rounds, so a relay
        that stays unreachable costs a bounded number of extra sends.
        """
        master = self.agent.host.source_item
        if (
            master is None
            or master.version != version
            or not self.agent.host.online
        ):
            return
        update = Update(
            sender=self.agent.node_id,
            item_id=master.item_id,
            version=master.version,
            content_size=master.content_size,
        )
        still_unreachable = []
        for relay_id in relays:
            if relay_id not in self.relay_table:
                continue
            if self.agent.send(relay_id, update):
                self.agent.context.metrics.bump("rpcc_update_repushed")
            else:
                still_unreachable.append(relay_id)
        if still_unreachable and attempt < self.config.update_repush_attempts:
            self._schedule_repush(version, still_unreachable, attempt + 1)

    def on_local_update(self, master: MasterCopy) -> None:
        """Push the update immediately (ablation flag, or per-item "push" mode)."""
        if not self.agent.host.online:
            return
        if self.config.immediate_update_push or self._mode(master.item_id) == "push":
            self._push_update(master)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _owns(self, item_id: int) -> bool:
        master = self.agent.host.source_item
        return master is not None and master.item_id == item_id

    def handle_get_new(self, message: GetNew) -> None:
        """Fig 6(b) lines 9-11: a relay missed updates; ship fresh content."""
        if not self._owns(message.item_id):
            return
        master = self.agent.host.source_item
        assert master is not None
        reply = SendNew(
            sender=self.agent.node_id,
            item_id=master.item_id,
            version=master.version,
            content_size=master.content_size,
        )
        self.agent.send(message.sender, reply)

    def handle_apply(self, message: Apply) -> None:
        """Fig 6(b) lines 12-15: approve a candidate's promotion."""
        if not self._owns(message.item_id):
            return
        self.relay_table.add(message.sender)
        ack = ApplyAck(
            sender=self.agent.node_id,
            item_id=message.item_id,
            relay_id=message.sender,
        )
        if not self.agent.send(message.sender, ack):
            # Fig 6(b) lines 16-18 / Section 4.5: the candidate became
            # unreachable (detected at the MAC layer); drop it again.
            self.relay_table.discard(message.sender)
            self.agent.context.metrics.bump("rpcc_apply_ack_undeliverable")

    def handle_cancel(self, message: Cancel) -> None:
        """Fig 6(b) lines 16-18: a relay resigned."""
        self.relay_table.discard(message.sender)

    def handle_poll(self, message: Poll) -> None:
        """Fallback direct poll from a cache peer that found no relay."""
        if not self._owns(message.item_id):
            return
        master = self.agent.host.source_item
        assert master is not None
        self.agent.host.tracker.record_access()
        if message.version >= master.version:
            reply: object = PollAckA(
                sender=self.agent.node_id,
                item_id=master.item_id,
                version=master.version,
                poll_id=message.poll_id,
            )
        else:
            reply = PollAckB(
                sender=self.agent.node_id,
                item_id=master.item_id,
                version=master.version,
                poll_id=message.poll_id,
                content_size=master.content_size,
            )
        self.agent.send(message.sender, reply)
