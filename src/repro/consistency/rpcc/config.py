"""RPCC protocol configuration (Table 1 defaults).

All timer names follow Fig 6(a) of the paper:

* ``TTN`` — time to notify: the source host's invalidation interval;
* ``TTR`` — time to refresh: how long a relay peer trusts its copy;
* ``TTP`` — time to poll: how long a cache peer trusts its copy
  (also the Δ of delta-consistency, Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.peers.coefficients import SelectionThresholds

__all__ = ["RPCCConfig"]


@dataclass
class RPCCConfig:
    """Tunable parameters of the RPCC strategy.

    Parameters
    ----------
    ttl_invalidation:
        Flood scope of ``INVALIDATION`` in hops (Table 1: 3; swept in Fig 9).
    ttn:
        Source invalidation interval, seconds (Table 1: 2 minutes).
    ttr:
        Relay freshness window, seconds (Table 1: 1.5 minutes).
    ttp:
        Cache-peer freshness window = Δ, seconds (Table 1: 4 minutes).
    poll_ttl:
        Flood scope of ``POLL``; defaults to ``ttl_invalidation`` so cache
        peers look for relays in the same neighbourhood size the
        invalidation reaches.
    poll_timeout:
        Seconds a cache peer waits on the relay-unicast and relay-flood
        poll stages before escalating to the next stage.
    source_poll_timeout:
        Seconds to wait on the wide-broadcast fallback poll before the
        final retry / forced-stale answer.
    max_source_poll_attempts:
        Wide-broadcast fallback attempts before the final grace wait.
    grace_timeout:
        Final silent wait before a poll is served stale.  A relay whose
        TTR expired legitimately *queues* the poll until its next
        ``INVALIDATION`` (Fig 6(c) line 17), so the poller grants one TTR
        dead window (``ttn - ttr``) plus slack for the late POLL_ACK.
        Computed as ``ttn - ttr + 5`` when not given.
    broadcast_ttl:
        Flood scope of the fallback poll that must reach the source host
        itself (``TTL_BR`` — the same 8 hops the simple strategies use,
        which is what makes low-TTL RPCC degenerate into simple pull in
        Fig 9).
    remember_relay:
        When ``True`` (default) a cache peer remembers which peer answered
        its last poll for an item and unicasts subsequent polls there
        first, flooding only when that relay stops answering.  This is the
        natural reading of "find the nearest relay peer" (Section 4.1)
        and keeps steady-state poll traffic per-query small.
    relay_hold_notice:
        When ``True`` (default) a relay that queues a poll (expired TTR)
        unicasts a tiny ``POLL_HOLD`` back, so the poller waits for the
        queued answer instead of escalating into broadcast floods.  A
        reproduction addition beyond Fig 6; see DESIGN.md.
    thresholds:
        The ``mu`` thresholds of eq 4.2.8.
    eager_relay_refresh:
        Paper-faithful default ``False``: a relay with an expired TTR holds
        incoming polls until the next ``INVALIDATION``.  When ``True`` it
        sends ``GET_NEW`` immediately instead (latency ablation).
    immediate_update_push:
        Paper-faithful default ``False`` (Fig 6(b) batches ``UPDATE`` at
        the TTN boundary).  When ``True`` the source pushes ``UPDATE`` to
        its relays the moment the master copy changes (ablation).
    update_repush_attempts:
        Robustness hardening (default 0 = paper-faithful off): when a
        TTN-boundary ``UPDATE`` cannot be delivered to a registered
        relay, retry it up to this many times, ``update_repush_interval``
        seconds apart, unless a newer version supersedes it first.
        Bounds the window in which a relay that merely lost its route
        (partition, burst loss) keeps validating against an old version.
    update_repush_interval:
        Seconds between bounded ``UPDATE`` re-push attempts.
    resync_on_reconnect:
        Robustness hardening (default off): a relay that comes back
        online stops trusting TTR windows that were open when it went
        down — it missed any ``INVALIDATION`` flooded meanwhile — and
        refreshes from the source before answering polls again.
    fast_relay_failover:
        Robustness hardening (default off): a cache peer whose unicast
        poll to its remembered relay cannot even be *routed* (the relay
        crashed or is partitioned away) forgets that relay and escalates
        to the discovery flood after a token wait, instead of sitting
        out the full poll window for an answer that cannot come.
    """

    ttl_invalidation: int = 3
    ttn: float = 120.0
    ttr: float = 90.0
    ttp: float = 240.0
    poll_ttl: Optional[int] = None
    poll_timeout: float = 4.0
    source_poll_timeout: float = 4.0
    max_source_poll_attempts: int = 2
    grace_timeout: Optional[float] = None
    broadcast_ttl: int = 8
    remember_relay: bool = True
    relay_hold_notice: bool = True
    thresholds: SelectionThresholds = field(default_factory=SelectionThresholds)
    eager_relay_refresh: bool = False
    immediate_update_push: bool = False
    update_repush_attempts: int = 0
    update_repush_interval: float = 10.0
    resync_on_reconnect: bool = False
    fast_relay_failover: bool = False

    def __post_init__(self) -> None:
        if self.ttl_invalidation < 1:
            raise ConfigurationError(
                f"ttl_invalidation must be >= 1, got {self.ttl_invalidation!r}"
            )
        for name in ("ttn", "ttr", "ttp", "poll_timeout", "source_poll_timeout"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value!r}")
        if self.max_source_poll_attempts < 1:
            raise ConfigurationError(
                "max_source_poll_attempts must be >= 1, "
                f"got {self.max_source_poll_attempts!r}"
            )
        if self.broadcast_ttl < 1:
            raise ConfigurationError(
                f"broadcast_ttl must be >= 1, got {self.broadcast_ttl!r}"
            )
        if self.grace_timeout is None:
            self.grace_timeout = max(5.0, self.ttn - self.ttr + 5.0)
        elif self.grace_timeout <= 0:
            raise ConfigurationError(
                f"grace_timeout must be positive, got {self.grace_timeout!r}"
            )
        if self.update_repush_attempts < 0:
            raise ConfigurationError(
                "update_repush_attempts must be >= 0, "
                f"got {self.update_repush_attempts!r}"
            )
        if self.update_repush_interval <= 0:
            raise ConfigurationError(
                "update_repush_interval must be positive, "
                f"got {self.update_repush_interval!r}"
            )
        if self.poll_ttl is None:
            self.poll_ttl = self.ttl_invalidation
        elif self.poll_ttl < 1:
            raise ConfigurationError(f"poll_ttl must be >= 1, got {self.poll_ttl!r}")

    @property
    def delta(self) -> float:
        """The Δ bound of delta-consistency ("in RPCC, TTP is the Δ value")."""
        return self.ttp
