"""RPCC cache-peer side (Fig 6(d) and Section 4.4 of the paper).

Query handling implements the adaptive consistency logic:

* **weak** — answer immediately from the local copy;
* **delta** — answer immediately while the TTP window (= Δ) is open,
  otherwise poll;
* **strong** — always poll.

Poll pipeline.  Fig 6(d) line 8 says "Broadcast POLL"; finding "the
nearest relay peer" (Section 4.1) is realised as an escalation ladder:

1. ``relay`` — unicast the peer that answered last time (cheap, common);
2. ``flood`` — TTL-limited broadcast so any nearby relay can answer;
3. ``broadcast`` (xN) — a ``TTL_BR``-wide flood that reaches the source
   host itself, which is what makes low-TTL RPCC degenerate into simple
   pull in Fig 9;
4. ``grace`` — a silent wait: a relay whose TTR expired legitimately
   *queues* the poll until its next ``INVALIDATION`` (Fig 6(c) line 17),
   so its late ``POLL_ACK`` must still be accepted;
5. finally the local copy is served stale and counted as such.

Every stage registers its own poll id against the same pending query, so
an acknowledgement of *any* earlier stage answers the query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cache.item import CachedCopy
from repro.consistency.base import QueryJob
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.messages import (
    Cancel,
    Poll,
    PollAckA,
    PollAckB,
    PollHold,
    Update,
    next_poll_id,
)
from repro.consistency.rpcc.config import RPCCConfig
from repro.obs.events import PollAnswered, PollSent
from repro.sim.engine import EventHandle
from repro.sim.timers import CountdownTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.consistency.rpcc.protocol import RPCCAgent

__all__ = ["CachePeerSide"]


class _PollState:
    """One query working its way down the poll escalation ladder."""

    __slots__ = ("job", "item_id", "stages", "stage_index", "poll_ids",
                 "timeout_handle", "done", "known_relay")

    def __init__(self, job: QueryJob, item_id: int) -> None:
        self.job = job
        self.item_id = item_id
        self.stages: List[str] = []
        self.stage_index = -1
        self.poll_ids: List[int] = []
        self.timeout_handle: Optional[EventHandle] = None
        self.done = False
        self.known_relay: Optional[int] = None

    @property
    def current_stage(self) -> str:
        """Name of the stage currently waiting."""
        return self.stages[self.stage_index]

    def cancel_timeout(self) -> None:
        """Disarm the stage timer."""
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
            self.timeout_handle = None


class CachePeerSide:
    """Cache-peer behaviour: queries, TTP windows, polls and fallbacks."""

    def __init__(self, agent: "RPCCAgent", config: RPCCConfig) -> None:
        self.agent = agent
        self.config = config
        self._ttp: Dict[int, CountdownTimer] = {}
        self._pending: Dict[int, _PollState] = {}
        # item_id -> the relay that last answered a poll (remember_relay)
        self._known_relay: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # TTP management
    # ------------------------------------------------------------------
    def ttp_remaining(self, item_id: int) -> float:
        """Seconds left in the item's TTP window (0 when expired/absent)."""
        timer = self._ttp.get(item_id)
        return 0.0 if timer is None else timer.remaining

    def renew_ttp(self, item_id: int) -> None:
        """Open a fresh TTP window for ``item_id``.

        The duration is read from the live config at every renewal so a
        controller-actuated TTP change applies to the *next* window while
        windows already open keep the span they were granted.
        """
        timer = self._ttp.get(item_id)
        if timer is None:
            timer = CountdownTimer(self.agent.context.sim, self.config.ttp)
            self._ttp[item_id] = timer
        timer.renew(self.config.ttp)

    def forget(self, item_id: int) -> None:
        """Drop TTP and relay-memory state for an evicted item."""
        timer = self._ttp.pop(item_id, None)
        if timer is not None:
            timer.expire_now()
        self._known_relay.pop(item_id, None)

    # ------------------------------------------------------------------
    # Query handling (Section 4.4)
    # ------------------------------------------------------------------
    def on_query(
        self, copy: CachedCopy, level: ConsistencyLevel, job: QueryJob
    ) -> None:
        """Serve a held copy according to its consistency requirement."""
        if level is ConsistencyLevel.WEAK:
            self.agent.answer(job, copy.version, served_locally=True)
            return
        if level is ConsistencyLevel.DELTA and self.ttp_remaining(copy.item_id) > 0:
            self.agent.answer(job, copy.version, served_locally=True)
            return
        self._begin_poll(job, copy)

    # ------------------------------------------------------------------
    # Poll escalation ladder
    # ------------------------------------------------------------------
    def _begin_poll(self, job: QueryJob, copy: CachedCopy) -> None:
        state = _PollState(job, copy.item_id)
        known = (
            self._known_relay.get(copy.item_id)
            if self.config.remember_relay
            else None
        )
        if known is not None and not self._relay_in_reach(known):
            # "Find the NEAREST relay peer" (Section 4.1): the relay
            # overlay only serves its neighbourhood.  A relay farther than
            # the poll TTL does not count — this is exactly what makes
            # TTL=1 RPCC degenerate into simple pull in Fig 9.
            known = None
        if known is not None and known != self.agent.node_id:
            state.known_relay = known
            state.stages.append("relay")
        state.stages.append("flood")
        state.stages.extend(["broadcast"] * self.config.max_source_poll_attempts)
        state.stages.append("grace")
        self._advance(state)

    def _relay_in_reach(self, relay_id: int) -> bool:
        """``True`` when ``relay_id`` is within the poll TTL right now."""
        snapshot = self.agent.context.network.snapshot()
        me = self.agent.node_id
        if me not in snapshot or relay_id not in snapshot:
            return False
        hops = snapshot.hop_distance(me, relay_id)
        return hops is not None and hops <= (self.config.poll_ttl or 1)

    def _advance(self, state: _PollState) -> None:
        if state.done:
            return
        state.stage_index += 1
        if state.stage_index >= len(state.stages):
            self._finish_stale(state)
            return
        stage = state.current_stage
        if stage == "grace":
            # Send nothing: wait out a queuing relay's INVALIDATION cycle.
            state.timeout_handle = self.agent.context.sim.schedule(
                self.config.grace_timeout, self._stage_timeout, state
            )
            return
        copy = self.agent.host.store.peek(state.item_id)
        if copy is None:
            self._abort(state, "rpcc_copy_lost")
            return
        poll_id = next_poll_id()
        state.poll_ids.append(poll_id)
        self._pending[poll_id] = state
        poll = Poll(
            sender=self.agent.node_id,
            item_id=state.item_id,
            version=copy.version,
            poll_id=poll_id,
        )
        if stage == "relay":
            assert state.known_relay is not None
            sent = self.agent.send(state.known_relay, poll)
            stage_ttl = 0
            timeout = self.config.poll_timeout
            if not sent and self.config.fast_relay_failover:
                # The unicast could not even be routed: the remembered
                # relay crashed or sits across a partition.  Forget it and
                # escalate to the discovery flood after a token wait
                # instead of sitting out the full poll window.
                self._known_relay.pop(state.item_id, None)
                self.agent.context.metrics.bump("rpcc_relay_failover_fast")
                timeout = min(0.5, timeout)
        elif stage == "flood":
            stage_ttl = self.config.poll_ttl or 1
            self.agent.flood(poll, stage_ttl)
            timeout = self.config.poll_timeout
        else:  # "broadcast"
            self.agent.context.metrics.bump("rpcc_poll_fallback_source")
            stage_ttl = self.config.broadcast_ttl
            self.agent.flood(poll, stage_ttl)
            timeout = self.config.source_poll_timeout
        trace = self.agent.context.sim.trace
        if trace.enabled:
            trace.emit(
                PollSent(
                    time=self.agent.now,
                    node=self.agent.node_id,
                    item=state.item_id,
                    poll_id=poll_id,
                    stage=stage,
                    ttl=stage_ttl,
                )
            )
        state.timeout_handle = self.agent.context.sim.schedule(
            timeout, self._stage_timeout, state
        )

    def _stage_timeout(self, state: _PollState) -> None:
        if state.done:
            return
        if state.current_stage == "relay":
            # The remembered relay stopped answering: forget it.
            self._known_relay.pop(state.item_id, None)
        self._advance(state)

    def _finish_stale(self, state: _PollState) -> None:
        copy = self.agent.host.store.peek(state.item_id)
        if copy is None:
            self._abort(state, "rpcc_copy_lost")
            return
        self._close(state)
        self.agent.context.metrics.bump("rpcc_forced_stale")
        self.agent.answer(state.job, copy.version, fallback=True)

    def _abort(self, state: _PollState, counter: str) -> None:
        self._close(state)
        self.agent.context.metrics.bump(counter)

    def _close(self, state: _PollState) -> None:
        state.done = True
        state.cancel_timeout()
        for poll_id in state.poll_ids:
            self._pending.pop(poll_id, None)

    def on_poll_hold(self, message: PollHold) -> None:
        """A relay queued our poll: skip escalation, await its answer."""
        state = self._pending.get(message.poll_id)
        if state is None or state.done:
            return
        if state.current_stage == "grace":
            return  # already waiting
        self.agent.context.metrics.bump("rpcc_poll_held")
        state.cancel_timeout()
        state.stage_index = len(state.stages) - 2  # jump to just before grace
        self._advance(state)

    # ------------------------------------------------------------------
    # Acknowledgement handling (Fig 6(d) lines 12-20)
    # ------------------------------------------------------------------
    def on_poll_ack_a(self, message: PollAckA) -> None:
        """Local copy confirmed current: answer and renew TTP."""
        # Learn relays even from duplicate/late acknowledgements: the
        # source may have answered first, but only relays are remembered.
        self._remember_relay(message.item_id, message.sender)
        state = self._pending.get(message.poll_id)
        if state is None or state.done:
            return  # duplicate answer or already-settled poll
        self._close(state)
        trace = self.agent.context.sim.trace
        if trace.enabled:
            trace.emit(
                PollAnswered(
                    time=self.agent.now,
                    node=self.agent.node_id,
                    item=message.item_id,
                    poll_id=message.poll_id,
                    version=message.version,
                    fresh=True,
                )
            )
        self.renew_ttp(message.item_id)
        copy = self.agent.host.store.peek(message.item_id)
        version = copy.version if copy is not None else message.version
        self.agent.answer(state.job, version)

    def on_poll_ack_b(self, message: PollAckB) -> None:
        """Local copy was stale: install fresh content, answer, renew TTP."""
        self._remember_relay(message.item_id, message.sender)
        state = self._pending.get(message.poll_id)
        if state is None or state.done:
            return
        self._close(state)
        trace = self.agent.context.sim.trace
        if trace.enabled:
            trace.emit(
                PollAnswered(
                    time=self.agent.now,
                    node=self.agent.node_id,
                    item=message.item_id,
                    poll_id=message.poll_id,
                    version=message.version,
                    fresh=False,
                )
            )
        copy = self.agent.host.store.peek(message.item_id)
        if copy is not None and message.version > copy.version:
            copy.refresh(message.version, self.agent.now)
        self.renew_ttp(message.item_id)
        self.agent.answer(state.job, message.version)

    def _remember_relay(self, item_id: int, responder: int) -> None:
        """Keep the answering *relay*; the next poll unicasts it first.

        The source host also answers fallback polls but is deliberately
        not remembered: unicast-polling the source forever would turn RPCC
        into a cut-price pull and erase the Fig 9 TTL trade-off.
        """
        if not self.config.remember_relay:
            return
        if responder == self.agent.node_id:
            return
        if responder == self.agent.context.catalog.source_of(item_id):
            return
        self._known_relay[item_id] = responder

    # ------------------------------------------------------------------
    # UPDATE received while plain cache node (Fig 6(d) lines 32-35)
    # ------------------------------------------------------------------
    def on_update_as_cache(self, message: Update) -> None:
        """The owner missed our CANCEL: refresh, renew TTP, re-send CANCEL."""
        copy = self.agent.host.store.peek(message.item_id)
        if copy is not None and message.version > copy.version:
            copy.refresh(message.version, self.agent.now)
        self.renew_ttp(message.item_id)
        cancel = Cancel(sender=self.agent.node_id, item_id=message.item_id)
        self.agent.send(message.sender, cancel)

    @property
    def pending_poll_count(self) -> int:
        """Outstanding poll states (testing/diagnostics)."""
        return len({id(state) for state in self._pending.values()})
