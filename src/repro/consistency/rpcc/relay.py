"""RPCC relay-peer side (Fig 6(c) of the paper).

A relay peer keeps a TTR freshness window per relayed item.  While TTR is
open it answers ``POLL`` messages immediately (``POLL_ACK_A`` when the
poller is current, ``POLL_ACK_B`` with fresh content when it is stale);
once TTR expires it queues polls and waits for the next ``INVALIDATION``
(Fig 6(c) lines 16-17).  An ``INVALIDATION`` revealing a missed update
triggers ``GET_NEW``; the source's ``SEND_NEW``/``UPDATE`` refresh the
copy, renew TTR and drain the queued polls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.cache.item import CachedCopy
from repro.consistency.messages import (
    GetNew,
    Invalidation,
    Poll,
    PollAckA,
    PollAckB,
    PollHold,
    SendNew,
    Update,
)
from repro.consistency.rpcc.config import RPCCConfig
from repro.obs.events import FetchCompleted, FetchStarted
from repro.sim.timers import CountdownTimer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.consistency.rpcc.protocol import RPCCAgent

__all__ = ["RelaySide"]


class RelaySide:
    """Relay behaviour for every item this host currently relays."""

    def __init__(self, agent: "RPCCAgent", config: RPCCConfig) -> None:
        self.agent = agent
        self.config = config
        self._ttr: Dict[int, CountdownTimer] = {}
        self._queued_polls: Dict[int, List[Poll]] = {}
        self._awaiting_get_new: Set[int] = set()

    # ------------------------------------------------------------------
    # TTR management
    # ------------------------------------------------------------------
    def ttr_remaining(self, item_id: int) -> float:
        """Seconds left in the item's TTR window (0 when expired/absent)."""
        timer = self._ttr.get(item_id)
        return 0.0 if timer is None else timer.remaining

    def renew_ttr(self, item_id: int) -> None:
        """Open a fresh TTR window for ``item_id``.

        The duration is read from the live config at every renewal so a
        controller-actuated TTR change applies to the *next* window while
        windows already open keep the span they were granted.
        """
        timer = self._ttr.get(item_id)
        if timer is None:
            timer = CountdownTimer(self.agent.context.sim, self.config.ttr)
            self._ttr[item_id] = timer
        timer.renew(self.config.ttr)

    def forget(self, item_id: int) -> None:
        """Drop all relay state for ``item_id`` (demotion or eviction)."""
        timer = self._ttr.pop(item_id, None)
        if timer is not None:
            timer.expire_now()
        self._queued_polls.pop(item_id, None)
        self._awaiting_get_new.discard(item_id)

    def resync_after_outage(self) -> None:
        """Reconnect hardening: stop trusting pre-outage TTR windows.

        A relay that was offline (crash, churn) may have missed any
        number of ``INVALIDATION`` floods; its TTR countdowns kept
        running while it was away, so an open window proves nothing
        about freshness any more.  Expire every window and ask the
        source for current content — polls arriving meanwhile queue
        under the normal expired-TTR rule and drain when the refresh
        lands, so the relay never vouches for a copy it cannot trust.
        Gated behind ``resync_on_reconnect`` by the caller.
        """
        for item_id, timer in list(self._ttr.items()):
            if not self.agent.roles.is_relay(item_id):
                continue
            if timer.remaining > 0:
                timer.expire_now()
            self.agent.context.metrics.bump("rpcc_relay_resync")
            self._send_get_new(item_id)

    # ------------------------------------------------------------------
    # Push-side message handling
    # ------------------------------------------------------------------
    def on_invalidation(self, message: Invalidation) -> None:
        """Fig 6(c) lines 1-8 + Section 4.5 reconnection handling."""
        item_id = message.item_id
        copy = self.agent.host.store.peek(item_id)
        if copy is None:
            return  # eviction raced the flood; the agent will demote
        if copy.version < message.version:
            # Missed one or more updates (e.g. while disconnected).  The
            # copy is now *known* stale, so close the TTR window at once —
            # otherwise an open TTR would keep answering polls with the
            # stale copy until the refresh lands.
            timer = self._ttr.get(item_id)
            if timer is not None:
                timer.expire_now()
            self._send_get_new(item_id)
        else:
            self.renew_ttr(item_id)
            self._drain(item_id, copy)

    def _send_get_new(self, item_id: int) -> None:
        if item_id in self._awaiting_get_new:
            return
        source = self.agent.context.catalog.source_of(item_id)
        request = GetNew(sender=self.agent.node_id, item_id=item_id)
        if self.agent.send(source, request):
            trace = self.agent.context.sim.trace
            if trace.enabled:
                trace.emit(
                    FetchStarted(
                        time=self.agent.now,
                        node=self.agent.node_id,
                        item=item_id,
                        target=source,
                        kind="get-new",
                    )
                )
            self._awaiting_get_new.add(item_id)
        # On failure: Section 4.5 — wait for the next INVALIDATION and retry.

    def on_update(self, message: Update) -> None:
        """Fig 6(c) lines 23-25: the source pushed fresh content."""
        copy = self.agent.host.store.peek(message.item_id)
        if copy is None:
            return
        if message.version > copy.version:
            copy.refresh(message.version, self.agent.now)
        self.renew_ttr(message.item_id)
        self._awaiting_get_new.discard(message.item_id)
        self._drain(message.item_id, copy)

    def on_send_new(self, message: SendNew) -> None:
        """Fig 6(c) lines 19-22: fresh content after GET_NEW."""
        copy = self.agent.host.store.peek(message.item_id)
        self._awaiting_get_new.discard(message.item_id)
        if copy is None:
            return
        if message.version > copy.version:
            copy.refresh(message.version, self.agent.now)
        trace = self.agent.context.sim.trace
        if trace.enabled:
            trace.emit(
                FetchCompleted(
                    time=self.agent.now,
                    node=self.agent.node_id,
                    item=message.item_id,
                    version=copy.version,
                    kind="get-new",
                )
            )
        self.renew_ttr(message.item_id)
        self._drain(message.item_id, copy)

    # ------------------------------------------------------------------
    # Pull-side message handling
    # ------------------------------------------------------------------
    def on_poll(self, message: Poll) -> None:
        """Fig 6(c) lines 9-18: validate a cache peer's copy."""
        item_id = message.item_id
        copy = self.agent.host.store.peek(item_id)
        if copy is None:
            return
        self.agent.host.tracker.record_access()
        if self.ttr_remaining(item_id) > 0:
            self._reply(message, copy)
            return
        # Stale at the relay: hold the poll until the next refresh.
        self._queued_polls.setdefault(item_id, []).append(message)
        self.agent.context.metrics.bump("rpcc_poll_queued_at_relay")
        if self.config.relay_hold_notice:
            hold = PollHold(
                sender=self.agent.node_id, item_id=item_id, poll_id=message.poll_id
            )
            self.agent.send(message.sender, hold)
        if self.config.eager_relay_refresh:
            self._send_get_new(item_id)

    def _reply(self, poll: Poll, copy: CachedCopy) -> None:
        if poll.version >= copy.version:
            reply: object = PollAckA(
                sender=self.agent.node_id,
                item_id=copy.item_id,
                version=copy.version,
                poll_id=poll.poll_id,
            )
        else:
            reply = PollAckB(
                sender=self.agent.node_id,
                item_id=copy.item_id,
                version=copy.version,
                poll_id=poll.poll_id,
                content_size=copy.content_size,
            )
        self.agent.send(poll.sender, reply)

    def _drain(self, item_id: int, copy: CachedCopy) -> None:
        for poll in self._queued_polls.pop(item_id, []):
            self._reply(poll, copy)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queued_poll_count(self, item_id: int) -> int:
        """Polls currently held for ``item_id`` (testing/diagnostics)."""
        return len(self._queued_polls.get(item_id, ()))
