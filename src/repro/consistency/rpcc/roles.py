"""Relay-peer role state machine (Fig 5 of the paper).

Per *(node, item)* pair a host is in one of three states::

    CACHE_NODE  --eligible & INVALIDATION heard-->  CANDIDATE
    CANDIDATE   --APPLY_ACK / UPDATE received---->  RELAY
    CANDIDATE   --conditions fail---------------->  CACHE_NODE
    RELAY       --conditions fail (sends CANCEL)->  CACHE_NODE

Eligibility itself (eq 4.2.8) is node-level — it comes from the
coefficient tracker — while promotion is negotiated per item with that
item's source host, so the *role* is tracked per item here.
"""

from __future__ import annotations

import enum
from typing import Dict, List

__all__ = ["Role", "RoleTable"]


class Role(enum.Enum):
    """Per-item role of a host (Fig 5 states)."""

    CACHE_NODE = "cache"
    CANDIDATE = "candidate"
    RELAY = "relay"


class RoleTable:
    """Tracks the Fig 5 state per cached item of one host."""

    def __init__(self) -> None:
        self._roles: Dict[int, Role] = {}
        self.promotions = 0
        self.demotions = 0

    def role(self, item_id: int) -> Role:
        """Current role for ``item_id`` (default ``CACHE_NODE``)."""
        return self._roles.get(item_id, Role.CACHE_NODE)

    def is_relay(self, item_id: int) -> bool:
        """``True`` when this host relays ``item_id``."""
        return self.role(item_id) is Role.RELAY

    def is_candidate(self, item_id: int) -> bool:
        """``True`` when an APPLY is outstanding for ``item_id``."""
        return self.role(item_id) is Role.CANDIDATE

    def become_candidate(self, item_id: int) -> None:
        """CACHE_NODE -> CANDIDATE (an APPLY was just sent)."""
        self._roles[item_id] = Role.CANDIDATE

    def promote(self, item_id: int) -> None:
        """CANDIDATE -> RELAY (APPLY_ACK, or UPDATE per Fig 6(d))."""
        if self._roles.get(item_id) is not Role.RELAY:
            self.promotions += 1
        self._roles[item_id] = Role.RELAY

    def demote(self, item_id: int) -> None:
        """Any state -> CACHE_NODE."""
        previous = self._roles.pop(item_id, Role.CACHE_NODE)
        if previous is Role.RELAY:
            self.demotions += 1

    def relay_items(self) -> List[int]:
        """Items this host currently relays."""
        return [item for item, role in self._roles.items() if role is Role.RELAY]

    def candidate_items(self) -> List[int]:
        """Items with an outstanding APPLY."""
        return [item for item, role in self._roles.items() if role is Role.CANDIDATE]

    def tracked_items(self) -> List[int]:
        """Items in any non-default state."""
        return list(self._roles)

    @property
    def relay_count(self) -> int:
        """Number of items this host relays."""
        return sum(1 for role in self._roles.values() if role is Role.RELAY)
