"""RPCC — Relay Peer-based Cache Consistency (Sections 4.1-4.5)."""

from repro.consistency.rpcc.cache_peer import CachePeerSide
from repro.consistency.rpcc.config import RPCCConfig
from repro.consistency.rpcc.protocol import RPCCAgent, RPCCStrategy
from repro.consistency.rpcc.relay import RelaySide
from repro.consistency.rpcc.roles import Role, RoleTable
from repro.consistency.rpcc.source import SourceSide

__all__ = [
    "RPCCConfig",
    "RPCCStrategy",
    "RPCCAgent",
    "Role",
    "RoleTable",
    "SourceSide",
    "RelaySide",
    "CachePeerSide",
]
