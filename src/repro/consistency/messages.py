"""Protocol messages.

The RPCC message set mirrors Fig 6(a) of the paper exactly
(``UPDATE``, ``INVALIDATION``, ``GET_NEW``, ``SEND_NEW``, ``APPLY``,
``APPLY_ACK``, ``CANCEL``, ``POLL``, ``POLL_ACK_A``, ``POLL_ACK_B``).
The simple push/pull baselines and the shared cache-miss fetch path add a
few generic messages of their own.

Control messages default to 48 bytes; messages carrying data content add
the item's payload size, so byte-level traffic reflects that
``POLL_ACK_B``/``SEND_NEW``/``UPDATE`` ship whole objects while
``INVALIDATION`` and ``POLL`` are tiny.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import ClassVar

from repro.net.message import Message

__all__ = [
    "CONTROL_SIZE",
    "next_poll_id",
    "next_fetch_id",
    "next_request_id",
    "QueryRequest",
    "QueryReply",
    "Update",
    "Invalidation",
    "GetNew",
    "SendNew",
    "Apply",
    "ApplyAck",
    "Cancel",
    "Poll",
    "PollAckA",
    "PollAckB",
    "PollHold",
    "PushInvalidation",
    "PullPoll",
    "PullReply",
    "FetchRequest",
    "FetchReply",
    "RPCC_PUSH_TYPES",
    "RPCC_PULL_TYPES",
]

CONTROL_SIZE = 48

_POLL_IDS = itertools.count(1)
_FETCH_IDS = itertools.count(1)
_REQUEST_IDS = itertools.count(1)


def next_poll_id() -> int:
    """Unique id correlating a poll with its acknowledgements."""
    return next(_POLL_IDS)


def next_fetch_id() -> int:
    """Unique id correlating a fetch request with its reply."""
    return next(_FETCH_IDS)


def next_request_id() -> int:
    """Unique id correlating a remote query with its reply."""
    return next(_REQUEST_IDS)


# ----------------------------------------------------------------------
# RPCC message set (Fig 6(a))
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class Update(Message):
    """``UPDATE(ID, OP, RP, CT, VER)`` — source pushes new content to a relay."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    content_size: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", CONTROL_SIZE + self.content_size)


@dataclasses.dataclass(frozen=True, slots=True)
class Invalidation(Message):
    """``INVALIDATION(ID, OP, VER)`` — periodic TTL-limited version beacon."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    is_invalidation: ClassVar[bool] = True
    item_id: int = 0
    version: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class GetNew(Message):
    """``GET_NEW(ID, OP, RP)`` — relay asks the source for the latest content."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class SendNew(Message):
    """``SEND_NEW(ID, RP, CT, VER)`` — source ships fresh content to a relay."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    content_size: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", CONTROL_SIZE + self.content_size)


@dataclasses.dataclass(frozen=True, slots=True)
class Apply(Message):
    """``APPLY(ID, OP, RP)`` — candidate asks to be promoted to relay peer."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class ApplyAck(Message):
    """``APPLY_ACK(ID, OP, RP)`` — source approves the promotion."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    relay_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class Cancel(Message):
    """``CANCEL(ID, OP, RP)`` — relay resigns back to plain cache node."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class Poll(Message):
    """``POLL(ID, CP, VER)`` — cache peer asks nearby relays to validate."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    poll_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class PollAckA(Message):
    """``POLL_ACK_A(ID, CP, VER)`` — cache peer's copy is up to date."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    poll_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class PollHold(Message):
    """Reproduction addition: "your poll is queued, hold on".

    A relay whose TTR expired holds polls until its next ``INVALIDATION``
    (Fig 6(c) line 17).  Without a hold notice the poller cannot tell a
    queueing relay from a dead one and needlessly escalates every held
    poll into wide broadcast floods.  One control-size unicast fixes that;
    disable via ``RPCCConfig.relay_hold_notice`` for the faithful-silence
    ablation.
    """

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    poll_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class PollAckB(Message):
    """``POLL_ACK_B(ID, CP, VER, CT)`` — copy was stale; fresh content attached."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    poll_id: int = 0
    content_size: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", CONTROL_SIZE + self.content_size)


# ----------------------------------------------------------------------
# Baseline strategies
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class PushInvalidation(Message):
    """Simple push: periodic invalidation report flooded with TTL_BR."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    is_invalidation: ClassVar[bool] = True
    item_id: int = 0
    version: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class PullPoll(Message):
    """Simple pull: on-demand poll flooded towards the source host."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    poll_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class PullReply(Message):
    """Simple pull: source's answer; carries content when the copy was stale."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    poll_id: int = 0
    up_to_date: bool = True
    content_size: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            extra = 0 if self.up_to_date else self.content_size
            object.__setattr__(self, "size_bytes", CONTROL_SIZE + extra)


# ----------------------------------------------------------------------
# Shared remote-query path (discovery routes a query to a holder)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class QueryRequest(Message):
    """A query forwarded to the nearest holder of the item."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    request_id: int = 0
    level_label: str = "strong"


@dataclasses.dataclass(frozen=True, slots=True)
class QueryReply(Message):
    """The holder's validated answer; always carries the content.

    ``fallback`` is ``True`` when the holder answered without completing
    its level's validation (give-up / forced-stale paths); the querying
    node propagates the flag into its ``read_served`` trace event.
    """

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    request_id: int = 0
    content_size: int = 0
    fallback: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", CONTROL_SIZE + self.content_size)


# ----------------------------------------------------------------------
# Internal refresh path (push: holder refreshes a stale copy from source)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True, slots=True)
class FetchRequest(Message):
    """Ask the source for fresh content of a stale copy."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    fetch_id: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class FetchReply(Message):
    """The source's fresh content in response to a ``FetchRequest``."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE
    item_id: int = 0
    version: int = 0
    fetch_id: int = 0
    content_size: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", CONTROL_SIZE + self.content_size)


#: RPCC message types on the push (source -> relay) side of the overlay.
RPCC_PUSH_TYPES = (
    "Invalidation",
    "Update",
    "GetNew",
    "SendNew",
    "Apply",
    "ApplyAck",
    "Cancel",
)

#: RPCC message types on the pull (cache peer -> relay) side.
RPCC_PULL_TYPES = ("Poll", "PollAckA", "PollAckB", "PollHold")
