"""Consistency levels (Section 3, eqs 3.2.1-3.2.3).

* **Strong** — every served read returns the version current at the source
  host when the query is served.
* **Delta** — a served read may lag the master copy by at most ``delta``
  seconds.
* **Weak** — a served read returns *some* previous correct value.

The paper's RPCC maps delta-consistency onto the cache peer's TTP window
("in RPCC, TTP is the delta value", Section 4.4).
"""

from __future__ import annotations

import enum
from typing import Union

from repro.errors import ConfigurationError

__all__ = ["ConsistencyLevel", "parse_level"]


class ConsistencyLevel(enum.Enum):
    """The three consistency requirements a query may carry."""

    STRONG = "strong"
    DELTA = "delta"
    WEAK = "weak"

    @property
    def label(self) -> str:
        """Lower-case name used in metrics and reports."""
        return self.value

    def __str__(self) -> str:
        return self.value


_ALIASES = {
    "strong": ConsistencyLevel.STRONG,
    "sc": ConsistencyLevel.STRONG,
    "delta": ConsistencyLevel.DELTA,
    "dc": ConsistencyLevel.DELTA,
    "weak": ConsistencyLevel.WEAK,
    "wc": ConsistencyLevel.WEAK,
}


def parse_level(value: Union[str, ConsistencyLevel]) -> ConsistencyLevel:
    """Coerce a string (``"strong"``/``"sc"``/...) to a level."""
    if isinstance(value, ConsistencyLevel):
        return value
    try:
        return _ALIASES[value.strip().lower()]
    except (KeyError, AttributeError):
        raise ConfigurationError(
            f"unknown consistency level {value!r}; choose from {sorted(_ALIASES)}"
        ) from None
