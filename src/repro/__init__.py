"""repro — a full reproduction of RPCC (Cao, Zhang, Xie & Cao, ICDCS 2005).

*Consistency of Cooperative Caching in Mobile Peer-to-Peer Systems over
MANET* proposes **RPCC** (Relay Peer-based Cache Consistency): stable,
capable peers are promoted to *relay peers* that sit between each data
item's source host and its cache nodes; the source pushes invalidations
and updates to the relays while cache nodes pull from nearby relays,
serving strong/Δ/weak consistency adaptively.

This package contains everything needed to reproduce the paper end to end
on a laptop:

* :mod:`repro.sim` — deterministic discrete-event kernel (GloMoSim stand-in);
* :mod:`repro.mobility` — terrain + random-waypoint movement;
* :mod:`repro.net` — disc-model MANET with multi-hop routing and flooding;
* :mod:`repro.energy`, :mod:`repro.cache`, :mod:`repro.peers` — the
  per-host substrates;
* :mod:`repro.consistency` — the RPCC protocol plus the simple push/pull
  baselines it is evaluated against;
* :mod:`repro.workload`, :mod:`repro.metrics` — load generation and
  measurement;
* :mod:`repro.experiments` — Table 1 configuration and one module per
  figure of the evaluation section;
* :mod:`repro.extensions` — the paper's Section 6 future-work directions.

Quickstart::

    from repro.experiments import SimulationConfig, run_simulation

    config = SimulationConfig(sim_time=1800.0, seed=7)
    result = run_simulation(config, "rpcc-sc")
    print(result.summary.mean_latency, result.summary.transmissions)
"""

from repro.consistency import (
    ConsistencyLevel,
    PullStrategy,
    PushStrategy,
    RPCCConfig,
    RPCCStrategy,
)
from repro.experiments import (
    STRATEGY_SPECS,
    SimulationConfig,
    SimulationResult,
    build_simulation,
    run_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ConsistencyLevel",
    "PushStrategy",
    "PullStrategy",
    "RPCCStrategy",
    "RPCCConfig",
    "SimulationConfig",
    "SimulationResult",
    "STRATEGY_SPECS",
    "build_simulation",
    "run_simulation",
]
