"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the serializable description of one named
world: a *base* placement scenario (``standard``/``single_source``/
``hot_set``), a set of :class:`~repro.experiments.config.SimulationConfig`
field overrides, and an optional deterministic
:class:`~repro.faults.plan.FaultPlan`.  Specs are data, not code: they
round-trip through JSON bit-identically, hash into the result-cache key
via the config they expand to, and compose with any strategy spec and
replacement policy in an experiment matrix (see
:mod:`repro.scenarios.matrix` and docs/SCENARIOS.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.experiments.config import SimulationConfig

__all__ = ["BASE_SCENARIOS", "ScenarioSpec"]

#: Placement scenarios ``build_simulation`` understands.
BASE_SCENARIOS = ("standard", "single_source", "hot_set")

#: JSON-scalar types an override value may take (lists/dicts would break
#: the bit-identical round trip guarantee through float repr).
_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, serializable scenario preset.

    Parameters
    ----------
    name:
        Registry key (kebab-case by convention).
    description:
        One-line summary shown by ``repro list`` and docs tables.
    base:
        Placement scenario passed to ``build_simulation`` (one of
        :data:`BASE_SCENARIOS`).
    overrides:
        ``SimulationConfig`` field overrides applied on top of the base
        config at expansion time.  Values must be JSON scalars.
    faults:
        Optional deterministic fault plan injected into the config.
    """

    name: str
    description: str = ""
    base: str = "standard"
    overrides: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ConfigurationError(
                f"scenario name must be a non-empty string, got {self.name!r}"
            )
        if self.base not in BASE_SCENARIOS:
            raise ConfigurationError(
                f"scenario base must be one of {BASE_SCENARIOS}, got {self.base!r}"
            )
        if not isinstance(self.overrides, Mapping):
            raise ConfigurationError(
                f"scenario overrides must be a mapping, got "
                f"{type(self.overrides).__name__}"
            )
        for key, value in self.overrides.items():
            if not isinstance(key, str) or not key.isidentifier():
                raise ConfigurationError(
                    f"override key must be a config field name, got {key!r}"
                )
            if not isinstance(value, _SCALARS):
                raise ConfigurationError(
                    f"override {key!r} must be a JSON scalar, got "
                    f"{type(value).__name__}"
                )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ConfigurationError(
                f"scenario faults must be a FaultPlan or None, got "
                f"{type(self.faults).__name__}"
            )
        # Own an immutable snapshot so a caller mutating their dict later
        # cannot silently change a registered preset.
        object.__setattr__(self, "overrides", dict(self.overrides))

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def configure(self, base_config: "SimulationConfig") -> "SimulationConfig":
        """Apply this scenario's overrides (and fault plan) to a config."""
        kwargs: Dict[str, Any] = dict(self.overrides)
        if self.faults is not None:
            kwargs["faults"] = self.faults
        try:
            return base_config.with_overrides(**kwargs)
        except TypeError:
            from dataclasses import fields as dc_fields

            known = {f.name for f in dc_fields(type(base_config))}
            bad = sorted(set(kwargs) - known)
            raise ConfigurationError(
                f"scenario {self.name!r} overrides unknown config "
                f"field(s) {bad}"
            ) from None

    def expand(
        self, base_config: "SimulationConfig"
    ) -> Tuple["SimulationConfig", str]:
        """The ``(config, placement_scenario)`` pair one run needs."""
        return self.configure(base_config), self.base

    # ------------------------------------------------------------------
    # Serialization (bit-identical JSON round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; ``from_dict`` inverts it exactly."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "base": self.base,
            "overrides": dict(sorted(self.overrides.items())),
        }
        payload["faults"] = None if self.faults is None else self.faults.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (validated)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"scenario spec must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(
            set(data) - {"name", "description", "base", "overrides", "faults"}
        )
        if unknown:
            raise ConfigurationError(
                f"scenario spec has unknown field(s) {unknown}"
            )
        faults_data = data.get("faults")
        faults = None if faults_data is None else FaultPlan.from_dict(faults_data)
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            base=data.get("base", "standard"),
            overrides=data.get("overrides", {}),
            faults=faults,
        )

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON form (sorted keys — byte-stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
