"""Declarative scenarios: registries, presets, and experiment matrices.

The public surface of the subsystem docs/SCENARIOS.md describes:

* :mod:`repro.scenarios.registry` — name-keyed registries for
  consistency strategies, cache replacement policies and scenario
  presets, with decorator registration and loud unknown/duplicate
  errors;
* :mod:`repro.scenarios.spec` — the serializable
  :class:`ScenarioSpec` that expands to a ``SimulationConfig`` plus a
  placement scenario and optional fault plan;
* :mod:`repro.scenarios.catalog` — the built-in presets (urban grid,
  highway strip, trace replay, campus partition, flash crowd,
  multi-source hot set);
* :mod:`repro.scenarios.matrix` — TOML/JSON experiment matrices
  expanded into campaign tasks (``repro matrix FILE``).
"""

from repro.scenarios.registry import (
    POLICIES,
    Registry,
    SCENARIOS,
    STRATEGIES,
    register_policy,
    register_scenario,
    register_strategy,
)
from repro.scenarios.spec import BASE_SCENARIOS, ScenarioSpec
from repro.scenarios.matrix import (
    MatrixPoint,
    MatrixSpec,
    aggregate_matrix,
    expand_matrix,
    load_matrix,
    matrix_csv,
)

__all__ = [
    "BASE_SCENARIOS",
    "MatrixPoint",
    "MatrixSpec",
    "POLICIES",
    "Registry",
    "SCENARIOS",
    "STRATEGIES",
    "ScenarioSpec",
    "aggregate_matrix",
    "expand_matrix",
    "load_matrix",
    "matrix_csv",
    "register_policy",
    "register_scenario",
    "register_strategy",
]
