"""The scenario catalog: named presets composed from existing substrates.

Each preset is a :class:`~repro.scenarios.spec.ScenarioSpec` built from
the mobility, workload, placement and fault pieces the repo already has
— no preset introduces behaviour of its own, it only names a
combination.  Durations (``sim_time``/``warmup``) and seeds deliberately
stay *out* of the presets: they come from the base config (CLI flags or
a matrix file's ``[base]`` table), so the same scenario runs at smoke
scale and at paper scale unchanged.

Timeline convention: presets with scripted faults place them inside the
first three simulated minutes so that the golden conformance runs
(60 s warm-up + 120 s measured) and longer studies both exercise them.

The catalog is the loader of
:data:`~repro.scenarios.registry.SCENARIOS`; look presets up by name via
``SCENARIOS.get("urban-grid")`` or list them with ``repro list``.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, Partition
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "URBAN_GRID",
    "HIGHWAY_STRIP",
    "TRACE_REPLAY",
    "CAMPUS_PARTITION",
    "FLASH_CROWD",
    "MULTI_SOURCE",
]


URBAN_GRID = register_scenario(ScenarioSpec(
    name="urban-grid",
    description="Dense city blocks: pedestrian random walk over small "
                "subnet cells, few stable kiosks",
    overrides=dict(
        n_peers=24,
        terrain_width=800.0,
        terrain_height=800.0,
        radio_range=250.0,
        subnet_cell=200.0,
        mobility="walk",
        speed_min=0.5,
        speed_max=2.0,
        stable_fraction=0.3,
    ),
))

HIGHWAY_STRIP = register_scenario(ScenarioSpec(
    name="highway-strip",
    description="3 km highway strip: fast waypoint traffic with short "
                "stops, roadside units as stable peers",
    overrides=dict(
        n_peers=24,
        terrain_width=3000.0,
        terrain_height=240.0,
        radio_range=350.0,
        subnet_cell=600.0,
        mobility="waypoint",
        speed_min=15.0,
        speed_max=30.0,
        pause_time=5.0,
        stable_fraction=0.25,
    ),
))

TRACE_REPLAY = register_scenario(ScenarioSpec(
    name="trace-replay",
    description="Recorded waypoint trajectories replayed as "
                "piecewise-linear traces: identical movement across "
                "every strategy/policy cell",
    overrides=dict(
        n_peers=20,
        mobility="trace",
        stable_fraction=0.4,
    ),
))

CAMPUS_PARTITION = register_scenario(ScenarioSpec(
    name="campus-partition",
    description="Subnet-partitioned campus: two scripted spatial "
                "partitions split the terrain during the run",
    overrides=dict(
        n_peers=24,
        subnet_cell=250.0,
        stable_fraction=0.5,
    ),
    faults=FaultPlan(
        name="campus-partition",
        description="Quad closes east-west, then a lecture change "
                    "splits north-south",
        faults=(
            Partition(start=70.0, duration=30.0, mode="spatial",
                      axis="x", frac=0.5, name="quad-closes"),
            Partition(start=130.0, duration=30.0, mode="spatial",
                      axis="y", frac=0.5, name="lecture-change"),
        ),
    ),
))

FLASH_CROWD = register_scenario(ScenarioSpec(
    name="flash-crowd",
    description="Zipf-skewed popularity whose ranking reshuffles "
                "mid-run (t=120 s): a flash crowd moves to new items",
    overrides=dict(
        n_peers=24,
        access_pattern="flash-crowd",
        zipf_theta=0.9,
        flash_crowd_at=120.0,
        stable_fraction=0.4,
    ),
))

MULTI_SOURCE = register_scenario(ScenarioSpec(
    name="multi-source",
    description="Multi-source multi-item hot set: four items from four "
                "different sources pre-placed at every peer, queries "
                "restricted to the hot set",
    base="hot_set",
    overrides=dict(
        n_peers=24,
        hot_set_size=4,
        cache_num=8,
        stable_fraction=0.4,
    ),
))
