"""Name-keyed registries for strategies, replacement policies and scenarios.

The Icarus-style shape the ROADMAP names: everything a study sweeps —
consistency strategy, cache replacement policy, scenario preset — is
registered under a short stable name and looked up by that name from
config files, CLI arguments and experiment matrices.  Adding a variant
is one decorated definition; misspelling one is a loud
:class:`~repro.errors.ConfigurationError` listing what exists.

Each registry lazily imports the module that populates it (its
*loader*), so ``SCENARIOS.get("urban-grid")`` works without the caller
having to know which module defines the preset.  The loader indirection
also keeps this module import-cycle-free: it depends only on
:mod:`repro.errors`.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Registry",
    "STRATEGIES",
    "POLICIES",
    "SCENARIOS",
    "CONTROLLERS",
    "register_strategy",
    "register_policy",
    "register_scenario",
    "register_controller",
]


class Registry:
    """A name -> object mapping with loud duplicate/unknown handling.

    Parameters
    ----------
    kind:
        Human label used in error messages (``"strategy"`` …).
    loader:
        Optional dotted module path imported on first lookup; the import
        is what populates the registry (its definitions call
        :meth:`register` at module scope).
    """

    def __init__(self, kind: str, loader: Optional[str] = None) -> None:
        self.kind = kind
        self._loader = loader
        self._loaded = loader is None
        self._entries: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any = None) -> Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``register("x")`` returns a decorator; ``register("x", obj)``
        registers directly and returns ``obj``.  Names must be non-empty
        strings and unique within the registry.
        """
        if not isinstance(name, str) or not name.strip():
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        key = name.strip().lower()
        if obj is None:
            def decorator(target: Any) -> Any:
                return self.register(key, target)
            return decorator
        if key in self._entries:
            raise ConfigurationError(
                f"duplicate {self.kind} name {key!r}: already registered"
            )
        self._entries[key] = obj
        return obj

    def get(self, name: str) -> Any:
        """Look up ``name``; unknown names raise with the known listing."""
        if not isinstance(name, str):
            raise ConfigurationError(
                f"{self.kind} name must be a string, got {type(name).__name__}"
            )
        self._ensure_loaded()
        key = name.strip().lower()
        try:
            return self._entries[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; choose from {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Sorted registered names (the discovery/listing surface)."""
        self._ensure_loaded()
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, Any]]:
        """``(name, object)`` pairs in name order."""
        self._ensure_loaded()
        return [(name, self._entries[name]) for name in self.names()]

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return isinstance(name, str) and name.strip().lower() in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        # Mark first: the loader module's own register() calls re-enter
        # the registry, and a loader error should not retry forever.
        self._loaded = True
        assert self._loader is not None
        importlib.import_module(self._loader)


#: Consistency strategies by base name (``push``/``pull``/``rpcc``);
#: entries are ``factory(context, config) -> ConsistencyStrategy``.
STRATEGIES = Registry("strategy", loader="repro.experiments.runner")

#: Cache replacement policies; entries are policy classes/factories.
POLICIES = Registry("replacement policy", loader="repro.cache.replacement")

#: Scenario presets; entries are :class:`~repro.scenarios.spec.ScenarioSpec`.
SCENARIOS = Registry("scenario", loader="repro.scenarios.catalog")

#: Online control policies for the adaptive controller; entries are
#: ``factory() -> ControlPolicy`` (fresh instance per simulation).
CONTROLLERS = Registry("control policy", loader="repro.control.policies")


def register_strategy(name: str) -> Callable[[Any], Any]:
    """Decorator: register a strategy factory ``(context, config) -> strategy``."""
    return STRATEGIES.register(name)


def register_policy(name: str) -> Callable[[Any], Any]:
    """Decorator: register a replacement-policy class under ``name``."""
    return POLICIES.register(name)


def register_scenario(spec: Any) -> Any:
    """Register a :class:`ScenarioSpec` under its own ``name`` field."""
    return SCENARIOS.register(spec.name, spec)


def register_controller(name: str) -> Callable[[Any], Any]:
    """Decorator: register a control-policy factory ``() -> ControlPolicy``."""
    return CONTROLLERS.register(name)
