"""Declarative experiment matrices: scenario x strategy x policy x seeds.

A matrix file is a TOML (or JSON) document naming registry entries along
four orthogonal axes plus optional base-config overrides::

    [matrix]
    scenarios  = ["urban-grid", "flash-crowd"]
    strategies = ["push", "rpcc-sc"]
    policies   = ["lru"]
    seeds      = [3]

    [base]
    sim_time = 120.0
    warmup   = 60.0

``repro matrix FILE`` expands the cross product into campaign tasks,
hands them to :class:`~repro.experiments.executor.CampaignExecutor`
(so ``--jobs``/``--workers``/``--store``/``--resume`` all apply), and
aggregates the per-seed results into one row per
``(scenario, strategy, policy)`` cell.  Expansion is deterministic and
deduplicates repeated points by content address, which is what makes
sharded and resumed matrix runs byte-identical to serial ones.

Precedence, innermost last: built-in config defaults < ``[base]`` table
< scenario preset overrides < the cell's policy and seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.errors import ConfigurationError
from repro.scenarios.registry import POLICIES, SCENARIOS
from repro.scenarios.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.experiments.config import SimulationConfig
    from repro.experiments.runner import SimulationResult

__all__ = [
    "MatrixPoint",
    "MatrixSpec",
    "aggregate_matrix",
    "expand_matrix",
    "load_matrix",
    "matrix_csv",
]

#: Columns of the aggregate table/CSV, in emission order.
AGGREGATE_COLUMNS = (
    "scenario", "strategy", "policy", "seeds",
    "transmissions", "mean_latency", "answered_ratio",
    "stale_ratio", "violation_ratio",
)


@dataclass(frozen=True)
class MatrixSpec:
    """The parsed axes of one matrix file."""

    scenarios: Tuple[str, ...]
    strategies: Tuple[str, ...]
    policies: Tuple[str, ...] = ("lru",)
    seeds: Tuple[int, ...] = (1,)
    base: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis in ("scenarios", "strategies", "policies", "seeds"):
            values = getattr(self, axis)
            if not values:
                raise ConfigurationError(f"matrix {axis} must be non-empty")
            object.__setattr__(self, axis, tuple(values))
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigurationError(
                    f"matrix seeds must be integers, got {seed!r}"
                )
        object.__setattr__(self, "base", dict(self.base))

    @property
    def cells(self) -> int:
        """Size of the full cross product (before deduplication)."""
        return (len(self.scenarios) * len(self.strategies)
                * len(self.policies) * len(self.seeds))


@dataclass(frozen=True)
class MatrixPoint:
    """One expanded cell: its axes plus the fully resolved run task."""

    scenario: str
    strategy: str
    policy: str
    seed: int
    config: "SimulationConfig"
    placement: str

    @property
    def task(self) -> Tuple["SimulationConfig", str, str]:
        """The ``(config, spec, scenario)`` triple the executor runs."""
        return (self.config, self.strategy, self.placement)


def load_matrix(path: Union[str, Path]) -> MatrixSpec:
    """Parse a matrix file (``.toml`` or ``.json``) into a :class:`MatrixSpec`."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read matrix file {path}: {exc}") from None
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"invalid JSON in {path}: {exc}") from None
    else:
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ConfigurationError(f"invalid TOML in {path}: {exc}") from None
    return _matrix_from_data(data, source=str(path))


def _matrix_from_data(data: Mapping[str, Any], source: str = "<matrix>") -> MatrixSpec:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{source}: matrix document must be a table")
    unknown = sorted(set(data) - {"matrix", "base"})
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown top-level table(s) {unknown}; "
            f"expected [matrix] and optional [base]"
        )
    axes = data.get("matrix")
    if not isinstance(axes, Mapping):
        raise ConfigurationError(f"{source}: missing [matrix] table")
    bad_axes = sorted(set(axes) - {"scenarios", "strategies", "policies", "seeds"})
    if bad_axes:
        raise ConfigurationError(
            f"{source}: unknown matrix axis/axes {bad_axes}"
        )
    for required in ("scenarios", "strategies"):
        if required not in axes:
            raise ConfigurationError(
                f"{source}: [matrix] needs a {required!r} list"
            )
    base = data.get("base", {})
    if not isinstance(base, Mapping):
        raise ConfigurationError(f"{source}: [base] must be a table")
    return MatrixSpec(
        scenarios=tuple(axes["scenarios"]),
        strategies=tuple(axes["strategies"]),
        policies=tuple(axes.get("policies", ("lru",))),
        seeds=tuple(axes.get("seeds", (1,))),
        base=base,
    )


def expand_matrix(
    matrix: MatrixSpec,
    base_config: Optional["SimulationConfig"] = None,
) -> List[MatrixPoint]:
    """Expand the cross product into resolved, deduplicated points.

    Every axis name is validated against its registry (scenario presets,
    strategy specs, replacement policies) before any simulation runs, so
    a typo fails the whole matrix immediately.  Points whose resolved
    content address coincides (e.g. a repeated seed) are kept once, in
    first-appearance order.
    """
    from repro.experiments.config import SimulationConfig
    from repro.experiments.executor import run_key
    from repro.experiments.runner import STRATEGY_SPECS

    for strategy in matrix.strategies:
        if strategy not in STRATEGY_SPECS:
            raise ConfigurationError(
                f"unknown strategy spec {strategy!r}; "
                f"choose from {STRATEGY_SPECS}"
            )
    for policy in matrix.policies:
        POLICIES.get(policy)
    scenario_specs: Dict[str, ScenarioSpec] = {
        name: SCENARIOS.get(name) for name in matrix.scenarios
    }

    base = base_config if base_config is not None else SimulationConfig()
    if matrix.base:
        try:
            base = base.with_overrides(**dict(matrix.base))
        except TypeError:
            from dataclasses import fields as dc_fields

            known = {f.name for f in dc_fields(SimulationConfig)}
            bad = sorted(set(matrix.base) - known)
            raise ConfigurationError(
                f"matrix [base] has unknown config field(s) {bad}"
            ) from None

    points: List[MatrixPoint] = []
    seen: set = set()
    for scenario_name in matrix.scenarios:
        spec = scenario_specs[scenario_name]
        scenario_config, placement = spec.expand(base)
        for strategy in matrix.strategies:
            for policy in matrix.policies:
                for seed in matrix.seeds:
                    config = scenario_config.with_overrides(
                        replacement_policy=policy, seed=seed
                    )
                    key = run_key(config, strategy, placement)
                    if key in seen:
                        continue
                    seen.add(key)
                    points.append(MatrixPoint(
                        scenario=scenario_name,
                        strategy=strategy,
                        policy=policy,
                        seed=seed,
                        config=config,
                        placement=placement,
                    ))
    return points


def aggregate_matrix(
    points: Sequence[MatrixPoint],
    results: Sequence["SimulationResult"],
) -> List[Tuple]:
    """One row per ``(scenario, strategy, policy)`` cell, seeds averaged.

    Row order follows first appearance in ``points`` (which expansion
    makes deterministic), so two runs of the same matrix — serial,
    sharded, or resumed — emit byte-identical tables.
    """
    if len(points) != len(results):
        raise ConfigurationError(
            f"matrix aggregate needs one result per point "
            f"({len(points)} points, {len(results)} results)"
        )
    groups: Dict[Tuple[str, str, str], List["SimulationResult"]] = {}
    order: List[Tuple[str, str, str]] = []
    for point, result in zip(points, results):
        cell = (point.scenario, point.strategy, point.policy)
        if cell not in groups:
            groups[cell] = []
            order.append(cell)
        groups[cell].append(result)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    rows: List[Tuple] = []
    for cell in order:
        cell_results = groups[cell]
        summaries = [r.summary for r in cell_results]
        answered = [
            (s.queries_answered / s.queries_issued) if s.queries_issued else 0.0
            for s in summaries
        ]
        rows.append(cell + (
            len(cell_results),
            mean([float(s.transmissions) for s in summaries]),
            mean([s.mean_latency for s in summaries]),
            mean(answered),
            mean([s.stale_ratio for s in summaries]),
            mean([s.violation_ratio for s in summaries]),
        ))
    return rows


def matrix_csv(rows: Sequence[Tuple]) -> str:
    """Serialize aggregate rows as CSV (``repr`` floats: byte-stable)."""
    lines = [",".join(AGGREGATE_COLUMNS)]
    for row in rows:
        rendered = [
            repr(value) if isinstance(value, float) else str(value)
            for value in row
        ]
        lines.append(",".join(rendered))
    return "\n".join(lines) + "\n"
