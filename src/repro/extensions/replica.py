"""Multi-writer replica consistency (the paper's future-work direction 3).

Section 6: "unlike cache, where the master copy can only be updated by its
source peer, as to replicas, any peer that has the replica can modify the
data, which makes the consistency maintenance more complicated."

This module implements that harder setting as a self-contained protocol on
the same network substrate:

* every replica carries a **last-writer-wins tag** ``(lamport, writer)``;
  a write anywhere bumps the local Lamport clock and installs the tag;
* replicas converge through periodic **anti-entropy gossip**: each holder
  exchanges its tag with a random online holder and the smaller tag pulls
  the newer value (one round trip per gossip tick);
* because tags are totally ordered and merging takes the max, the register
  is a state-based CRDT: any gossip schedule converges once writes stop.
"""

from __future__ import annotations

import dataclasses
import random
from typing import ClassVar, Dict, List, Tuple

from repro.errors import ProtocolError
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

__all__ = ["WriteTag", "ReplicatedRegister", "GossipReplication", "GossipDigest", "GossipValue"]


@dataclasses.dataclass(frozen=True, order=True)
class WriteTag:
    """Total order over writes: Lamport clock, ties broken by writer id."""

    lamport: int
    writer: int


@dataclasses.dataclass(frozen=True, slots=True)
class GossipDigest(Message):
    """'Here is my newest tag' — opener of one anti-entropy round."""

    DEFAULT_SIZE: ClassVar[int] = 48
    item_id: int = 0
    lamport: int = 0
    writer: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class GossipValue(Message):
    """'Your tag was older; here is my value' — the pull half of a round."""

    DEFAULT_SIZE: ClassVar[int] = 48
    item_id: int = 0
    lamport: int = 0
    writer: int = 0
    payload: int = 0
    content_size: int = 1024

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            object.__setattr__(self, "size_bytes", 48 + self.content_size)


class ReplicatedRegister:
    """One node's replica of a multi-writer register."""

    def __init__(self, node_id: int, item_id: int) -> None:
        self.node_id = node_id
        self.item_id = item_id
        self.tag = WriteTag(0, node_id)
        self.value = 0
        self.lamport = 0
        self.writes = 0
        self.merges = 0

    def write(self, value: int) -> WriteTag:
        """Local write: bump the Lamport clock and install the tag."""
        self.lamport += 1
        self.tag = WriteTag(self.lamport, self.node_id)
        self.value = value
        self.writes += 1
        return self.tag

    def read(self) -> Tuple[int, WriteTag]:
        """Local read: value plus its provenance tag."""
        return self.value, self.tag

    def merge(self, tag: WriteTag, value: int) -> bool:
        """Fold a remote state in; returns whether it won."""
        self.lamport = max(self.lamport, tag.lamport)
        if tag > self.tag:
            self.tag = tag
            self.value = value
            self.merges += 1
            return True
        return False


class GossipReplication:
    """Anti-entropy gossip among the holders of one replicated item.

    Parameters
    ----------
    sim / network:
        Simulation substrate.
    item_id:
        The replicated item.
    holders:
        Node ids holding a replica.
    rng:
        Stream used to pick gossip partners.
    gossip_interval:
        Seconds between gossip rounds per holder.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        item_id: int,
        holders: List[int],
        rng: random.Random,
        gossip_interval: float = 30.0,
    ) -> None:
        if len(holders) < 2:
            raise ProtocolError("replication needs at least two holders")
        self.sim = sim
        self.network = network
        self.item_id = item_id
        self.rng = rng
        self.gossip_interval = float(gossip_interval)
        self.registers: Dict[int, ReplicatedRegister] = {
            node: ReplicatedRegister(node, item_id) for node in holders
        }
        self._timers: List[PeriodicTimer] = []
        self.rounds = 0
        # Nodes deliver replication messages through their agent; here we
        # register a tiny adapter per holder instead.
        for node in holders:
            host = network.node(node)
            original = getattr(host, "agent", None)
            host.agent = _ReplicaAdapter(self, node, original)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm a staggered gossip timer per holder."""
        for index, node in enumerate(sorted(self.registers)):
            offset = self.gossip_interval * (index + 1) / (len(self.registers) + 1)
            timer = PeriodicTimer(
                self.sim,
                self.gossip_interval,
                lambda node=node: self._gossip_once(node),
                start_offset=offset,
            )
            timer.start()
            self._timers.append(timer)

    def stop(self) -> None:
        """Disarm all gossip timers."""
        for timer in self._timers:
            timer.stop()

    def write(self, node: int, value: int) -> WriteTag:
        """Perform a write at ``node``'s replica."""
        return self.registers[node].write(value)

    def read(self, node: int) -> Tuple[int, WriteTag]:
        """Read ``node``'s replica."""
        return self.registers[node].read()

    def converged(self) -> bool:
        """``True`` when every replica holds the same tag."""
        tags = {register.tag for register in self.registers.values()}
        return len(tags) == 1

    def distinct_values(self) -> int:
        """Number of distinct values currently held."""
        return len({register.value for register in self.registers.values()})

    # ------------------------------------------------------------------
    # Gossip mechanics
    # ------------------------------------------------------------------
    def _gossip_once(self, node: int) -> None:
        host = self.network.node(node)
        if not host.online:
            return
        partners = [n for n in self.registers if n != node]
        partner = partners[self.rng.randrange(len(partners))]
        register = self.registers[node]
        digest = GossipDigest(
            sender=node,
            item_id=self.item_id,
            lamport=register.tag.lamport,
            writer=register.tag.writer,
        )
        if self.network.unicast(node, partner, digest):
            self.rounds += 1

    def handle(self, node: int, message: Message) -> bool:
        """Process a replication message at ``node``; returns handled?"""
        register = self.registers.get(node)
        if register is None:
            return False
        if isinstance(message, GossipDigest) and message.item_id == self.item_id:
            remote_tag = WriteTag(message.lamport, message.writer)
            if register.tag > remote_tag:
                # We are newer: push our value back to the opener.
                reply = GossipValue(
                    sender=node,
                    item_id=self.item_id,
                    lamport=register.tag.lamport,
                    writer=register.tag.writer,
                    payload=register.value,
                )
                self.network.unicast(node, message.sender, reply)
            elif remote_tag > register.tag:
                # They are newer: ask for the value by sending our digest.
                reply = GossipDigest(
                    sender=node,
                    item_id=self.item_id,
                    lamport=register.tag.lamport,
                    writer=register.tag.writer,
                )
                self.network.unicast(node, message.sender, reply)
            return True
        if isinstance(message, GossipValue) and message.item_id == self.item_id:
            register.merge(WriteTag(message.lamport, message.writer), message.payload)
            return True
        return False


class _ReplicaAdapter:
    """Routes replication messages to the protocol, the rest onward."""

    def __init__(self, replication: GossipReplication, node: int, inner) -> None:
        self._replication = replication
        self._node = node
        self._inner = inner

    def handle_message(self, message: Message) -> None:
        if self._replication.handle(self._node, message):
            return
        if self._inner is not None:
            self._inner.handle_message(message)

    # Host lifecycle hooks: forward when wrapped, no-op otherwise.
    def on_reconnect(self) -> None:
        if self._inner is not None:
            self._inner.on_reconnect()

    def on_disconnect(self) -> None:
        if self._inner is not None:
            self._inner.on_disconnect()

    def on_local_update(self, master) -> None:
        if self._inner is not None:
            self._inner.on_local_update(master)

    def on_period_closed(self) -> None:
        if self._inner is not None:
            self._inner.on_period_closed()

    def __getattr__(self, name: str):
        if self._inner is None:
            raise AttributeError(name)
        return getattr(self._inner, name)
