"""Push with Updated Invalidation Reports (UIR), after Cao (MOBICOM'00).

The paper's related-work section cites Cao's strategy that "can reduce
the query latency by inserting several updated invalidation reports (UIR)
between two successive IRs".  This extension reproduces that mechanism on
top of the simple push baseline: between full invalidation reports the
source floods ``uir_count`` lightweight UIRs, so a waiting query can
validate after at most ``TTN / (uir_count + 1)`` instead of a full TTN.

The trade-off this makes measurable: latency divides by roughly
``uir_count + 1`` while flood traffic multiplies by the same factor
(in the original the UIR is much smaller than a history-carrying IR; with
single-item reports both are control-sized, so the traffic cost shows at
full strength — see ``benchmarks/bench_extensions.py``).
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar

from repro.consistency.base import StrategyContext
from repro.consistency.messages import CONTROL_SIZE, PushInvalidation
from repro.consistency.push import PushAgent, PushStrategy
from repro.errors import ProtocolError
from repro.peers.host import MobileHost
from repro.sim.timers import PeriodicTimer

__all__ = ["UIRReport", "UIRPushStrategy", "UIRPushAgent"]

_GOLDEN = 0.6180339887498949


@dataclasses.dataclass(frozen=True, slots=True)
class UIRReport(PushInvalidation):
    """A between-IR updated invalidation report (subtype for accounting)."""

    DEFAULT_SIZE: ClassVar[int] = CONTROL_SIZE


class UIRPushStrategy(PushStrategy):
    """Simple push plus ``uir_count`` UIRs per invalidation interval.

    Parameters (in addition to :class:`PushStrategy`)
    ----------
    uir_count:
        UIR floods inserted between two successive full reports.
    """

    name = "push-uir"

    def __init__(self, context: StrategyContext, uir_count: int = 4, **kwargs) -> None:
        super().__init__(context, **kwargs)
        if uir_count < 1:
            raise ProtocolError(f"uir_count must be >= 1, got {uir_count!r}")
        self.uir_count = int(uir_count)

    @property
    def sub_interval(self) -> float:
        """Gap between consecutive reports (IR or UIR)."""
        return self.ttn / (self.uir_count + 1)

    def make_agent(self, host: MobileHost) -> "UIRPushAgent":
        return UIRPushAgent(self, host)

    def start(self, batch=None) -> None:
        """Arm one staggered sub-interval timer per source host."""
        for agent in self.agents.values():
            host = agent.host
            if host.source_item is None:
                continue
            offset = self.sub_interval * ((host.node_id * _GOLDEN) % 1.0)
            timer = PeriodicTimer(
                self.context.sim,
                self.sub_interval,
                agent.broadcast_sub_report,  # type: ignore[attr-defined]
                start_offset=offset if offset > 0 else self.sub_interval,
            )
            timer.start(batch)
            self._timers.append(timer)


class UIRPushAgent(PushAgent):
    """Push agent whose source side alternates full IRs and UIRs."""

    def __init__(self, strategy: UIRPushStrategy, host: MobileHost) -> None:
        super().__init__(strategy, host)
        self.uir: UIRPushStrategy = strategy
        self._sub_tick = 0

    def broadcast_sub_report(self) -> None:
        """Every ``uir_count + 1``-th tick is a full IR, the rest are UIRs."""
        master = self.host.source_item
        if master is None or not self.host.online:
            return
        self._sub_tick += 1
        if self._sub_tick % (self.uir.uir_count + 1) == 0:
            report: PushInvalidation = PushInvalidation(
                sender=self.node_id, item_id=master.item_id, version=master.version
            )
        else:
            report = UIRReport(
                sender=self.node_id, item_id=master.item_id, version=master.version
            )
        self.flood(report, self.uir.ttl)
