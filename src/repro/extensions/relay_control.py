"""Relay-population control (the paper's future-work direction 2).

Section 6: "the number of relay peers is important to the performance of
RPCC.  In the current strategy, the number of relay peers cannot be
controlled."  Here the source host caps its relay table: an ``APPLY`` that
would exceed ``max_relays`` is silently dropped, leaving the candidate to
retry at a later switching period (and succeed once churn opens a slot).
"""

from __future__ import annotations

from typing import Optional

from repro.consistency.base import StrategyContext
from repro.consistency.messages import Apply
from repro.consistency.rpcc.config import RPCCConfig
from repro.consistency.rpcc.protocol import RPCCAgent, RPCCStrategy
from repro.consistency.rpcc.source import SourceSide
from repro.errors import ConfigurationError
from repro.peers.host import MobileHost

__all__ = ["ControlledConfig", "ControlledRPCCStrategy", "ControlledRPCCAgent"]


class ControlledConfig(RPCCConfig):
    """RPCC configuration plus a relay-table cap."""

    def __init__(self, max_relays: int = 3, **kwargs) -> None:
        super().__init__(**kwargs)
        if max_relays < 1:
            raise ConfigurationError(f"max_relays must be >= 1, got {max_relays!r}")
        self.max_relays = int(max_relays)


class _CappedSourceSide(SourceSide):
    """Source side that refuses promotions beyond the configured cap."""

    def __init__(self, agent: "ControlledRPCCAgent", config: ControlledConfig) -> None:
        super().__init__(agent, config)
        self.controlled = config

    def handle_apply(self, message: Apply) -> None:
        if (
            message.sender not in self.relay_table
            and len(self.relay_table) >= self.controlled.max_relays
        ):
            self.agent.context.metrics.bump("rpcc_apply_rejected_cap")
            return
        super().handle_apply(message)


class ControlledRPCCAgent(RPCCAgent):
    """RPCC agent whose source side enforces the relay cap."""

    def __init__(self, strategy: "ControlledRPCCStrategy", host: MobileHost) -> None:
        super().__init__(strategy, host)
        assert isinstance(self.config, ControlledConfig)
        self.source = _CappedSourceSide(self, self.config)


class ControlledRPCCStrategy(RPCCStrategy):
    """RPCC with a bounded relay population per item."""

    name = "rpcc-controlled"

    def __init__(
        self, context: StrategyContext, config: Optional[ControlledConfig] = None
    ) -> None:
        super().__init__(context, config if config is not None else ControlledConfig())

    def make_agent(self, host: MobileHost) -> ControlledRPCCAgent:
        return ControlledRPCCAgent(self, host)
