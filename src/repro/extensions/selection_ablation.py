"""Selection-criterion ablation: random promotion instead of eq 4.2.8.

DESIGN.md asks whether the CAR/CS/CE criterion actually earns its keep.
This strategy replaces the coefficient test with a biased coin: any holder
that hears an ``INVALIDATION`` applies with probability ``promote_prob``,
regardless of stability or energy.  Compared against stock RPCC it shows
how much staleness/availability degrades when unstable nodes get promoted.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.consistency.base import StrategyContext
from repro.consistency.messages import Apply, Invalidation
from repro.consistency.rpcc.config import RPCCConfig
from repro.consistency.rpcc.protocol import RPCCAgent, RPCCStrategy
from repro.consistency.rpcc.roles import Role
from repro.errors import ConfigurationError
from repro.peers.host import MobileHost

__all__ = ["RandomSelectionConfig", "RandomSelectionRPCCStrategy"]


class RandomSelectionConfig(RPCCConfig):
    """RPCC configuration with a coin-flip promotion gate."""

    def __init__(self, promote_prob: float = 0.4, seed: int = 0, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 < promote_prob <= 1.0:
            raise ConfigurationError(
                f"promote_prob must be in (0, 1], got {promote_prob!r}"
            )
        self.promote_prob = float(promote_prob)
        self.seed = int(seed)


class _RandomSelectionAgent(RPCCAgent):
    """Agent whose candidacy gate ignores the coefficients."""

    def __init__(self, strategy: "RandomSelectionRPCCStrategy", host: MobileHost) -> None:
        super().__init__(strategy, host)
        assert isinstance(self.config, RandomSelectionConfig)
        self._coin = random.Random(self.config.seed * 100_003 + host.node_id)

    def _handle_invalidation(self, message: Invalidation) -> None:
        item_id = message.item_id
        role = self.roles.role(item_id)
        if role is not Role.CACHE_NODE:
            super()._handle_invalidation(message)
            return
        if item_id in self.host.store and self._coin.random() < self.config.promote_prob:
            self.roles.become_candidate(item_id)
            self.send(message.sender, Apply(sender=self.node_id, item_id=item_id))
            self.context.metrics.bump("rpcc_apply_sent")

    def on_period_closed(self) -> None:
        # No coefficient-driven demotion: only eviction resigns a role.
        for item_id in self.roles.tracked_items():
            if item_id not in self.host.store:
                self._resign(item_id)
            elif self.roles.is_candidate(item_id) and self.host.online:
                self.send(
                    self.context.catalog.source_of(item_id),
                    Apply(sender=self.node_id, item_id=item_id),
                )
                self.context.metrics.bump("rpcc_apply_retry")


class RandomSelectionRPCCStrategy(RPCCStrategy):
    """RPCC with eq 4.2.8 replaced by a random gate (ablation)."""

    name = "rpcc-random-selection"

    def __init__(
        self, context: StrategyContext, config: Optional[RandomSelectionConfig] = None
    ) -> None:
        super().__init__(
            context, config if config is not None else RandomSelectionConfig()
        )

    def make_agent(self, host: MobileHost) -> _RandomSelectionAgent:
        return _RandomSelectionAgent(self, host)
