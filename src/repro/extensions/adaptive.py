"""Adaptive push/pull frequency (the paper's future-work direction 1).

Section 6: "both our RPCC and traditional simple push/pull strategies need
to pre-set the push/pull frequency ... We plan to investigate how to
change the push/pull frequency adaptively according to the runtime system
conditions."

Two adaptations, both multiplicative with clamped ranges:

* **Source side** — the TTN interval stretches while the master copy is
  quiet and shrinks while it is update-hot, so invalidation floods track
  the real update rate instead of a fixed 2-minute drum beat.
* **Cache-peer side** — the TTP window per item shrinks every time a poll
  comes back ``POLL_ACK_B`` (the copy *was* stale: we trusted it too
  long) and grows on ``POLL_ACK_A`` (we polled needlessly early).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.consistency.base import StrategyContext
from repro.consistency.messages import PollAckA, PollAckB
from repro.consistency.rpcc.cache_peer import CachePeerSide
from repro.consistency.rpcc.config import RPCCConfig
from repro.consistency.rpcc.protocol import RPCCAgent, RPCCStrategy
from repro.consistency.rpcc.source import SourceSide
from repro.errors import ConfigurationError
from repro.peers.host import MobileHost

__all__ = ["AdaptiveConfig", "AdaptiveRPCCStrategy", "AdaptiveRPCCAgent"]


class AdaptiveConfig(RPCCConfig):
    """RPCC configuration plus adaptation bounds.

    Parameters (in addition to :class:`RPCCConfig`)
    ----------
    min_scale / max_scale:
        Clamp for both the TTN and TTP multipliers.
    grow / shrink:
        Multiplicative step applied on quiet/hot evidence.
    """

    def __init__(
        self,
        min_scale: float = 0.25,
        max_scale: float = 4.0,
        grow: float = 1.25,
        shrink: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 < min_scale <= 1.0 <= max_scale:
            raise ConfigurationError(
                f"need min_scale <= 1 <= max_scale, got [{min_scale}, {max_scale}]"
            )
        if grow <= 1.0 or not 0 < shrink < 1.0:
            raise ConfigurationError(
                f"need grow > 1 and 0 < shrink < 1, got grow={grow}, shrink={shrink}"
            )
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self.grow = float(grow)
        self.shrink = float(shrink)

    def clamp(self, scale: float) -> float:
        """Keep an adaptation multiplier inside the configured range."""
        return min(self.max_scale, max(self.min_scale, scale))


class _AdaptiveSourceSide(SourceSide):
    """Source side whose TTN interval tracks the observed update rate."""

    def __init__(self, agent: "AdaptiveRPCCAgent", config: AdaptiveConfig) -> None:
        super().__init__(agent, config)
        self.adaptive = config
        self._scale = 1.0
        self._version_at_last_tick = 0

    def _on_ttn(self) -> None:
        master = self.agent.host.source_item
        updates_this_interval = 0
        if master is not None:
            updates_this_interval = master.version - self._version_at_last_tick
            self._version_at_last_tick = master.version
        super()._on_ttn()
        if updates_this_interval == 0:
            self._scale = self.adaptive.clamp(self._scale * self.adaptive.grow)
        elif updates_this_interval > 1:
            self._scale = self.adaptive.clamp(self._scale * self.adaptive.shrink)
        if self._timer is not None:
            self._timer.interval = self.config.ttn * self._scale

    @property
    def current_interval(self) -> float:
        """The interval the next invalidation will use (diagnostics)."""
        return self.config.ttn * self._scale


class _AdaptiveCachePeerSide(CachePeerSide):
    """Cache peer whose TTP window per item learns from poll outcomes."""

    def __init__(self, agent: "AdaptiveRPCCAgent", config: AdaptiveConfig) -> None:
        super().__init__(agent, config)
        self.adaptive = config
        self._scale: Dict[int, float] = {}

    def ttp_scale(self, item_id: int) -> float:
        """Current TTP multiplier for ``item_id``."""
        return self._scale.get(item_id, 1.0)

    def renew_ttp(self, item_id: int) -> None:
        timer = self._ttp.get(item_id)
        if timer is None:
            from repro.sim.timers import CountdownTimer

            timer = CountdownTimer(self.agent.context.sim, self.config.ttp)
            self._ttp[item_id] = timer
        timer.renew(self.config.ttp * self.ttp_scale(item_id))

    def on_poll_ack_a(self, message: PollAckA) -> None:
        # Copy was still fresh: we can afford a longer trust window.
        self._scale[message.item_id] = self.adaptive.clamp(
            self.ttp_scale(message.item_id) * self.adaptive.grow
        )
        super().on_poll_ack_a(message)

    def on_poll_ack_b(self, message: PollAckB) -> None:
        # Copy had gone stale inside the window: trust less next time.
        self._scale[message.item_id] = self.adaptive.clamp(
            self.ttp_scale(message.item_id) * self.adaptive.shrink
        )
        super().on_poll_ack_b(message)


class AdaptiveRPCCAgent(RPCCAgent):
    """RPCC agent with the adaptive source and cache-peer sides."""

    def __init__(self, strategy: "AdaptiveRPCCStrategy", host: MobileHost) -> None:
        super().__init__(strategy, host)
        assert isinstance(self.config, AdaptiveConfig)
        self.source = _AdaptiveSourceSide(self, self.config)
        self.cache_peer = _AdaptiveCachePeerSide(self, self.config)


class AdaptiveRPCCStrategy(RPCCStrategy):
    """RPCC with runtime-adaptive TTN and TTP (future-work direction 1)."""

    name = "rpcc-adaptive"

    def __init__(
        self, context: StrategyContext, config: Optional[AdaptiveConfig] = None
    ) -> None:
        super().__init__(context, config if config is not None else AdaptiveConfig())

    def make_agent(self, host: MobileHost) -> AdaptiveRPCCAgent:
        return AdaptiveRPCCAgent(self, host)
