"""Extensions: the paper's Section 6 future-work directions plus ablations.

* :mod:`repro.extensions.adaptive` — runtime-adaptive TTN/TTP (direction 1);
* :mod:`repro.extensions.relay_control` — bounded relay population
  (direction 2);
* :mod:`repro.extensions.replica` — multi-writer replica consistency via
  LWW anti-entropy gossip (direction 3);
* :mod:`repro.extensions.selection_ablation` — random promotion instead of
  the CAR/CS/CE criterion;
* :mod:`repro.extensions.uir_push` — Cao'00-style updated invalidation
  reports between IRs (cited in the paper's related work).
"""

from repro.extensions.adaptive import (
    AdaptiveConfig,
    AdaptiveRPCCAgent,
    AdaptiveRPCCStrategy,
)
from repro.extensions.relay_control import (
    ControlledConfig,
    ControlledRPCCAgent,
    ControlledRPCCStrategy,
)
from repro.extensions.replica import (
    GossipReplication,
    ReplicatedRegister,
    WriteTag,
)
from repro.extensions.selection_ablation import (
    RandomSelectionConfig,
    RandomSelectionRPCCStrategy,
)
from repro.extensions.uir_push import UIRPushAgent, UIRPushStrategy, UIRReport

__all__ = [
    "AdaptiveConfig",
    "AdaptiveRPCCStrategy",
    "AdaptiveRPCCAgent",
    "ControlledConfig",
    "ControlledRPCCStrategy",
    "ControlledRPCCAgent",
    "GossipReplication",
    "ReplicatedRegister",
    "WriteTag",
    "RandomSelectionConfig",
    "RandomSelectionRPCCStrategy",
    "UIRPushStrategy",
    "UIRPushAgent",
    "UIRReport",
]
