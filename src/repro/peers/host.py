"""The mobile host: composition of every per-node substrate.

A :class:`MobileHost` is one peer ``M_i`` of the system model (Section 3):
it sources exactly one master copy, caches up to ``C_Num`` foreign items,
roams per its mobility model, drains a battery, flips online/offline, and
delegates all consistency traffic to an attached *agent* (one of the
strategy implementations in :mod:`repro.consistency`).

The agent duck-interface the host calls into:

* ``handle_message(message)`` — a network message arrived;
* ``on_reconnect()`` — the host just came back online;
* ``on_disconnect()`` — the host just went offline;
* ``on_local_update(master)`` — this host updated its master copy;
* ``on_period_closed()`` — a coefficient period just rolled over.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cache.directory import CacheDirectory
from repro.cache.item import MasterCopy
from repro.cache.replacement import CachePolicy
from repro.cache.store import CacheStore
from repro.energy.battery import Battery
from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.subnets import SubnetTracker
from repro.mobility.terrain import Point
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.peers.coefficients import CoefficientTracker
from repro.peers.switching import SwitchingProcess
from repro.sim.engine import Simulator, StartupBatch
from repro.sim.timers import PeriodicTimer

__all__ = ["MobileHost"]


class MobileHost(NetworkNode):
    """One peer of the MP2P system.

    Parameters
    ----------
    host_id:
        Unique identifier ``M_i``.
    sim:
        Event kernel.
    mobility:
        Trajectory of this host.
    battery:
        Energy store; a fresh default battery when omitted.
    cache_capacity:
        ``C_Num`` — number of foreign items this host can cache.
    directory:
        Optional global cache directory kept current by this host's store.
    coefficient_tracker:
        PAR/PSR/PMR accumulator; a default tracker when omitted.
    subnet_tracker:
        Supplies subnet-crossing counts (``N_m``) per coefficient period.
    replacement_policy:
        Victim-selection policy of this host's cache store (LRU when
        omitted).  Must be a fresh instance per host — stateful policies
        track per-store history.
    """

    def __init__(
        self,
        host_id: int,
        sim: Simulator,
        mobility: MobilityModel,
        battery: Optional[Battery] = None,
        cache_capacity: int = 10,
        directory: Optional[CacheDirectory] = None,
        coefficient_tracker: Optional[CoefficientTracker] = None,
        subnet_tracker: Optional[SubnetTracker] = None,
        replacement_policy: Optional[CachePolicy] = None,
    ) -> None:
        self._host_id = int(host_id)
        self.sim = sim
        self.mobility = mobility
        self.battery = battery if battery is not None else Battery()
        on_insert = on_evict = None
        if directory is not None:
            on_insert, on_evict = directory.bind_store(self._host_id)
        self.store = CacheStore(
            cache_capacity,
            policy=replacement_policy,
            on_insert=on_insert,
            on_evict=on_evict,
        )
        self.tracker = (
            coefficient_tracker if coefficient_tracker is not None else CoefficientTracker()
        )
        self.subnet_tracker = subnet_tracker
        self._online = True
        self.agent: Any = None
        self.source_item: Optional[MasterCopy] = None
        self.switching: Optional[SwitchingProcess] = None
        self._period_timer: Optional[PeriodicTimer] = None
        self._period_started_at = 0.0
        self.offline_time = 0.0
        self._went_offline_at: Optional[float] = None
        self.messages_handled = 0

    # ------------------------------------------------------------------
    # NetworkNode interface
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self._host_id

    @property
    def online(self) -> bool:
        return self._online

    def current_position(self) -> Point:
        return self.mobility.position(self.sim.now)

    def position_valid_until(self) -> float:
        return self.mobility.position_valid_until(self.sim.now)

    def deliver(self, message: Message) -> None:
        self.messages_handled += 1
        if self.agent is not None:
            self.agent.handle_message(message)

    def on_transmit(self, message: Message) -> None:
        self.battery.on_transmit(message.size_bytes)

    def on_receive(self, message: Message) -> None:
        self.battery.on_receive(message.size_bytes)

    # ------------------------------------------------------------------
    # Source-host role
    # ------------------------------------------------------------------
    def attach_source(self, master: MasterCopy) -> None:
        """Install the master copy this host is the source of."""
        if master.source_id != self._host_id:
            raise ConfigurationError(
                f"host {self._host_id} cannot source item {master.item_id} "
                f"owned by host {master.source_id}"
            )
        self.source_item = master

    def update_master(self) -> int:
        """Apply one update to this host's master copy (workload hook)."""
        if self.source_item is None:
            raise ConfigurationError(f"host {self._host_id} has no source item")
        version = self.source_item.update(self.sim.now)
        if self.agent is not None:
            self.agent.on_local_update(self.source_item)
        return version

    # ------------------------------------------------------------------
    # Online/offline switching
    # ------------------------------------------------------------------
    def set_online(self, online: bool) -> None:
        """Flip the connectivity status (called by the switching process)."""
        if online == self._online:
            return
        self._online = online
        # Invalidate cached topology snapshots before any agent reaction:
        # reconnect/disconnect handlers send traffic straight away.
        self.notify_state_change()
        self.tracker.record_switch()
        if online:
            if self._went_offline_at is not None:
                self.offline_time += self.sim.now - self._went_offline_at
                self._went_offline_at = None
            if self.agent is not None:
                self.agent.on_reconnect()
        else:
            self._went_offline_at = self.sim.now
            if self.agent is not None:
                self.agent.on_disconnect()

    # ------------------------------------------------------------------
    # Fault-injection hooks
    # ------------------------------------------------------------------
    def crash(self, wipe_cache: bool = False) -> None:
        """Drop offline abruptly (fault injection; no protocol goodbye).

        ``wipe_cache`` models storage that did not survive the crash:
        every cached copy is discarded through the store (keeping the
        global directory consistent) *and* reported to the agent's
        eviction hook, so relay roles and poll state are torn down the
        same way a capacity eviction would.  The master copy always
        survives — the source host *is* the ground truth.  Going offline
        first means the teardown's protocol messages (relay
        resignations, say) are counted as undeliverable rather than
        magically escaping a dead radio.
        """
        self.set_online(False)
        if wipe_cache:
            # store.clear() only notifies the directory; the agent hook
            # must be driven explicitly, exactly as the query path does.
            for item_id in list(self.store.item_ids):
                self.store.discard(item_id)
                if self.agent is not None:
                    self.agent.on_copy_evicted(item_id)

    def reboot(self) -> None:
        """Come back online after a :meth:`crash` (fault injection)."""
        self.set_online(True)

    # ------------------------------------------------------------------
    # Coefficient period upkeep
    # ------------------------------------------------------------------
    def start_period_timer(self, batch: Optional[StartupBatch] = None) -> None:
        """Begin closing coefficient periods every ``tracker.phi`` seconds."""
        if self._period_timer is not None:
            return
        self._period_started_at = self.sim.now
        self._period_timer = PeriodicTimer(self.sim, self.tracker.phi, self._close_period)
        self._period_timer.start(batch)

    def stop_period_timer(self) -> None:
        """Stop coefficient-period roll-over."""
        if self._period_timer is not None:
            self._period_timer.stop()
            self._period_timer = None

    def _close_period(self) -> None:
        now = self.sim.now
        if self.subnet_tracker is not None:
            moves = self.subnet_tracker.crossings_between(self._period_started_at, now)
            self.tracker.record_moves(moves)
        self._period_started_at = now
        self.tracker.set_energy_fraction(self.battery.fraction)
        self.battery.idle(self.tracker.phi)
        self.tracker.close_period()
        if self.agent is not None:
            self.agent.on_period_closed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "online" if self._online else "offline"
        return f"MobileHost(id={self._host_id}, {status}, cached={len(self.store)})"
