"""Peer model: mobile hosts, selection coefficients, switching."""

from repro.peers.coefficients import CoefficientTracker, SelectionThresholds
from repro.peers.host import MobileHost
from repro.peers.switching import SwitchingProcess

__all__ = [
    "MobileHost",
    "CoefficientTracker",
    "SelectionThresholds",
    "SwitchingProcess",
]
