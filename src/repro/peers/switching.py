"""Online/offline switching of mobile hosts.

Hosts in a MP2P system "disconnect from and/or reconnect to the wireless
network from time to time without giving any notice" (Section 4.5).  We
model this as an alternating renewal process with exponential online and
offline durations.  *Stable* hosts get an infinite mean online time and
never switch — the heterogeneity that makes the CS coefficient
discriminating (see DESIGN.md).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import EventHandle, Simulator, StartupBatch

__all__ = ["SwitchingProcess"]


class SwitchingProcess:
    """Alternating online/offline renewal process for one host.

    Parameters
    ----------
    sim:
        Event kernel.
    rng:
        The host's private switching stream.
    set_online:
        Callback invoked with the new status on every flip.
    mean_online:
        Mean of the exponential online duration; ``math.inf`` disables
        switching entirely (a stable host).
    mean_offline:
        Mean of the exponential offline duration.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        set_online: Callable[[bool], None],
        mean_online: float = 600.0,
        mean_offline: float = 60.0,
    ) -> None:
        if mean_online <= 0:
            raise ConfigurationError(f"mean_online must be positive, got {mean_online!r}")
        if mean_offline <= 0:
            raise ConfigurationError(f"mean_offline must be positive, got {mean_offline!r}")
        self._sim = sim
        self._rng = rng
        self._set_online = set_online
        self.mean_online = float(mean_online)
        self.mean_offline = float(mean_offline)
        self._currently_online = True
        self._handle: Optional[EventHandle] = None
        self.flips = 0

    @property
    def enabled(self) -> bool:
        """``False`` for stable hosts (infinite mean online time)."""
        return math.isfinite(self.mean_online)

    def start(self, batch: Optional[StartupBatch] = None) -> None:
        """Arm the first disconnection.  No-op for stable hosts.

        With ``batch``, the delay is drawn now (preserving RNG draw
        order) but the event is queued into the collector.
        """
        if not self.enabled or self._handle is not None:
            return
        delay = self._rng.expovariate(1.0 / self.mean_online)
        if batch is not None:
            batch.add(delay, self._flip, adopt=self._adopt)
            return
        self._handle = self._sim.schedule(delay, self._flip)

    def _adopt(self, handle: EventHandle) -> None:
        self._handle = handle

    def stop(self) -> None:
        """Cancel any pending flip."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _flip(self) -> None:
        self._currently_online = not self._currently_online
        self.flips += 1
        self._set_online(self._currently_online)
        mean = self.mean_online if self._currently_online else self.mean_offline
        delay = self._rng.expovariate(1.0 / mean)
        self._handle = self._sim.schedule(delay, self._flip)
