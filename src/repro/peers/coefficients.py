"""Relay-peer selection coefficients (Section 4.2 of the paper).

Every coefficient period ``phi`` each node refreshes three rates from its
recent history and maps them to coefficients in ``(0, 1]``:

* **PAR** — peer access rate, from the number of cache accesses ``N_a``
  (eq 4.2.1), smoothed over three time windows (eq 4.2.2), mapped to
  ``CAR = 1 / (1 + PAR_t)`` (eq 4.2.3);
* **PSR / PMR** — peer switching / moving rates, EWMA-smoothed
  (eqs 4.2.4-4.2.5), mapped to ``CS = 1 / (1 + PSR_t + PMR_t)`` (eq 4.2.6);
* **CE** — energy level fraction ``PER_t / E_MAX`` (eq 4.2.7).

A node qualifies as a relay-peer candidate when (eq 4.2.8)::

    CAR < mu_CAR  and  CS > mu_CS  and  CE > mu_CE

i.e. it is frequently accessed, stable, and has battery to spare.

Unit note: the paper writes rates as ``N/phi`` without fixing the unit of
``phi``.  We measure rates in events per ``rate_unit`` seconds, defaulting
``rate_unit`` to ``phi`` itself (per-period counts).  With the Table-1
thresholds and workload this cleanly separates stable from mobile nodes;
the unit is configurable for the threshold-sensitivity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["SelectionThresholds", "CoefficientTracker"]


@dataclass(frozen=True)
class SelectionThresholds:
    """The ``mu`` thresholds of eq 4.2.8 (Table 1 defaults)."""

    mu_car: float = 0.15
    mu_cs: float = 0.6
    mu_ce: float = 0.6

    def __post_init__(self) -> None:
        for name, value in (
            ("mu_car", self.mu_car),
            ("mu_cs", self.mu_cs),
            ("mu_ce", self.mu_ce),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value!r}")


class CoefficientTracker:
    """Per-node accumulator and smoother for CAR / CS / CE.

    Event counters are incremented as things happen; :meth:`close_period`
    is called once per coefficient period ``phi`` to fold them into the
    smoothed rates.

    Parameters
    ----------
    phi:
        Coefficient period in seconds (the paper's ``phi``; we tie it to
        ``I_Switch`` — the "switching period" of Section 4.5).
    omega:
        History weight ``omega`` of eqs 4.2.2/4.2.4/4.2.5 (Table 1: 0.2).
    rate_unit:
        Seconds per rate unit; defaults to ``phi`` (per-period rates).
    """

    def __init__(
        self,
        phi: float = 300.0,
        omega: float = 0.2,
        rate_unit: Optional[float] = None,
    ) -> None:
        if phi <= 0:
            raise ConfigurationError(f"phi must be positive, got {phi!r}")
        if not 0.0 <= omega < 1.0:
            raise ConfigurationError(f"omega must be in [0, 1), got {omega!r}")
        self.phi = float(phi)
        self.omega = float(omega)
        self.rate_unit = self.phi if rate_unit is None else float(rate_unit)
        if self.rate_unit <= 0:
            raise ConfigurationError(f"rate_unit must be positive, got {rate_unit!r}")
        # Counters for the current (open) period.
        self._accesses = 0
        self._switches = 0
        self._moves = 0
        # Smoothed rates.  PAR keeps one extra history window for eq 4.2.2:
        # at each roll-over, _par_t is PAR_{t-1} and _par_prev is PAR_{t-2}.
        self._par_t = 0.0
        self._par_prev = 0.0
        self._psr_t = 0.0
        self._pmr_t = 0.0
        self._energy_fraction = 1.0
        self.periods_closed = 0

    # ------------------------------------------------------------------
    # Event recording (called as things happen)
    # ------------------------------------------------------------------
    def record_access(self, count: int = 1) -> None:
        """Count ``count`` cache accesses (``N_a``) in the open period."""
        self._accesses += count

    def record_switch(self) -> None:
        """Count one reconnect/disconnect status flip (``N_s``)."""
        self._switches += 1

    def record_moves(self, count: int) -> None:
        """Count ``count`` subnet crossings (``N_m``) in the open period."""
        self._moves += count

    def set_energy_fraction(self, fraction: float) -> None:
        """Update the latest battery fraction (``PER_t / E_MAX``)."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"energy fraction must be in [0,1], got {fraction!r}")
        self._energy_fraction = float(fraction)

    # ------------------------------------------------------------------
    # Period roll-over
    # ------------------------------------------------------------------
    def close_period(self) -> None:
        """Fold the open period's counters into the smoothed rates."""
        scale = self.rate_unit / self.phi
        access_rate = self._accesses * scale  # N_a / phi, in rate units
        switch_rate = self._switches * scale
        move_rate = self._moves * scale
        omega = self.omega
        # Eq 4.2.2: three-window smoothing of PAR, where the current
        # _par_t plays PAR_{t-1} and _par_prev plays PAR_{t-2}.
        new_par = (
            self._par_prev * (omega / 4.0)
            + self._par_t * (omega / 2.0)
            + access_rate * (1.0 - omega / 4.0 - omega / 2.0)
        )
        self._par_prev = self._par_t
        self._par_t = new_par
        # Eqs 4.2.4 / 4.2.5: EWMA of PSR and PMR.
        self._psr_t = self._psr_t * omega + switch_rate * (1.0 - omega)
        self._pmr_t = self._pmr_t * omega + move_rate * (1.0 - omega)
        self._accesses = 0
        self._switches = 0
        self._moves = 0
        self.periods_closed += 1

    # ------------------------------------------------------------------
    # Derived coefficients
    # ------------------------------------------------------------------
    @property
    def par(self) -> float:
        """Smoothed peer access rate ``PAR_t``."""
        return self._par_t

    @property
    def psr(self) -> float:
        """Smoothed peer switching rate ``PSR_t``."""
        return self._psr_t

    @property
    def pmr(self) -> float:
        """Smoothed peer moving rate ``PMR_t``."""
        return self._pmr_t

    @property
    def car(self) -> float:
        """Eq 4.2.3: ``CAR = 1 / (1 + PAR_t)`` — low when heavily accessed."""
        return 1.0 / (1.0 + self._par_t)

    @property
    def cs(self) -> float:
        """Eq 4.2.6: ``CS = 1 / (1 + PSR_t + PMR_t)`` — high when stable."""
        return 1.0 / (1.0 + self._psr_t + self._pmr_t)

    @property
    def ce(self) -> float:
        """Eq 4.2.7: latest energy fraction ``PER_t / E_MAX``."""
        return self._energy_fraction

    def eligible(self, thresholds: SelectionThresholds) -> bool:
        """Eq 4.2.8: the relay-peer candidacy test."""
        return (
            self.car < thresholds.mu_car
            and self.cs > thresholds.mu_cs
            and self.ce > thresholds.mu_ce
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoefficientTracker(CAR={self.car:.3f}, CS={self.cs:.3f}, "
            f"CE={self.ce:.3f})"
        )
