"""Trace sinks: where emitted events end up.

* :class:`ListSink` — in-memory accumulation (tests, digests, ad-hoc
  analysis);
* :class:`JsonlSink` — streaming JSON-Lines export, one event per line,
  readable back via :func:`repro.obs.events.read_jsonl`;
* :class:`NullSink` — explicit discard (useful to measure pure emit
  overhead with tracing *enabled*).
"""

from __future__ import annotations

import json
from typing import List, Optional, Protocol, TextIO, Union

from repro.obs.events import TraceEvent

__all__ = ["TraceSink", "ListSink", "JsonlSink", "NullSink"]


class TraceSink(Protocol):
    """Anything that can receive trace events from a bus."""

    def on_event(self, event: TraceEvent) -> None:
        """Receive one event."""

    def close(self) -> None:
        """Flush/close underlying resources."""


class ListSink:
    """Accumulates every event in order (``.events``)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        return None

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams events to a JSONL file (or any open text handle)."""

    def __init__(self, target: Union[str, TextIO]) -> None:
        if hasattr(target, "write"):
            self._handle: Optional[TextIO] = target  # type: ignore[assignment]
            self._owns_handle = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
            self.path = str(target)
        self.events_written = 0

    def on_event(self, event: TraceEvent) -> None:
        assert self._handle is not None, "sink already closed"
        self._handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle is None:
            return
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()
        self._handle = None


class NullSink:
    """Receives and discards (keeps only a count)."""

    def __init__(self) -> None:
        self.events_seen = 0

    def on_event(self, event: TraceEvent) -> None:
        self.events_seen += 1

    def close(self) -> None:
        return None
