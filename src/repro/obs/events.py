"""Typed trace events: the observable vocabulary of a simulation run.

Every protocol-relevant moment — a query being issued, a cache hit, an
invalidation landing at a node, a relay promotion — is captured as one
small dataclass carrying the simulation time plus the identifiers needed
to reconstruct the protocol dynamics afterwards.  Events serialise to
flat JSON dictionaries (``{"e": <type>, "t": <time>, ...fields}``), one
per JSONL line, and deserialise back through :func:`event_from_dict`, so
a trace written by one process can be replayed — e.g. through
:class:`repro.obs.checker.InvariantChecker` — by another.

The taxonomy (see docs/OBSERVABILITY.md):

=====================  =============================================
query lifecycle        :class:`QueryIssued`, :class:`CacheHit`,
                       :class:`CacheMiss`, :class:`ReadServed`
source activity        :class:`SourceUpdate`, :class:`InvalidationSent`
dissemination          :class:`InvalidationReceived`
validation traffic     :class:`PollSent`, :class:`PollAnswered`,
                       :class:`FetchStarted`, :class:`FetchCompleted`
relay overlay          :class:`RelayPromoted`, :class:`RelayDemoted`
node churn             :class:`NodeOnline`, :class:`NodeOffline`
fault injection        :class:`FaultPartitionStarted`,
                       :class:`FaultPartitionEnded`,
                       :class:`FaultNodeCrashed`,
                       :class:`FaultNodeRebooted`,
                       :class:`FaultRelayKilled`
adaptive control       :class:`ControllerSampled`,
                       :class:`ControllerActuated`
bookkeeping            :class:`MetricsReset`
=====================  =============================================
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, ClassVar, Dict, IO, Iterable, Iterator, List, Union

from repro.errors import ConfigurationError

__all__ = [
    "TraceEvent",
    "QueryIssued",
    "CacheHit",
    "CacheMiss",
    "ReadServed",
    "SourceUpdate",
    "InvalidationSent",
    "InvalidationReceived",
    "PollSent",
    "PollAnswered",
    "FetchStarted",
    "FetchCompleted",
    "RelayPromoted",
    "RelayDemoted",
    "NodeOnline",
    "NodeOffline",
    "FaultPartitionStarted",
    "FaultPartitionEnded",
    "FaultNodeCrashed",
    "FaultNodeRebooted",
    "FaultRelayKilled",
    "ControllerSampled",
    "ControllerActuated",
    "MetricsReset",
    "EVENT_TYPES",
    "event_from_dict",
    "event_to_dict",
    "write_jsonl",
    "read_jsonl",
]


@dataclasses.dataclass
class TraceEvent:
    """Base class: every event carries the simulation time it occurred."""

    etype: ClassVar[str] = "event"

    time: float

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready dictionary (``e`` = type tag, then the fields)."""
        payload: Dict[str, Any] = {"e": self.etype, "time": self.time}
        for field in dataclasses.fields(self):
            if field.name != "time":
                payload[field.name] = getattr(self, field.name)
        return payload


@dataclasses.dataclass
class QueryIssued(TraceEvent):
    """A workload query entered the system at ``node``."""

    etype: ClassVar[str] = "query_issued"
    node: int = 0
    item: int = 0
    level: str = "strong"
    query_id: int = 0


@dataclasses.dataclass
class CacheHit(TraceEvent):
    """The querying node holds a copy (or sources the item)."""

    etype: ClassVar[str] = "cache_hit"
    node: int = 0
    item: int = 0
    version: int = 0


@dataclasses.dataclass
class CacheMiss(TraceEvent):
    """The querying node holds no copy; discovery takes over."""

    etype: ClassVar[str] = "cache_miss"
    node: int = 0
    item: int = 0


@dataclasses.dataclass
class ReadServed(TraceEvent):
    """A query was answered at its issuing node.

    ``fallback`` marks answers served *without* the level's validation
    completing (push give-up, pull poll exhaustion, RPCC forced-stale,
    offline self-serves) — the invariant checker exempts them from the
    strong/Δ contracts but still audits weak monotonicity and validity.
    ``remote`` marks answers fetched from another holder's copy.
    """

    etype: ClassVar[str] = "read_served"
    node: int = 0
    item: int = 0
    version: int = 0
    level: str = "strong"
    query_id: int = 0
    served_locally: bool = False
    remote: bool = False
    fallback: bool = False
    cache_hit: bool = False
    latency: float = 0.0
    staleness_age: float = 0.0


@dataclasses.dataclass
class SourceUpdate(TraceEvent):
    """The source host advanced its master copy to ``version``."""

    etype: ClassVar[str] = "source_update"
    node: int = 0
    item: int = 0
    version: int = 0


@dataclasses.dataclass
class InvalidationSent(TraceEvent):
    """A source flooded an invalidation (``protocol``: push or rpcc)."""

    etype: ClassVar[str] = "invalidation_sent"
    node: int = 0
    item: int = 0
    version: int = 0
    ttl: int = 0
    protocol: str = "rpcc"


@dataclasses.dataclass
class InvalidationReceived(TraceEvent):
    """An invalidation was *delivered* to ``node`` (network layer).

    This is the checker's knowledge feed: once a node received version
    ``v`` it must never serve an older version to a strong read.
    """

    etype: ClassVar[str] = "invalidation_received"
    node: int = 0
    item: int = 0
    version: int = 0


@dataclasses.dataclass
class PollSent(TraceEvent):
    """A validation poll left ``node`` (``stage`` names the ladder rung)."""

    etype: ClassVar[str] = "poll_sent"
    node: int = 0
    item: int = 0
    poll_id: int = 0
    stage: str = "source"
    ttl: int = 0


@dataclasses.dataclass
class PollAnswered(TraceEvent):
    """A poll acknowledgement settled the query at ``node``.

    ``fresh`` is ``True`` when the poller's copy was confirmed current
    (ACK_A / up-to-date reply) and ``False`` when new content came back.
    """

    etype: ClassVar[str] = "poll_answered"
    node: int = 0
    item: int = 0
    poll_id: int = 0
    version: int = 0
    fresh: bool = True


@dataclasses.dataclass
class FetchStarted(TraceEvent):
    """A content refresh was requested from ``target`` (the source)."""

    etype: ClassVar[str] = "fetch_started"
    node: int = 0
    item: int = 0
    target: int = 0
    kind: str = "push-refresh"


@dataclasses.dataclass
class FetchCompleted(TraceEvent):
    """Fresh content landed, the local copy now holds ``version``."""

    etype: ClassVar[str] = "fetch_completed"
    node: int = 0
    item: int = 0
    version: int = 0
    kind: str = "push-refresh"


@dataclasses.dataclass
class RelayPromoted(TraceEvent):
    """``node`` became a relay peer for ``item`` (Fig 5: CANDIDATE→RELAY)."""

    etype: ClassVar[str] = "relay_promoted"
    node: int = 0
    item: int = 0


@dataclasses.dataclass
class RelayDemoted(TraceEvent):
    """``node`` resigned its relay role for ``item``."""

    etype: ClassVar[str] = "relay_demoted"
    node: int = 0
    item: int = 0
    reason: str = "resigned"


@dataclasses.dataclass
class NodeOnline(TraceEvent):
    """``node`` switched on (Section 4.5 churn)."""

    etype: ClassVar[str] = "node_online"
    node: int = 0


@dataclasses.dataclass
class NodeOffline(TraceEvent):
    """``node`` switched off."""

    etype: ClassVar[str] = "node_offline"
    node: int = 0


@dataclasses.dataclass
class FaultPartitionStarted(TraceEvent):
    """A fault-plan partition came into force (``fault.*`` family)."""

    etype: ClassVar[str] = "fault_partition_start"
    mode: str = "spatial"
    name: str = ""


@dataclasses.dataclass
class FaultPartitionEnded(TraceEvent):
    """A fault-plan partition healed; suppressed edges are restored."""

    etype: ClassVar[str] = "fault_partition_end"
    mode: str = "spatial"
    name: str = ""


@dataclasses.dataclass
class FaultNodeCrashed(TraceEvent):
    """``node`` was crashed by the fault plan.

    ``wiped`` distinguishes a crash whose cache did not survive — the
    invariant checker then forgets everything the node knew, since its
    obligations died with its state — from a power-cycle that keeps the
    (possibly stale) copies for the eventual reboot.
    """

    etype: ClassVar[str] = "fault_node_crash"
    node: int = 0
    wiped: bool = False


@dataclasses.dataclass
class FaultNodeRebooted(TraceEvent):
    """``node`` came back after a fault-plan crash."""

    etype: ClassVar[str] = "fault_node_reboot"
    node: int = 0


@dataclasses.dataclass
class FaultRelayKilled(TraceEvent):
    """A targeted relay kill took ``node`` down while relaying ``item``."""

    etype: ClassVar[str] = "fault_relay_kill"
    node: int = 0
    item: int = 0


@dataclasses.dataclass
class ControllerSampled(TraceEvent):
    """The online controller took one observation window."""

    etype: ClassVar[str] = "controller_sampled"
    policy: str = ""
    availability: float = 1.0
    stale_rate: float = 0.0
    query_rate: float = 0.0
    update_rate: float = 0.0
    partitions: int = 0
    relays: int = 0


@dataclasses.dataclass
class ControllerActuated(TraceEvent):
    """The controller changed one protocol knob at the actuation boundary.

    The invariant checker consumes ``knob == "ttp"`` events to move its
    knowledge-relative Δ contract: freshness windows opened *before* the
    actuation keep the old bound until they drain, windows opened after
    it are held to ``value``.
    """

    etype: ClassVar[str] = "controller_actuated"
    policy: str = ""
    knob: str = ""
    value: float = 0.0
    reason: str = ""


@dataclasses.dataclass
class MetricsReset(TraceEvent):
    """The warm-up window closed; metrics were reset."""

    etype: ClassVar[str] = "metrics_reset"


#: Type-tag registry used by :func:`event_from_dict`.
EVENT_TYPES: Dict[str, type] = {
    cls.etype: cls
    for cls in (
        QueryIssued,
        CacheHit,
        CacheMiss,
        ReadServed,
        SourceUpdate,
        InvalidationSent,
        InvalidationReceived,
        PollSent,
        PollAnswered,
        FetchStarted,
        FetchCompleted,
        RelayPromoted,
        RelayDemoted,
        NodeOnline,
        NodeOffline,
        FaultPartitionStarted,
        FaultPartitionEnded,
        FaultNodeCrashed,
        FaultNodeRebooted,
        FaultRelayKilled,
        ControllerSampled,
        ControllerActuated,
        MetricsReset,
    )
}


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """Serialise one event (module-level alias of :meth:`TraceEvent.to_dict`)."""
    return event.to_dict()


def event_from_dict(payload: Dict[str, Any]) -> TraceEvent:
    """Reconstruct a typed event from its :meth:`~TraceEvent.to_dict` form."""
    fields = dict(payload)
    tag = fields.pop("e", None)
    cls = EVENT_TYPES.get(tag)
    if cls is None:
        raise ConfigurationError(f"unknown trace event type {tag!r}")
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ConfigurationError(f"malformed {tag!r} event: {exc}") from None


def write_jsonl(events: Iterable[TraceEvent], target: Union[str, IO[str]]) -> int:
    """Write events as JSON Lines; returns the number written."""
    if hasattr(target, "write"):
        return _write_stream(events, target)  # type: ignore[arg-type]
    with open(target, "w", encoding="utf-8") as handle:
        return _write_stream(events, handle)


def _write_stream(events: Iterable[TraceEvent], handle: IO[str]) -> int:
    count = 0
    for event in events:
        handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
        handle.write("\n")
        count += 1
    return count


def read_jsonl(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a JSONL trace back into typed events."""
    return list(iter_jsonl(source))


def iter_jsonl(source: Union[str, IO[str]]) -> Iterator[TraceEvent]:
    """Stream a JSONL trace as typed events (blank lines are skipped)."""
    if hasattr(source, "read"):
        yield from _iter_stream(source)  # type: ignore[arg-type]
        return
    with open(source, "r", encoding="utf-8") as handle:
        yield from _iter_stream(handle)


def _iter_stream(handle: IO[str]) -> Iterator[TraceEvent]:
    for line in handle:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))
