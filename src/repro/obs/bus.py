"""The trace bus: where instrumented code hands events to sinks.

Design goal: **near-free when disabled**.  Every emit site in the hot
paths is guarded by ``if trace.enabled:`` where ``trace`` is either a
:class:`TraceBus` (tracing on) or the :data:`NULL_TRACE` singleton
(tracing off, the default).  With the null bus the entire cost of the
observability layer is one attribute load and one branch per site — no
event objects are ever constructed.  ``benchmarks/bench_trace.py``
measures exactly this, and ``run_bench.py`` gates the kernel suite at
≤5% of the committed baseline to keep it true.

The bus itself is deliberately dumb: it fans every emitted event out to its
sinks (see :mod:`repro.obs.sinks`) and counts them.  Timestamps travel
*inside* the events — emit sites stamp ``self.now`` at construction — so
the bus needs no clock and can outlive the simulator that fed it.
"""

from __future__ import annotations

from typing import List

from repro.obs.events import TraceEvent
from repro.obs.sinks import TraceSink

__all__ = ["TraceBus", "NullTraceBus", "NULL_TRACE"]


class TraceBus:
    """An enabled trace bus: fans events out to its sinks."""

    #: Emit sites test this before constructing an event.
    enabled: bool = True

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []
        self.events_emitted = 0

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach a sink; every subsequent event reaches it.  Returns it."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Detach a previously added sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, event: TraceEvent) -> None:
        """Deliver ``event`` to every sink."""
        self.events_emitted += 1
        for sink in self._sinks:
            sink.on_event(event)

    def close(self) -> None:
        """Close every sink (flushes file-backed sinks)."""
        for sink in self._sinks:
            sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceBus(sinks={len(self._sinks)}, emitted={self.events_emitted})"


class NullTraceBus:
    """The disabled bus: emit sites see ``enabled == False`` and skip.

    ``emit`` still exists (and discards) so that code holding a direct
    bus reference never needs an ``is None`` check.
    """

    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:
        """Discard the event."""

    def close(self) -> None:
        """Nothing to close."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTraceBus()"


#: The process-wide disabled bus; ``Simulator.trace`` defaults to this.
NULL_TRACE = NullTraceBus()
